//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use siot_graph::community::louvain::Louvain;
use siot_graph::generate::{barabasi_albert, erdos_renyi, watts_strogatz};
use siot_graph::metrics::{degree_assortativity, density, modularity};
use siot_graph::traversal::{bfs_distances, connected_components, UNREACHABLE};
use siot_graph::{GraphBuilder, NodeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- construction invariants --------------------------------------

    #[test]
    fn builder_graph_is_simple_and_symmetric(
        edges in prop::collection::vec((0u32..30, 0u32..30), 0..120)
    ) {
        let clean: Vec<(u32, u32)> = edges.into_iter().filter(|&(a, b)| a != b).collect();
        let g = GraphBuilder::new().edges(clean.clone()).build().unwrap();
        // handshake lemma
        let degree_sum: usize = g.nodes().map(|n| g.degree(n)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        // symmetry and no self loops
        for (a, b) in g.edges() {
            prop_assert!(a != b);
            prop_assert!(g.has_edge(b, a));
        }
        // every input edge is present
        for (a, b) in clean {
            prop_assert!(g.has_edge(NodeId(a), NodeId(b)));
        }
    }

    // ---- traversal invariants ------------------------------------------

    #[test]
    fn bfs_distance_triangle_inequality_on_edges(
        edges in prop::collection::vec((0u32..20, 0u32..20), 1..60)
    ) {
        let clean: Vec<(u32, u32)> = edges.into_iter().filter(|&(a, b)| a != b).collect();
        prop_assume!(!clean.is_empty());
        let g = GraphBuilder::new().edges(clean).build().unwrap();
        let d = bfs_distances(&g, NodeId(0));
        for (a, b) in g.edges() {
            let (da, db) = (d[a.index()], d[b.index()]);
            if da != UNREACHABLE && db != UNREACHABLE {
                prop_assert!(da.abs_diff(db) <= 1, "adjacent distances differ by ≤ 1");
            } else {
                prop_assert_eq!(da, db, "components agree on unreachability");
            }
        }
    }

    #[test]
    fn components_partition_nodes(
        edges in prop::collection::vec((0u32..25, 0u32..25), 0..60)
    ) {
        let clean: Vec<(u32, u32)> = edges.into_iter().filter(|&(a, b)| a != b).collect();
        let g = GraphBuilder::new().nodes(25).edges(clean).build().unwrap();
        let (comp, count) = connected_components(&g);
        prop_assert_eq!(comp.len(), g.node_count());
        for &c in &comp {
            prop_assert!((c as usize) < count);
        }
        // adjacent nodes share a component
        for (a, b) in g.edges() {
            prop_assert_eq!(comp[a.index()], comp[b.index()]);
        }
    }

    // ---- generator invariants -------------------------------------------

    #[test]
    fn erdos_renyi_is_valid(n in 2usize..40, p in 0.0..1.0f64, seed in 0u64..50) {
        let g = erdos_renyi(n, p, seed).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.edge_count() <= n * (n - 1) / 2);
        prop_assert!((0.0..=1.0).contains(&density(&g)));
    }

    #[test]
    fn barabasi_albert_minimum_degree(n in 6usize..60, m in 1usize..4, seed in 0u64..50) {
        prop_assume!(n > m + 1);
        let g = barabasi_albert(n, m, seed).unwrap();
        for v in g.nodes() {
            prop_assert!(g.degree(v) >= m, "node {} degree {}", v, g.degree(v));
        }
        let (_, comps) = connected_components(&g);
        prop_assert_eq!(comps, 1);
    }

    #[test]
    fn watts_strogatz_preserves_edge_budget(
        n in 6usize..50, half_k in 1usize..3, beta in 0.0..1.0f64, seed in 0u64..50
    ) {
        let k = 2 * half_k;
        prop_assume!(k < n);
        let g = watts_strogatz(n, k, beta, seed).unwrap();
        // rewiring may merge edges but never create new ones
        prop_assert!(g.edge_count() <= n * k / 2);
        prop_assert!(g.edge_count() >= n * k / 2 - n, "few collisions expected");
    }

    // ---- metric ranges ----------------------------------------------------

    #[test]
    fn metric_ranges_hold(n in 4usize..30, p in 0.05..0.6f64, seed in 0u64..30) {
        let g = erdos_renyi(n, p, seed).unwrap();
        prop_assert!((-1.0..=1.0).contains(&degree_assortativity(&g)));
        let partition = Louvain::new(seed).run(&g);
        prop_assert!((-0.5..=1.0).contains(&partition.modularity));
        prop_assert_eq!(partition.community.len(), n);
        // labels are contiguous 0..count
        let count = partition.community_count();
        for &c in &partition.community {
            prop_assert!((c as usize) < count);
        }
        // modularity function agrees with the partition's cached value
        let q = modularity(&g, &partition.community);
        prop_assert!((q - partition.modularity).abs() < 1e-9);
    }
}
