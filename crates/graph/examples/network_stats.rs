use siot_graph::generate::social::SocialNetKind;
use siot_graph::metrics::ConnectivityStats;

fn main() {
    let paper = [
        ("Facebook", 29.04, 11, 3.75, 0.49, 0.46, 29),
        ("Google+", 23.34, 12, 3.9, 0.39, 0.45, 22),
        ("Twitter", 20.31, 8, 2.96, 0.27, 0.38, 16),
    ];
    for (kind, p) in SocialNetKind::ALL.iter().zip(paper) {
        let g = kind.generate(42);
        let s = ConnectivityStats::compute(&g, 42);
        println!(
            "{:<9} deg {:.2}/{:.2}  diam {}/{}  apl {:.2}/{:.2}  cc {:.2}/{:.2}  Q {:.2}/{:.2}  comm {}/{}",
            kind.name(), s.average_degree, p.1, s.diameter, p.2, s.average_path_length, p.3,
            s.average_clustering, p.4, s.modularity, p.5, s.communities, p.6
        );
    }
}
