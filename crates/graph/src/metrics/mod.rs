//! Connectivity metrics reported in Table 1 of the paper.
//!
//! All metrics are exact (all-pairs BFS for distances), which is affordable
//! at the paper's network scale (a few hundred nodes).

pub mod assortativity;
pub mod clustering;
pub mod degree;
pub mod distance;
pub mod modularity;

pub use assortativity::{degree_assortativity, density};
pub use clustering::{average_clustering_coefficient, local_clustering_coefficient};
pub use degree::{average_degree, degree_histogram, max_degree};
pub use distance::{average_path_length, diameter, DistanceSummary};
pub use modularity::modularity;

use crate::community::louvain::Louvain;
use crate::graph::SocialGraph;

/// The full row of Table 1 for one network.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectivityStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Mean degree over all nodes.
    pub average_degree: f64,
    /// Largest shortest-path length (largest component).
    pub diameter: u32,
    /// Mean shortest-path length over connected pairs.
    pub average_path_length: f64,
    /// Mean local clustering coefficient.
    pub average_clustering: f64,
    /// Newman modularity of the Louvain partition.
    pub modularity: f64,
    /// Number of communities found by Louvain.
    pub communities: usize,
}

impl ConnectivityStats {
    /// Computes every Table 1 statistic for `g`.
    ///
    /// `seed` controls the Louvain tie-breaking order so results are
    /// reproducible.
    pub fn compute(g: &SocialGraph, seed: u64) -> Self {
        let dist = DistanceSummary::compute(g);
        let louvain = Louvain::new(seed).run(g);
        ConnectivityStats {
            nodes: g.node_count(),
            edges: g.edge_count(),
            average_degree: average_degree(g),
            diameter: dist.diameter,
            average_path_length: dist.average_path_length,
            average_clustering: average_clustering_coefficient(g),
            modularity: louvain.modularity,
            communities: louvain.community_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_on_two_triangles_with_bridge() {
        // Two triangles joined by one bridge edge: classic two-community graph.
        let g = GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
            .build()
            .unwrap();
        let s = ConnectivityStats::compute(&g, 1);
        assert_eq!(s.nodes, 6);
        assert_eq!(s.edges, 7);
        assert!((s.average_degree - 7.0 * 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.diameter, 3);
        assert_eq!(s.communities, 2);
        assert!(s.modularity > 0.2, "two triangles are modular: {}", s.modularity);
        assert!(s.average_clustering > 0.5);
    }
}
