//! Degree assortativity (Pearson correlation of degrees across edges) and
//! graph density — supplementary connectivity descriptors for comparing
//! synthesized networks against real extracts.

use crate::graph::SocialGraph;

/// Newman's degree assortativity coefficient in `[-1, 1]`.
///
/// Positive: hubs attach to hubs (social networks typically ≥ 0);
/// negative: hubs attach to leaves. Returns 0 for graphs with fewer than
/// two edges or zero degree variance.
pub fn degree_assortativity(g: &SocialGraph) -> f64 {
    let m = g.edge_count();
    if m < 2 {
        return 0.0;
    }
    // accumulate over edge endpoints (each edge contributes (j, k))
    let mut sum_jk = 0.0;
    let mut sum_j = 0.0;
    let mut sum_j2 = 0.0;
    for (a, b) in g.edges() {
        let j = g.degree(a) as f64;
        let k = g.degree(b) as f64;
        sum_jk += j * k;
        sum_j += 0.5 * (j + k);
        sum_j2 += 0.5 * (j * j + k * k);
    }
    let m = m as f64;
    let num = sum_jk / m - (sum_j / m).powi(2);
    let den = sum_j2 / m - (sum_j / m).powi(2);
    if den.abs() < 1e-12 {
        0.0
    } else {
        (num / den).clamp(-1.0, 1.0)
    }
}

/// Graph density: `2m / (n(n−1))`, 0 for graphs with fewer than 2 nodes.
pub fn density(g: &SocialGraph) -> f64 {
    let n = g.node_count();
    if n < 2 {
        return 0.0;
    }
    2.0 * g.edge_count() as f64 / (n * (n - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::barabasi_albert::barabasi_albert;
    use crate::GraphBuilder;

    #[test]
    fn regular_graph_has_zero_variance() {
        // a cycle: every degree is 2, variance 0 → coefficient 0
        let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 3), (3, 0)]).build().unwrap();
        assert_eq!(degree_assortativity(&g), 0.0);
    }

    #[test]
    fn star_is_disassortative() {
        let mut b = GraphBuilder::new();
        for i in 1..8u32 {
            b = b.edge(0, i);
        }
        // add one peripheral edge so degree variance exists off the hub
        let g = b.edge(1, 2).build().unwrap();
        assert!(degree_assortativity(&g) < 0.0, "{}", degree_assortativity(&g));
    }

    #[test]
    fn ba_graphs_lean_disassortative() {
        let g = barabasi_albert(200, 2, 5).unwrap();
        let r = degree_assortativity(&g);
        assert!((-1.0..=0.2).contains(&r), "BA networks are not assortative: {r}");
    }

    #[test]
    fn tiny_graphs_return_zero() {
        let g = GraphBuilder::new().edge(0, 1).build().unwrap();
        assert_eq!(degree_assortativity(&g), 0.0);
        assert_eq!(degree_assortativity(&crate::SocialGraph::with_nodes(0)), 0.0);
    }

    #[test]
    fn density_values() {
        let complete = GraphBuilder::new().edges([(0, 1), (0, 2), (1, 2)]).build().unwrap();
        assert!((density(&complete) - 1.0).abs() < 1e-12);
        let sparse = GraphBuilder::new().nodes(4).edge(0, 1).build().unwrap();
        assert!((density(&sparse) - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(density(&crate::SocialGraph::with_nodes(1)), 0.0);
    }
}
