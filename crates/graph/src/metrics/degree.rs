//! Degree statistics.

use crate::graph::SocialGraph;

/// Mean degree `2|E| / |V|`. Zero for the empty graph.
pub fn average_degree(g: &SocialGraph) -> f64 {
    if g.node_count() == 0 {
        return 0.0;
    }
    2.0 * g.edge_count() as f64 / g.node_count() as f64
}

/// Largest degree in the graph, 0 if empty.
pub fn max_degree(g: &SocialGraph) -> usize {
    g.nodes().map(|n| g.degree(n)).max().unwrap_or(0)
}

/// Histogram `h[d] = number of nodes of degree d`.
pub fn degree_histogram(g: &SocialGraph) -> Vec<usize> {
    let mut h = vec![0usize; max_degree(g) + 1];
    for n in g.nodes() {
        h[g.degree(n)] += 1;
    }
    if g.node_count() == 0 {
        h.clear();
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn star_graph_degrees() {
        let g = GraphBuilder::new().edges([(0, 1), (0, 2), (0, 3)]).build().unwrap();
        assert!((average_degree(&g) - 1.5).abs() < 1e-12);
        assert_eq!(max_degree(&g), 3);
        assert_eq!(degree_histogram(&g), vec![0, 3, 0, 1]);
    }

    #[test]
    fn empty_graph_degrees() {
        let g = SocialGraph::with_nodes(0);
        assert_eq!(average_degree(&g), 0.0);
        assert_eq!(max_degree(&g), 0);
        assert!(degree_histogram(&g).is_empty());
    }

    use crate::graph::SocialGraph;

    #[test]
    fn isolated_nodes_count_in_average() {
        let g = GraphBuilder::new().nodes(4).edge(0, 1).build().unwrap();
        assert!((average_degree(&g) - 0.5).abs() < 1e-12);
    }
}
