//! Newman modularity of a node partition (paper reference \[34\]).
//!
//! `Q = Σ_c (e_c / m − (d_c / 2m)²)` where `e_c` is the number of edges
//! inside community `c`, `d_c` the total degree of its nodes, and `m` the
//! total edge count.

use crate::graph::SocialGraph;

/// Modularity of the partition `community[node] = community id`.
///
/// Community ids need not be contiguous. Returns 0 for edgeless graphs.
///
/// # Panics
/// Panics if `community.len() != g.node_count()`.
pub fn modularity(g: &SocialGraph, community: &[u32]) -> f64 {
    assert_eq!(community.len(), g.node_count(), "partition must label every node");
    let m = g.edge_count() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let max_c = community.iter().copied().max().unwrap_or(0) as usize;
    let mut internal = vec![0u64; max_c + 1];
    let mut degree_sum = vec![0u64; max_c + 1];
    for (a, b) in g.edges() {
        if community[a.index()] == community[b.index()] {
            internal[community[a.index()] as usize] += 1;
        }
    }
    for n in g.nodes() {
        degree_sum[community[n.index()] as usize] += g.degree(n) as u64;
    }
    internal
        .iter()
        .zip(&degree_sum)
        .map(|(&e_c, &d_c)| {
            let frac = e_c as f64 / m;
            let deg = d_c as f64 / (2.0 * m);
            frac - deg * deg
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_triangles() -> SocialGraph {
        GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
            .build()
            .unwrap()
    }

    #[test]
    fn natural_partition_beats_trivial() {
        let g = two_triangles();
        let good = modularity(&g, &[0, 0, 0, 1, 1, 1]);
        let all_one = modularity(&g, &[0, 0, 0, 0, 0, 0]);
        let singletons = modularity(&g, &[0, 1, 2, 3, 4, 5]);
        assert!(good > all_one);
        assert!(good > singletons);
        assert!(good > 0.3);
    }

    #[test]
    fn single_community_modularity_is_zero() {
        let g = two_triangles();
        let q = modularity(&g, &[0; 6]);
        assert!(q.abs() < 1e-12, "all-in-one partition has Q=0, got {q}");
    }

    #[test]
    fn edgeless_graph_is_zero() {
        let g = SocialGraph::with_nodes(3);
        assert_eq!(modularity(&g, &[0, 1, 2]), 0.0);
    }

    #[test]
    #[should_panic(expected = "partition must label every node")]
    fn wrong_partition_length_panics() {
        let g = two_triangles();
        modularity(&g, &[0, 0]);
    }

    #[test]
    fn known_value_two_cliques() {
        // Two disconnected edges, each its own community:
        // m=2; each community: e_c=1, d_c=2 -> Q = 2*(1/2 - (2/4)^2) = 2*(0.5-0.25)=0.5
        let g = GraphBuilder::new().edges([(0, 1), (2, 3)]).build().unwrap();
        let q = modularity(&g, &[0, 0, 1, 1]);
        assert!((q - 0.5).abs() < 1e-12);
    }

    use crate::graph::SocialGraph;
}
