//! Exact diameter and average path length via all-pairs BFS.
//!
//! The paper reports both metrics for sub-networks of 244–358 nodes, where
//! `O(V·E)` all-pairs BFS is instantaneous. Unreachable pairs are excluded
//! from the average (the convention used by Gephi, which the paper cites
//! \[33\] for these statistics).

use crate::graph::SocialGraph;
use crate::traversal::{bfs_distances, UNREACHABLE};

/// Diameter and average path length computed together (one BFS sweep).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceSummary {
    /// Largest finite shortest-path length.
    pub diameter: u32,
    /// Mean shortest-path length over ordered reachable pairs.
    pub average_path_length: f64,
    /// Number of ordered reachable pairs (excluding self-pairs).
    pub reachable_pairs: u64,
}

impl DistanceSummary {
    /// Runs BFS from every node and aggregates.
    pub fn compute(g: &SocialGraph) -> Self {
        let mut diameter = 0u32;
        let mut total = 0u128;
        let mut pairs = 0u64;
        for src in g.nodes() {
            let dist = bfs_distances(g, src);
            for (i, &d) in dist.iter().enumerate() {
                if d != UNREACHABLE && i != src.index() {
                    diameter = diameter.max(d);
                    total += d as u128;
                    pairs += 1;
                }
            }
        }
        let apl = if pairs == 0 { 0.0 } else { total as f64 / pairs as f64 };
        DistanceSummary { diameter, average_path_length: apl, reachable_pairs: pairs }
    }
}

/// Convenience wrapper returning just the diameter.
pub fn diameter(g: &SocialGraph) -> u32 {
    DistanceSummary::compute(g).diameter
}

/// Convenience wrapper returning just the average path length.
pub fn average_path_length(g: &SocialGraph) -> f64 {
    DistanceSummary::compute(g).average_path_length
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn path_graph_distances() {
        let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 3)]).build().unwrap();
        let s = DistanceSummary::compute(&g);
        assert_eq!(s.diameter, 3);
        // ordered pairs distances: 1,2,3 each twice + 1,2 twice + 1 twice = (1+2+3+1+2+1)*2 = 20 over 12 pairs
        assert!((s.average_path_length - 20.0 / 12.0).abs() < 1e-12);
        assert_eq!(s.reachable_pairs, 12);
    }

    #[test]
    fn disconnected_pairs_excluded() {
        let g = GraphBuilder::new().nodes(3).edge(0, 1).build().unwrap();
        let s = DistanceSummary::compute(&g);
        assert_eq!(s.diameter, 1);
        assert_eq!(s.reachable_pairs, 2);
        assert!((s.average_path_length - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_graph() {
        let g = SocialGraph::with_nodes(1);
        let s = DistanceSummary::compute(&g);
        assert_eq!(s.diameter, 0);
        assert_eq!(s.average_path_length, 0.0);
    }

    use crate::graph::SocialGraph;

    #[test]
    fn complete_graph_diameter_one() {
        let mut b = GraphBuilder::new();
        for a in 0..5u32 {
            for c in a + 1..5 {
                b = b.edge(a, c);
            }
        }
        let g = b.build().unwrap();
        assert_eq!(diameter(&g), 1);
        assert!((average_path_length(&g) - 1.0).abs() < 1e-12);
    }
}
