//! Local and average clustering coefficients.
//!
//! The local coefficient of node `v` is the number of edges among `v`'s
//! neighbours divided by `deg(v)·(deg(v)−1)/2`. Nodes of degree < 2 have
//! coefficient 0, matching the convention of the paper's reference tool
//! (Gephi, reference \[33\]).

use crate::graph::{NodeId, SocialGraph};

/// Clustering coefficient of a single node.
pub fn local_clustering_coefficient(g: &SocialGraph, v: NodeId) -> f64 {
    let nbrs = g.neighbors(v);
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a, b) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (k * (k - 1)) as f64
}

/// Mean of local clustering coefficients over all nodes.
pub fn average_clustering_coefficient(g: &SocialGraph) -> f64 {
    if g.node_count() == 0 {
        return 0.0;
    }
    let sum: f64 = g.nodes().map(|v| local_clustering_coefficient(g, v)).sum();
    sum / g.node_count() as f64
}

/// Number of triangles in the graph (each counted once).
pub fn triangle_count(g: &SocialGraph) -> usize {
    let mut count = 0usize;
    for v in g.nodes() {
        let nbrs = g.neighbors(v);
        for (i, &a) in nbrs.iter().enumerate() {
            if a <= v {
                continue;
            }
            for &b in &nbrs[i + 1..] {
                if b > a && g.has_edge(a, b) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn triangle_is_fully_clustered() {
        let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 0)]).build().unwrap();
        assert_eq!(local_clustering_coefficient(&g, NodeId(0)), 1.0);
        assert_eq!(average_clustering_coefficient(&g), 1.0);
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn path_has_zero_clustering() {
        let g = GraphBuilder::new().edges([(0, 1), (1, 2)]).build().unwrap();
        assert_eq!(average_clustering_coefficient(&g), 0.0);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn degree_one_nodes_are_zero() {
        let g = GraphBuilder::new().edges([(0, 1)]).build().unwrap();
        assert_eq!(local_clustering_coefficient(&g, NodeId(0)), 0.0);
    }

    #[test]
    fn square_with_diagonal() {
        // 0-1-2-3-0 plus diagonal 0-2: two triangles.
        let g =
            GraphBuilder::new().edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).build().unwrap();
        assert_eq!(triangle_count(&g), 2);
        // node 1 has neighbours {0,2} which are connected: coefficient 1.
        assert_eq!(local_clustering_coefficient(&g, NodeId(1)), 1.0);
        // node 0 has neighbours {1,2,3}, edges among them: (1,2),(2,3) => 2/3.
        assert!((local_clustering_coefficient(&g, NodeId(0)) - 2.0 / 3.0).abs() < 1e-12);
    }

    use crate::graph::SocialGraph;

    #[test]
    fn empty_graph_clustering() {
        assert_eq!(average_clustering_coefficient(&SocialGraph::with_nodes(0)), 0.0);
    }
}
