//! Watts–Strogatz small-world generator.

use crate::error::GraphError;
use crate::graph::{NodeId, SocialGraph};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Generates a WS small-world graph: a ring lattice where every node links
/// to its `k/2` nearest neighbours on each side, then each edge is rewired
/// with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<SocialGraph, GraphError> {
    if !k.is_multiple_of(2) || k == 0 || k >= n {
        return Err(GraphError::InvalidGenerator(format!(
            "need even 0 < k < n, got n = {n}, k = {k}"
        )));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidGenerator(format!("beta = {beta} outside [0, 1]")));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = SocialGraph::with_nodes(n);
    for v in 0..n {
        for offset in 1..=k / 2 {
            let mut target = ((v + offset) % n) as u32;
            if rng.gen_bool(beta) {
                // rewire to a uniform non-self, non-duplicate target
                for _ in 0..32 {
                    let cand = rng.gen_range(0..n as u32);
                    if cand != v as u32 && !g.has_edge(NodeId(v as u32), NodeId(cand)) {
                        target = cand;
                        break;
                    }
                }
            }
            // the lattice edge may already exist after rewiring collisions; ignore dups
            if target != v as u32 {
                let _ = g.add_edge(NodeId(v as u32), NodeId(target));
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::average_clustering_coefficient;
    use crate::traversal::connected_components;

    #[test]
    fn beta_zero_is_ring_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 1).unwrap();
        assert_eq!(g.edge_count(), 20 * 2);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn lattice_is_clustered() {
        let g = watts_strogatz(100, 6, 0.0, 1).unwrap();
        assert!(average_clustering_coefficient(&g) > 0.5);
    }

    #[test]
    fn rewiring_reduces_clustering() {
        let low = watts_strogatz(200, 6, 0.0, 2).unwrap();
        let high = watts_strogatz(200, 6, 0.9, 2).unwrap();
        assert!(average_clustering_coefficient(&high) < average_clustering_coefficient(&low));
    }

    #[test]
    fn stays_connected_for_moderate_beta() {
        let g = watts_strogatz(100, 6, 0.2, 3).unwrap();
        let (_, comps) = connected_components(&g);
        assert_eq!(comps, 1);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(watts_strogatz(10, 3, 0.1, 0).is_err(), "odd k");
        assert!(watts_strogatz(10, 0, 0.1, 0).is_err(), "zero k");
        assert!(watts_strogatz(4, 4, 0.1, 0).is_err(), "k >= n");
        assert!(watts_strogatz(10, 2, 1.5, 0).is_err(), "beta > 1");
    }
}
