//! Random-graph generators.
//!
//! The classic models (Erdős–Rényi, Barabási–Albert, Watts–Strogatz) are
//! provided for tests and ablations; [`social`] is the community-structured
//! generator that synthesizes the three evaluation networks of the paper
//! (Facebook, Google+, Twitter sub-networks — see Table 1 and DESIGN.md §2).

pub mod barabasi_albert;
pub mod erdos_renyi;
pub mod features;
pub mod social;
pub mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use erdos_renyi::erdos_renyi;
pub use features::{synthesize_features, FeatureMatrix};
pub use social::{SocialNetConfig, SocialNetKind};
pub use watts_strogatz::watts_strogatz;
