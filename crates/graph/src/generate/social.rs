//! Community-structured social-network generator.
//!
//! Substitutes the SNAP ego-network extracts the paper uses for connectivity
//! (Table 1). Real ego-network extracts have a two-tier structure: a handful
//! of large, dense *core* communities (the ego's main circles) and many
//! small *satellite* clusters attached to the core by one or two links. The
//! generator plants exactly that: scale-free-ish core communities grown with
//! endpoint-bag preferential attachment and triadic closure, ring-local
//! bridges between core communities (macro-locality stretches the average
//! path length), weakly-attached satellites (which Louvain keeps as separate
//! communities, matching the paper's community counts), and short peripheral
//! tendrils (which stretch the diameter).
//!
//! Node/edge counts match the paper exactly; the remaining six statistics
//! are matched approximately (see `EXPERIMENTS.md` Table 1 for measured vs
//! paper values).

use crate::error::GraphError;
use crate::graph::{NodeId, SocialGraph};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Parameters of the community-structured generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SocialNetConfig {
    /// Total node count (core + satellites + tendrils).
    pub nodes: usize,
    /// Exact total edge count.
    pub edges: usize,
    /// Number of large, dense core communities.
    pub core_communities: usize,
    /// Number of small satellite communities (weakly attached to the core).
    pub satellites: usize,
    /// Inclusive satellite size range.
    pub satellite_size: (usize, usize),
    /// Fraction of the total edge budget placed inside core communities.
    pub intra_fraction: f64,
    /// Probability that an intra-community edge closes a triangle.
    pub closure_prob: f64,
    /// Core community-size skew (power-law exponent; 0 = equal sizes).
    pub size_skew: f64,
    /// Edge probability inside a satellite cluster (first row always kept
    /// for connectivity).
    pub satellite_density: f64,
    /// Nodes reserved for two peripheral chains stretching the diameter.
    pub tendril_nodes: usize,
}

/// The three evaluation networks of the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SocialNetKind {
    /// Facebook sub-network: 347 nodes, 5038 edges.
    Facebook,
    /// Google+ sub-network: 358 nodes, 4178 edges.
    GooglePlus,
    /// Twitter sub-network: 244 nodes, 2478 edges.
    Twitter,
}

impl SocialNetKind {
    /// All three networks, in the order the paper lists them.
    pub const ALL: [SocialNetKind; 3] =
        [SocialNetKind::Facebook, SocialNetKind::GooglePlus, SocialNetKind::Twitter];

    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SocialNetKind::Facebook => "Facebook",
            SocialNetKind::GooglePlus => "Google+",
            SocialNetKind::Twitter => "Twitter",
        }
    }

    /// Generator preset tuned against the Table 1 statistics.
    pub fn config(self) -> SocialNetConfig {
        match self {
            SocialNetKind::Facebook => SocialNetConfig {
                nodes: 347,
                edges: 5038,
                core_communities: 12,
                satellites: 29,
                satellite_size: (3, 6),
                intra_fraction: 0.60,
                closure_prob: 0.70,
                size_skew: 0.45,
                satellite_density: 0.75,
                tendril_nodes: 9,
            },
            SocialNetKind::GooglePlus => SocialNetConfig {
                nodes: 358,
                edges: 4178,
                core_communities: 10,
                satellites: 17,
                satellite_size: (3, 8),
                intra_fraction: 0.56,
                closure_prob: 0.56,
                size_skew: 0.40,
                satellite_density: 0.70,
                tendril_nodes: 10,
            },
            SocialNetKind::Twitter => SocialNetConfig {
                nodes: 244,
                edges: 2478,
                core_communities: 7,
                satellites: 13,
                satellite_size: (3, 6),
                intra_fraction: 0.53,
                closure_prob: 0.18,
                size_skew: 0.40,
                satellite_density: 0.40,
                tendril_nodes: 4,
            },
        }
    }

    /// Generates the network with this kind's preset.
    pub fn generate(self, seed: u64) -> SocialGraph {
        self.config().generate(seed).expect("presets are valid configurations")
    }

    /// Generates the network plus planted community labels.
    pub fn generate_with_communities(self, seed: u64) -> (SocialGraph, Vec<u32>) {
        self.config().generate_with_communities(seed).expect("presets are valid configurations")
    }
}

impl SocialNetConfig {
    /// Total planted communities (core + satellites).
    pub fn communities(&self) -> usize {
        self.core_communities + self.satellites
    }

    /// Generates a graph with exactly `self.nodes` nodes and `self.edges`
    /// edges, plus the planted community labels (core communities first,
    /// then satellites; tendril nodes inherit their attach community).
    pub fn generate_with_communities(
        &self,
        seed: u64,
    ) -> Result<(SocialGraph, Vec<u32>), GraphError> {
        self.validate()?;
        let mut rng = SmallRng::seed_from_u64(seed);

        // --- node layout -------------------------------------------------
        let sat_sizes: Vec<usize> = (0..self.satellites)
            .map(|_| rng.gen_range(self.satellite_size.0..=self.satellite_size.1))
            .collect();
        let sat_total: usize = sat_sizes.iter().sum();
        let core_total = self
            .nodes
            .checked_sub(sat_total + self.tendril_nodes)
            .filter(|&c| c >= self.core_communities * 8)
            .ok_or_else(|| {
                GraphError::InvalidGenerator("not enough nodes for core communities".into())
            })?;
        let core_sizes = heterogeneous_sizes(core_total, self.core_communities, self.size_skew, 8);

        let mut g = SocialGraph::with_nodes(self.nodes);
        let mut community = vec![0u32; self.nodes];
        let mut members: Vec<Vec<u32>> = Vec::new();
        let mut next = 0u32;
        for (c, &s) in core_sizes.iter().chain(sat_sizes.iter()).enumerate() {
            let mut m = Vec::with_capacity(s);
            for _ in 0..s {
                community[next as usize] = c as u32;
                m.push(next);
                next += 1;
            }
            members.push(m);
        }
        let core_nodes = core_total; // ids [0, core_total) are core

        // Degree-proportional endpoint bag over *core* nodes only.
        let mut bag: Vec<u32> = Vec::with_capacity(2 * self.edges);
        let mut budget = self.edges;
        let add = |g: &mut SocialGraph, bag: &mut Vec<u32>, a: u32, b: u32, core: usize| -> bool {
            if a == b {
                return false;
            }
            match g.add_edge(NodeId(a), NodeId(b)) {
                Ok(true) => {
                    if (a as usize) < core {
                        bag.push(a);
                    }
                    if (b as usize) < core {
                        bag.push(b);
                    }
                    true
                }
                _ => false,
            }
        };

        // --- 1. core: random recursive tree per community ------------------
        for m in members.iter().take(self.core_communities) {
            for (i, &v) in m.iter().enumerate().skip(1) {
                let t = m[rng.gen_range(0..i)];
                if add(&mut g, &mut bag, v, t, core_nodes) {
                    budget -= 1;
                }
            }
        }

        // --- 2. chain over core communities (macro-locality) ---------------
        for c in 1..self.core_communities {
            let a = members[c][rng.gen_range(0..members[c].len())];
            let b = members[c - 1][rng.gen_range(0..members[c - 1].len())];
            if add(&mut g, &mut bag, a, b, core_nodes) {
                budget -= 1;
            }
        }

        // --- 3. satellites: dense micro-cluster + 1-2 links into the core --
        for (si, m) in members.iter().enumerate().skip(self.core_communities) {
            // near-clique inside
            for (i, &v) in m.iter().enumerate() {
                for &w in &m[i + 1..] {
                    if budget > 0 && (i == 0 || rng.gen_bool(self.satellite_density)) {
                        // i == 0 row guarantees connectivity of the satellite
                        if add(&mut g, &mut bag, v, w, core_nodes) {
                            budget -= 1;
                        }
                    }
                }
            }
            // anchor into a core community (round-robin for spread)
            let target = (si - self.core_communities) % self.core_communities;
            let links = 1 + usize::from(rng.gen_bool(0.4));
            for _ in 0..links {
                let a = m[rng.gen_range(0..m.len())];
                let b = members[target][rng.gen_range(0..members[target].len())];
                if budget > 0 && add(&mut g, &mut bag, a, b, core_nodes) {
                    budget -= 1;
                }
            }
        }

        // --- 4. tendrils ----------------------------------------------------
        let mut tendril_next = (self.nodes - self.tendril_nodes) as u32;
        for half in 0..2usize {
            let len = if half == 0 {
                self.tendril_nodes / 2
            } else {
                self.tendril_nodes - self.tendril_nodes / 2
            };
            if len == 0 {
                continue;
            }
            // anchor the chains at ring-opposite communities so the two
            // tendril tips realize the worst-case path (diameter)
            let attach_comm = if half == 0 { 0 } else { self.core_communities / 2 };
            let attach = members[attach_comm][rng.gen_range(0..members[attach_comm].len())];
            let mut prev = attach;
            for _ in 0..len {
                community[tendril_next as usize] = community[attach as usize];
                if budget > 0 && add(&mut g, &mut bag, prev, tendril_next, core_nodes) {
                    budget -= 1;
                }
                prev = tendril_next;
                tendril_next += 1;
            }
        }

        // --- 5. fill the remaining budget inside the core ------------------
        let intra_total = (self.intra_fraction * self.edges as f64).round() as usize;
        let intra_so_far =
            g.edges().filter(|&(a, b)| community[a.index()] == community[b.index()]).count();
        let mut intra_left = intra_total.saturating_sub(intra_so_far).min(budget);
        let mut inter_left = budget - intra_left;

        let mut stall = 0usize;
        while intra_left + inter_left > 0 {
            let want_intra = intra_left > 0
                && (inter_left == 0 || rng.gen_range(0..intra_left + inter_left) < intra_left);
            let placed = if want_intra {
                self.place_intra(&mut g, &mut bag, &community, &members, core_nodes, &mut rng)
            } else {
                self.place_inter(&mut g, &mut bag, &members, &mut rng)
            };
            if placed {
                if want_intra {
                    intra_left -= 1;
                } else {
                    inter_left -= 1;
                }
                stall = 0;
            } else {
                stall += 1;
                if stall > 5_000 {
                    // Saturated somewhere; dump the remaining budget into
                    // uniform random core pairs so the edge count stays exact.
                    let mut rest = intra_left + inter_left;
                    let mut guard = 0usize;
                    while rest > 0 && guard < 1_000_000 {
                        let a = rng.gen_range(0..core_nodes as u32);
                        let b = rng.gen_range(0..core_nodes as u32);
                        if add(&mut g, &mut bag, a, b, core_nodes) {
                            rest -= 1;
                        }
                        guard += 1;
                    }
                    intra_left = 0;
                    inter_left = 0;
                }
            }
        }

        Ok((g, community))
    }

    /// Generates just the graph (community labels discarded).
    pub fn generate(&self, seed: u64) -> Result<SocialGraph, GraphError> {
        self.generate_with_communities(seed).map(|(g, _)| g)
    }

    fn validate(&self) -> Result<(), GraphError> {
        let max_edges = self.nodes * self.nodes.saturating_sub(1) / 2;
        if self.core_communities == 0 {
            return Err(GraphError::InvalidGenerator("need at least one core community".into()));
        }
        if self.satellite_size.0 < 2 || self.satellite_size.0 > self.satellite_size.1 {
            return Err(GraphError::InvalidGenerator("bad satellite size range".into()));
        }
        let sat_max = self.satellites * self.satellite_size.1;
        if self.nodes < self.core_communities * 8 + sat_max + self.tendril_nodes {
            return Err(GraphError::InvalidGenerator(
                "not enough nodes for core (8/community) + satellites + tendrils".into(),
            ));
        }
        if self.edges < self.nodes || self.edges > max_edges {
            return Err(GraphError::InvalidGenerator(format!(
                "edge budget {} outside [{}, {max_edges}]",
                self.edges, self.nodes
            )));
        }
        for (name, v) in [
            ("intra_fraction", self.intra_fraction),
            ("closure_prob", self.closure_prob),
            ("satellite_density", self.satellite_density),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(GraphError::InvalidGenerator(format!("{name} = {v} outside [0, 1]")));
            }
        }
        Ok(())
    }

    /// Places one core intra-community edge; triadic closure with
    /// probability `closure_prob`, otherwise a degree-biased pair.
    fn place_intra(
        &self,
        g: &mut SocialGraph,
        bag: &mut Vec<u32>,
        community: &[u32],
        members: &[Vec<u32>],
        core_nodes: usize,
        rng: &mut SmallRng,
    ) -> bool {
        let u = bag[rng.gen_range(0..bag.len())];
        let c = community[u as usize] as usize;
        if c >= self.core_communities {
            return false; // satellites stay sparse
        }
        let partner = if rng.gen_bool(self.closure_prob) {
            // close a triangle: neighbour-of-neighbour inside the community.
            // Tendril nodes share the attach community's label but must stay
            // chains, so only core nodes qualify at both steps.
            let same: Vec<u32> = g
                .neighbors(NodeId(u))
                .iter()
                .map(|n| n.0)
                .filter(|&v| (v as usize) < core_nodes && community[v as usize] == c as u32)
                .collect();
            if same.is_empty() {
                return false;
            }
            let v = same[rng.gen_range(0..same.len())];
            let nn: Vec<u32> = g
                .neighbors(NodeId(v))
                .iter()
                .map(|n| n.0)
                .filter(|&w| {
                    w != u && (w as usize) < core_nodes && community[w as usize] == c as u32
                })
                .collect();
            if nn.is_empty() {
                return false;
            }
            nn[rng.gen_range(0..nn.len())]
        } else {
            members[c][rng.gen_range(0..members[c].len())]
        };
        if partner == u || g.has_edge(NodeId(u), NodeId(partner)) {
            return false;
        }
        g.add_edge(NodeId(u), NodeId(partner)).expect("validated pair");
        bag.push(u);
        bag.push(partner);
        true
    }

    /// Places one inter-community edge between *core* communities with ring
    /// locality (nearby communities are likelier partners).
    fn place_inter(
        &self,
        g: &mut SocialGraph,
        bag: &mut Vec<u32>,
        members: &[Vec<u32>],
        rng: &mut SmallRng,
    ) -> bool {
        let k = self.core_communities;
        if k < 2 {
            return false;
        }
        let a = bag[rng.gen_range(0..bag.len())];
        let ca = community_of(members, a);
        if ca >= k {
            return false;
        }
        // geometric ring offset: P(d) ∝ 0.5^d
        let mut d = 1usize;
        while d < k - 1 && rng.gen_bool(0.5) {
            d += 1;
        }
        let cb = if rng.gen_bool(0.5) { (ca + d) % k } else { (ca + k - (d % k)) % k };
        if cb == ca {
            return false;
        }
        let b = members[cb][rng.gen_range(0..members[cb].len())];
        if a == b || g.has_edge(NodeId(a), NodeId(b)) {
            return false;
        }
        g.add_edge(NodeId(a), NodeId(b)).expect("validated pair");
        bag.push(a);
        bag.push(b);
        true
    }
}

/// Community index of node `v` by scanning member offsets (contiguous layout).
fn community_of(members: &[Vec<u32>], v: u32) -> usize {
    // nodes are laid out contiguously per community, so a linear scan over
    // community boundaries is enough (and communities are few).
    let mut start = 0u32;
    for (c, m) in members.iter().enumerate() {
        let end = start + m.len() as u32;
        if v < end {
            return c;
        }
        start = end;
    }
    members.len()
}

/// Heterogeneous sizes: weight of community `i` is `(i+1)^(-skew)`, scaled
/// to `total`, with the given minimum size.
fn heterogeneous_sizes(total: usize, k: usize, skew: f64, min_size: usize) -> Vec<usize> {
    let weights: Vec<f64> = (0..k).map(|i| ((i + 1) as f64).powf(-skew)).collect();
    let wsum: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / wsum) * total as f64).floor().max(min_size as f64) as usize)
        .collect();
    let assigned: usize = sizes.iter().sum();
    if assigned < total {
        sizes[0] += total - assigned;
    } else {
        let mut excess = assigned - total;
        for s in sizes.iter_mut() {
            let take = (*s - min_size).min(excess);
            *s -= take;
            excess -= take;
            if excess == 0 {
                break;
            }
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;

    #[test]
    fn heterogeneous_sizes_sum_and_minimum() {
        for (total, k, skew, min) in [(240, 8, 0.45, 8), (250, 7, 0.4, 8), (160, 6, 0.4, 8)] {
            let sizes = heterogeneous_sizes(total, k, skew, min);
            assert_eq!(sizes.iter().sum::<usize>(), total);
            assert!(sizes.iter().all(|&s| s >= min), "{sizes:?}");
        }
    }

    #[test]
    fn exact_node_and_edge_counts() {
        for kind in SocialNetKind::ALL {
            let cfg = kind.config();
            let g = kind.generate(1);
            assert_eq!(g.node_count(), cfg.nodes, "{}", kind.name());
            assert_eq!(g.edge_count(), cfg.edges, "{}", kind.name());
        }
    }

    #[test]
    fn generated_networks_are_connected() {
        for kind in SocialNetKind::ALL {
            let g = kind.generate(7);
            let (_, comps) = connected_components(&g);
            assert_eq!(comps, 1, "{} must be connected", kind.name());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SocialNetKind::Twitter.generate(5);
        let b = SocialNetKind::Twitter.generate(5);
        assert!(a.edges().zip(b.edges()).all(|(x, y)| x == y));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SocialNetKind::Twitter.generate(5);
        let b = SocialNetKind::Twitter.generate(6);
        assert!(a.edges().zip(b.edges()).any(|(x, y)| x != y));
    }

    #[test]
    fn planted_communities_cover_all_nodes() {
        let cfg = SocialNetKind::Facebook.config();
        let (g, community) = cfg.generate_with_communities(3).unwrap();
        assert_eq!(community.len(), g.node_count());
        let max = *community.iter().max().unwrap() as usize;
        assert!(max < cfg.communities());
    }

    #[test]
    fn community_of_contiguous_layout() {
        let members = vec![vec![0, 1, 2], vec![3, 4], vec![5]];
        assert_eq!(community_of(&members, 0), 0);
        assert_eq!(community_of(&members, 2), 0);
        assert_eq!(community_of(&members, 3), 1);
        assert_eq!(community_of(&members, 5), 2);
        assert_eq!(community_of(&members, 6), 3, "past-the-end sentinel");
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = SocialNetKind::Twitter.config();
        cfg.core_communities = 0;
        assert!(cfg.generate(0).is_err());
        let mut cfg = SocialNetKind::Twitter.config();
        cfg.edges = 10; // below node count
        assert!(cfg.generate(0).is_err());
        let mut cfg = SocialNetKind::Twitter.config();
        cfg.intra_fraction = 1.2;
        assert!(cfg.generate(0).is_err());
        let mut cfg = SocialNetKind::Twitter.config();
        cfg.satellite_size = (5, 3);
        assert!(cfg.generate(0).is_err());
        let mut cfg = SocialNetKind::Twitter.config();
        cfg.satellites = 100; // too many nodes consumed
        assert!(cfg.generate(0).is_err());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(SocialNetKind::Facebook.name(), "Facebook");
        assert_eq!(SocialNetKind::GooglePlus.name(), "Google+");
        assert_eq!(SocialNetKind::Twitter.name(), "Twitter");
    }
}
