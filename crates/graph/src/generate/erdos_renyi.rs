//! Erdős–Rényi G(n, p) generator.

use crate::error::GraphError;
use crate::graph::{NodeId, SocialGraph};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Generates G(n, p): each of the `n·(n−1)/2` possible edges exists
/// independently with probability `p`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Result<SocialGraph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidGenerator(format!("p = {p} outside [0, 1]")));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = SocialGraph::with_nodes(n);
    for a in 0..n {
        for b in a + 1..n {
            if rng.gen_bool(p) {
                g.add_edge(NodeId(a as u32), NodeId(b as u32))
                    .expect("a < b < n, no self-loop possible");
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_zero_gives_no_edges() {
        let g = erdos_renyi(10, 0.0, 1).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn p_one_gives_complete_graph() {
        let g = erdos_renyi(6, 1.0, 1).unwrap();
        assert_eq!(g.edge_count(), 15);
    }

    #[test]
    fn expected_edge_count_roughly_matches() {
        let n = 100;
        let p = 0.1;
        let g = erdos_renyi(n, p, 42).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        assert!((got - expected).abs() < expected * 0.3, "got {got}, expected ~{expected}");
    }

    #[test]
    fn invalid_p_rejected() {
        assert!(erdos_renyi(5, 1.5, 0).is_err());
        assert!(erdos_renyi(5, -0.1, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = erdos_renyi(30, 0.2, 7).unwrap();
        let b = erdos_renyi(30, 0.2, 7).unwrap();
        assert_eq!(a.edge_count(), b.edge_count());
        assert!(a.edges().zip(b.edges()).all(|(x, y)| x == y));
    }
}
