//! Synthetic node profile attributes ("real-world node properties").
//!
//! Table 2 of the paper reruns the transitivity experiment with node
//! properties from the SNAP profiles as task characteristics. We synthesize
//! an equivalent: binary attributes whose prevalence is correlated with
//! community membership (members of one circle share interests), which is
//! the property the experiment actually exercises — characteristics are
//! unevenly distributed and neighbourhood-correlated.

use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Dense node × attribute boolean matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureMatrix {
    n_nodes: usize,
    n_features: usize,
    bits: Vec<bool>,
}

impl FeatureMatrix {
    /// Whether `node` has attribute `feature`.
    pub fn has(&self, node: usize, feature: usize) -> bool {
        assert!(node < self.n_nodes && feature < self.n_features);
        self.bits[node * self.n_features + feature]
    }

    /// All attributes of `node` as indices.
    pub fn features_of(&self, node: usize) -> Vec<usize> {
        (0..self.n_features).filter(|&f| self.has(node, f)).collect()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Number of attributes.
    pub fn feature_count(&self) -> usize {
        self.n_features
    }

    /// Fraction of nodes having attribute `feature`.
    pub fn prevalence(&self, feature: usize) -> f64 {
        if self.n_nodes == 0 {
            return 0.0;
        }
        (0..self.n_nodes).filter(|&n| self.has(n, feature)).count() as f64 / self.n_nodes as f64
    }
}

/// Synthesizes community-correlated attributes.
///
/// Each community draws, per attribute, a prevalence that is either high
/// (community trait, probability `trait_prob`) or low (background). Nodes
/// then sample attributes independently with their community's prevalence.
pub fn synthesize_features(
    community: &[u32],
    n_features: usize,
    trait_prob: f64,
    seed: u64,
) -> FeatureMatrix {
    let n_nodes = community.len();
    let n_comms = community.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut rng = SmallRng::seed_from_u64(seed);

    // per (community, feature) prevalence
    let mut prevalence = vec![0.0f64; n_comms * n_features];
    for c in 0..n_comms {
        for f in 0..n_features {
            prevalence[c * n_features + f] = if rng.gen_bool(trait_prob) {
                rng.gen_range(0.6..0.95)
            } else {
                rng.gen_range(0.02..0.15)
            };
        }
    }

    let mut bits = vec![false; n_nodes * n_features];
    for (node, &c) in community.iter().enumerate() {
        for f in 0..n_features {
            let p = prevalence[c as usize * n_features + f];
            bits[node * n_features + f] = rng.gen_bool(p);
        }
    }
    FeatureMatrix { n_nodes, n_features, bits }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_and_access() {
        let community = vec![0, 0, 1, 1];
        let m = synthesize_features(&community, 5, 0.3, 1);
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.feature_count(), 5);
        for n in 0..4 {
            for f in 0..5 {
                let _ = m.has(n, f);
            }
        }
    }

    #[test]
    fn features_of_lists_only_present() {
        let community = vec![0; 10];
        let m = synthesize_features(&community, 4, 0.5, 2);
        for n in 0..10 {
            for f in m.features_of(n) {
                assert!(m.has(n, f));
            }
        }
    }

    #[test]
    fn community_correlation_exists() {
        // Two large communities; at least one feature should differ strongly
        // in prevalence between them.
        let mut community = vec![0u32; 200];
        community[100..].fill(1);
        let m = synthesize_features(&community, 8, 0.4, 3);
        let mut max_gap = 0.0f64;
        for f in 0..8 {
            let p0 = (0..100).filter(|&n| m.has(n, f)).count() as f64 / 100.0;
            let p1 = (100..200).filter(|&n| m.has(n, f)).count() as f64 / 100.0;
            max_gap = max_gap.max((p0 - p1).abs());
        }
        assert!(max_gap > 0.3, "expected a community-trait gap, max was {max_gap}");
    }

    #[test]
    fn deterministic_per_seed() {
        let community = vec![0, 1, 2, 0, 1, 2];
        assert_eq!(
            synthesize_features(&community, 6, 0.3, 9),
            synthesize_features(&community, 6, 0.3, 9)
        );
    }

    #[test]
    fn empty_inputs() {
        let m = synthesize_features(&[], 3, 0.3, 0);
        assert_eq!(m.node_count(), 0);
        assert_eq!(m.prevalence(0), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_access_panics() {
        let m = synthesize_features(&[0, 0], 2, 0.3, 0);
        m.has(5, 0);
    }
}
