//! Barabási–Albert preferential-attachment generator.

use crate::error::GraphError;
use crate::graph::{NodeId, SocialGraph};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Generates a BA scale-free graph: starts from an `m`-clique, then each new
/// node attaches to `m` existing nodes chosen proportionally to degree.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Result<SocialGraph, GraphError> {
    if m == 0 || n < m + 1 {
        return Err(GraphError::InvalidGenerator(format!("need n > m >= 1, got n = {n}, m = {m}")));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = SocialGraph::with_nodes(n);
    // Endpoint bag: node appears once per incident edge, so sampling from
    // the bag is degree-proportional sampling.
    let mut bag: Vec<u32> = Vec::with_capacity(2 * n * m);

    // seed clique on the first m+1 nodes
    for a in 0..=m {
        for b in a + 1..=m {
            g.add_edge(NodeId(a as u32), NodeId(b as u32)).expect("clique edge");
            bag.push(a as u32);
            bag.push(b as u32);
        }
    }

    let mut targets = Vec::with_capacity(m);
    for v in m + 1..n {
        targets.clear();
        // sample m distinct degree-proportional targets
        let mut guard = 0usize;
        while targets.len() < m {
            let t = bag[rng.gen_range(0..bag.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
            if guard > 50 * m {
                // fall back to uniform among remaining (degenerate small graphs)
                for u in 0..v as u32 {
                    if targets.len() < m && !targets.contains(&u) {
                        targets.push(u);
                    }
                }
            }
        }
        for &t in &targets {
            g.add_edge(NodeId(v as u32), NodeId(t)).expect("new node edge");
            bag.push(v as u32);
            bag.push(t);
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{degree_histogram, max_degree};

    #[test]
    fn edge_count_formula() {
        let n = 50;
        let m = 3;
        let g = barabasi_albert(n, m, 5).unwrap();
        // clique: m(m+1)/2 edges; each of the other n-m-1 nodes adds m.
        assert_eq!(g.edge_count(), m * (m + 1) / 2 + (n - m - 1) * m);
    }

    #[test]
    fn produces_hubs() {
        let g = barabasi_albert(300, 2, 9).unwrap();
        // A scale-free graph of this size reliably has a hub well above the mean degree (~4).
        assert!(max_degree(&g) > 15, "max degree {}", max_degree(&g));
    }

    #[test]
    fn minimum_degree_is_m() {
        let g = barabasi_albert(100, 3, 2).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h[0], 0);
        assert_eq!(h[1], 0);
        assert_eq!(h[2], 0);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(barabasi_albert(3, 0, 0).is_err());
        assert!(barabasi_albert(3, 3, 0).is_err());
    }

    #[test]
    fn connected() {
        let g = barabasi_albert(80, 2, 3).unwrap();
        let (_, comps) = crate::traversal::connected_components(&g);
        assert_eq!(comps, 1);
    }
}
