//! Convenience builder for assembling graphs from edge lists.

use crate::error::GraphError;
use crate::graph::{NodeId, SocialGraph};

/// Accumulates edges (given as raw `u32` pairs) and produces a
/// [`SocialGraph`] sized to the largest endpoint seen.
///
/// ```
/// use siot_graph::GraphBuilder;
/// let g = GraphBuilder::new()
///     .edge(0, 1)
///     .edge(1, 2)
///     .build()
///     .unwrap();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<(u32, u32)>,
    min_nodes: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Guarantees the built graph has at least `n` nodes even if fewer are
    /// referenced by edges.
    pub fn nodes(mut self, n: usize) -> Self {
        self.min_nodes = self.min_nodes.max(n);
        self
    }

    /// Records the undirected edge `(a, b)`.
    pub fn edge(mut self, a: u32, b: u32) -> Self {
        self.edges.push((a, b));
        self
    }

    /// Records every edge in `it`.
    pub fn edges<I: IntoIterator<Item = (u32, u32)>>(mut self, it: I) -> Self {
        self.edges.extend(it);
        self
    }

    /// Builds the graph; duplicate edges coalesce, self-loops error.
    pub fn build(self) -> Result<SocialGraph, GraphError> {
        let max_node = self.edges.iter().map(|&(a, b)| a.max(b) as usize + 1).max().unwrap_or(0);
        let mut g = SocialGraph::with_nodes(max_node.max(self.min_nodes));
        for (a, b) in self.edges {
            g.add_edge(NodeId(a), NodeId(b))?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_edge_list() {
        let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 3)]).build().unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn min_nodes_respected() {
        let g = GraphBuilder::new().nodes(10).edge(0, 1).build().unwrap();
        assert_eq!(g.node_count(), 10);
    }

    #[test]
    fn empty_builder_gives_empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn self_loop_propagates_error() {
        assert!(GraphBuilder::new().edge(1, 1).build().is_err());
    }

    #[test]
    fn duplicates_coalesce() {
        let g = GraphBuilder::new().edge(0, 1).edge(1, 0).build().unwrap();
        assert_eq!(g.edge_count(), 1);
    }
}
