//! # siot-graph — social-network substrate for the Social IoT
//!
//! This crate provides everything the trust simulations need from a social
//! network: an undirected graph type, exact connectivity metrics (the ones
//! reported in Table 1 of the paper), community detection, and seeded
//! generators that synthesize networks statistically matched to the three
//! real-world sub-networks the paper evaluates on (Facebook, Google+,
//! Twitter ego-network extracts).
//!
//! The generators replace the SNAP datasets, which are not redistributable
//! here; see `DESIGN.md` §2 for the substitution argument.
//!
//! ```
//! use siot_graph::generate::social::SocialNetKind;
//!
//! let g = SocialNetKind::Twitter.generate(42);
//! assert_eq!(g.node_count(), 244);
//! let stats = siot_graph::metrics::ConnectivityStats::compute(&g, 42);
//! assert!(stats.average_degree > 10.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod community;
pub mod error;
pub mod generate;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod traversal;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{NodeId, SocialGraph};
