//! Edge-list I/O.
//!
//! Downstream users with access to the real SNAP ego-network extracts can
//! load them here and run every simulation on the authentic connectivity
//! instead of the synthesized substitutes. The format is the SNAP one:
//! one `src dst` pair per line, `#` comments, whitespace separated.

use crate::error::GraphError;
use crate::graph::SocialGraph;
use crate::GraphBuilder;
use std::io::{BufRead, BufWriter, Write};

/// Parses an edge list from a reader (SNAP format: `# comment` lines and
/// `src dst` pairs). Node ids are compacted to a dense range in first-seen
/// order; self-loops are skipped; duplicate edges coalesce.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<SocialGraph, GraphError> {
    let mut remap: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let mut next = 0u32;
    let mut builder = GraphBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| {
            GraphError::InvalidGenerator(format!("I/O error on line {}: {e}", lineno + 1))
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (a, b) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(GraphError::InvalidGenerator(format!(
                    "line {}: expected `src dst`, got {line:?}",
                    lineno + 1
                )))
            }
        };
        let parse = |s: &str| {
            s.parse::<u64>().map_err(|_| {
                GraphError::InvalidGenerator(format!("line {}: invalid node id {s:?}", lineno + 1))
            })
        };
        let (a, b) = (parse(a)?, parse(b)?);
        if a == b {
            continue; // social edge lists occasionally carry self-loops; drop them
        }
        let mut id = |raw: u64| {
            *remap.entry(raw).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            })
        };
        let (ia, ib) = (id(a), id(b));
        builder = builder.edge(ia, ib);
    }
    builder.build()
}

/// Writes the graph as a SNAP-style edge list (each undirected edge once).
pub fn write_edge_list<W: Write>(g: &SocialGraph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes: {}  edges: {}", g.node_count(), g.edge_count())?;
    for (a, b) in g.edges() {
        writeln!(w, "{} {}", a.0, b.0)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::erdos_renyi::erdos_renyi;

    #[test]
    fn roundtrip_preserves_structure() {
        let g = erdos_renyi(30, 0.2, 7).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        // node ids may be remapped (isolated nodes are dropped), but the
        // degree multiset of non-isolated nodes survives
        let degrees = |g: &SocialGraph| {
            let mut d: Vec<usize> = g.nodes().map(|n| g.degree(n)).filter(|&d| d > 0).collect();
            d.sort_unstable();
            d
        };
        assert_eq!(degrees(&g), degrees(&g2));
    }

    #[test]
    fn parses_snap_style_input() {
        let input = "# comment line\n\n10 20\n20 30\n10 20\n7 7\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 3, "ids compacted, self-loop node dropped");
        assert_eq!(g.edge_count(), 2, "duplicate collapsed, self-loop skipped");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_edge_list("1\n".as_bytes()).is_err(), "missing dst");
        assert!(read_edge_list("a b\n".as_bytes()).is_err(), "non-numeric");
    }

    #[test]
    fn tab_separated_accepted() {
        let g = read_edge_list("0\t1\n1\t2\n".as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("# just a header\n".as_bytes()).unwrap();
        assert_eq!(g.node_count(), 0);
    }
}
