//! Error type for graph construction and queries.

use std::fmt;

/// Errors returned by graph construction and algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id referenced a node that does not exist.
    NodeOutOfBounds {
        /// The offending node index.
        node: u32,
        /// Number of nodes in the graph.
        len: u32,
    },
    /// A self-loop was requested, which social graphs here do not allow.
    SelfLoop(u32),
    /// A generator was asked for an impossible configuration.
    InvalidGenerator(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, len } => {
                write!(f, "node {node} out of bounds (graph has {len} nodes)")
            }
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n} not allowed"),
            GraphError::InvalidGenerator(msg) => write!(f, "invalid generator config: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::NodeOutOfBounds { node: 7, len: 3 };
        assert_eq!(e.to_string(), "node 7 out of bounds (graph has 3 nodes)");
        assert_eq!(GraphError::SelfLoop(2).to_string(), "self-loop on node 2 not allowed");
        assert!(GraphError::InvalidGenerator("p>1".into()).to_string().contains("p>1"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(GraphError::SelfLoop(0));
    }
}
