//! Louvain community detection (Blondel et al. 2008, the paper's \[35\]).
//!
//! Standard two-phase algorithm on a weighted multigraph: (1) greedy local
//! moves maximizing the modularity gain, (2) aggregation of communities into
//! super-nodes, repeated until no gain. Tie-breaking order is seeded so runs
//! are reproducible.

use crate::graph::SocialGraph;
use crate::metrics::modularity::modularity;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a community detection run.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// `community[node] = community id` with contiguous ids starting at 0.
    pub community: Vec<u32>,
    /// Newman modularity of this partition on the original graph.
    pub modularity: f64,
}

impl Partition {
    /// Number of distinct communities.
    pub fn community_count(&self) -> usize {
        self.community.iter().copied().max().map_or(0, |m| m as usize + 1)
    }

    /// Members of community `c`.
    pub fn members(&self, c: u32) -> Vec<u32> {
        self.community
            .iter()
            .enumerate()
            .filter(|&(_, &cc)| cc == c)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// Internal weighted graph for the aggregation phase.
struct WeightedGraph {
    /// adjacency: for each node, (neighbor, weight) pairs.
    adj: Vec<Vec<(usize, f64)>>,
    /// self-loop weight per node (intra-community weight after aggregation).
    self_loops: Vec<f64>,
    /// total edge weight `m` (undirected sum, self-loops counted once).
    total_weight: f64,
}

impl WeightedGraph {
    fn from_social(g: &SocialGraph) -> Self {
        let mut adj = vec![Vec::new(); g.node_count()];
        for (a, b) in g.edges() {
            adj[a.index()].push((b.index(), 1.0));
            adj[b.index()].push((a.index(), 1.0));
        }
        WeightedGraph {
            adj,
            self_loops: vec![0.0; g.node_count()],
            total_weight: g.edge_count() as f64,
        }
    }

    fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Weighted degree including 2× self-loop weight.
    fn weighted_degree(&self, v: usize) -> f64 {
        self.adj[v].iter().map(|&(_, w)| w).sum::<f64>() + 2.0 * self.self_loops[v]
    }
}

/// Louvain runner; `seed` fixes the node visiting order.
#[derive(Debug, Clone, Copy)]
pub struct Louvain {
    seed: u64,
    /// Minimum modularity gain to keep iterating a level.
    min_gain: f64,
}

impl Louvain {
    /// Creates a runner with the default gain threshold (1e-7).
    pub fn new(seed: u64) -> Self {
        Louvain { seed, min_gain: 1e-7 }
    }

    /// Runs the full multi-level algorithm on `g`.
    pub fn run(&self, g: &SocialGraph) -> Partition {
        let n = g.node_count();
        if n == 0 {
            return Partition { community: Vec::new(), modularity: 0.0 };
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut wg = WeightedGraph::from_social(g);
        // node -> community on the *original* graph
        let mut assignment: Vec<u32> = (0..n as u32).collect();

        loop {
            let local = self.one_level(&wg, &mut rng);
            let moved = local.moved;
            let compact = compact_labels(&local.community);
            // project onto original nodes
            for a in assignment.iter_mut() {
                *a = compact.labels[*a as usize];
            }
            if !moved || compact.count == wg.node_count() {
                break;
            }
            wg = aggregate(&wg, &compact.labels, compact.count);
        }

        let compact = compact_labels(&assignment);
        let q = modularity(g, &compact.labels);
        Partition { community: compact.labels, modularity: q }
    }

    /// Phase 1: greedy local moves. Returns per-node community and whether
    /// any node moved.
    fn one_level(&self, wg: &WeightedGraph, rng: &mut SmallRng) -> LocalResult {
        let n = wg.node_count();
        let m2 = 2.0 * wg.total_weight;
        let mut community: Vec<u32> = (0..n as u32).collect();
        // sum of weighted degrees per community
        let mut sigma_tot: Vec<f64> = (0..n).map(|v| wg.weighted_degree(v)).collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut moved_any = false;
        if m2 == 0.0 {
            return LocalResult { community, moved: false };
        }

        // weights from the current node to each neighbouring community
        let mut neigh_weight: Vec<f64> = vec![0.0; n];
        let mut neigh_comms: Vec<u32> = Vec::new();

        loop {
            let mut moved_this_pass = 0usize;
            for &v in &order {
                let v_comm = community[v];
                let k_v = wg.weighted_degree(v);

                neigh_comms.clear();
                for &(u, w) in &wg.adj[v] {
                    let c = community[u];
                    if neigh_weight[c as usize] == 0.0 {
                        neigh_comms.push(c);
                    }
                    neigh_weight[c as usize] += w;
                }

                // remove v from its community
                sigma_tot[v_comm as usize] -= k_v;
                let w_own = neigh_weight[v_comm as usize];

                // best gain: ΔQ ∝ w_{v,c} − k_v·Σ_tot(c)/2m
                let mut best_comm = v_comm;
                let mut best_gain = w_own - k_v * sigma_tot[v_comm as usize] / m2;
                for &c in &neigh_comms {
                    if c == v_comm {
                        continue;
                    }
                    let gain = neigh_weight[c as usize] - k_v * sigma_tot[c as usize] / m2;
                    if gain > best_gain + self.min_gain {
                        best_gain = gain;
                        best_comm = c;
                    }
                }

                sigma_tot[best_comm as usize] += k_v;
                community[v] = best_comm;
                if best_comm != v_comm {
                    moved_this_pass += 1;
                    moved_any = true;
                }

                for &c in &neigh_comms {
                    neigh_weight[c as usize] = 0.0;
                }
            }
            if moved_this_pass == 0 {
                break;
            }
        }
        LocalResult { community, moved: moved_any }
    }
}

struct LocalResult {
    community: Vec<u32>,
    moved: bool,
}

struct CompactLabels {
    labels: Vec<u32>,
    count: usize,
}

/// Renumbers arbitrary labels to contiguous `0..count`.
fn compact_labels(labels: &[u32]) -> CompactLabels {
    let max = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut map = vec![u32::MAX; max];
    let mut next = 0u32;
    let mut out = Vec::with_capacity(labels.len());
    for &l in labels {
        if map[l as usize] == u32::MAX {
            map[l as usize] = next;
            next += 1;
        }
        out.push(map[l as usize]);
    }
    CompactLabels { labels: out, count: next as usize }
}

/// Phase 2: aggregates communities into super-nodes.
fn aggregate(wg: &WeightedGraph, labels: &[u32], count: usize) -> WeightedGraph {
    let mut self_loops = vec![0.0; count];
    let mut edge_maps: Vec<std::collections::BTreeMap<usize, f64>> =
        vec![std::collections::BTreeMap::new(); count];
    for v in 0..wg.node_count() {
        let cv = labels[v] as usize;
        self_loops[cv] += wg.self_loops[v];
        for &(u, w) in &wg.adj[v] {
            let cu = labels[u] as usize;
            if cu == cv {
                // each intra edge seen twice (v->u and u->v)
                self_loops[cv] += w / 2.0;
            } else {
                *edge_maps[cv].entry(cu).or_insert(0.0) += w;
            }
        }
    }
    let total_weight = wg.total_weight;
    let adj = edge_maps.into_iter().map(|m| m.into_iter().collect()).collect();
    WeightedGraph { adj, self_loops, total_weight }
}

impl Partition {
    /// Derives the partition's community count (alias used by stats code).
    pub fn len(&self) -> usize {
        self.community.len()
    }

    /// True when the partition covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.community.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::erdos_renyi::erdos_renyi;
    use crate::GraphBuilder;

    fn two_triangles() -> SocialGraph {
        GraphBuilder::new()
            .edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
            .build()
            .unwrap()
    }

    #[test]
    fn finds_two_triangles() {
        let p = Louvain::new(7).run(&two_triangles());
        assert_eq!(p.community_count(), 2);
        assert_eq!(p.community[0], p.community[1]);
        assert_eq!(p.community[0], p.community[2]);
        assert_eq!(p.community[3], p.community[4]);
        assert_ne!(p.community[0], p.community[3]);
        assert!(p.modularity > 0.3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = two_triangles();
        let a = Louvain::new(3).run(&g);
        let b = Louvain::new(3).run(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph() {
        let p = Louvain::new(1).run(&SocialGraph::with_nodes(0));
        assert!(p.is_empty());
        assert_eq!(p.community_count(), 0);
    }

    #[test]
    fn edgeless_graph_all_singletons() {
        let p = Louvain::new(1).run(&SocialGraph::with_nodes(4));
        assert_eq!(p.len(), 4);
        assert_eq!(p.modularity, 0.0);
    }

    #[test]
    fn ring_of_cliques() {
        // 4 cliques of 5 nodes, ring-connected: Louvain should find 4 (or
        // occasionally merged) communities with high modularity.
        let mut b = GraphBuilder::new();
        for c in 0..4u32 {
            let base = c * 5;
            for i in 0..5 {
                for j in i + 1..5 {
                    b = b.edge(base + i, base + j);
                }
            }
            b = b.edge(base + 4, (base + 5) % 20);
        }
        let g = b.build().unwrap();
        let p = Louvain::new(11).run(&g);
        assert_eq!(p.community_count(), 4);
        assert!(p.modularity > 0.5, "Q = {}", p.modularity);
    }

    #[test]
    fn members_returns_each_node_once() {
        let p = Louvain::new(5).run(&two_triangles());
        let mut all: Vec<u32> =
            (0..p.community_count() as u32).flat_map(|c| p.members(c)).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn random_graph_runs_and_modularity_matches_partition() {
        let g = erdos_renyi(60, 0.08, 99).unwrap();
        let p = Louvain::new(2).run(&g);
        let q = crate::metrics::modularity(&g, &p.community);
        assert!((q - p.modularity).abs() < 1e-9);
    }
}
