//! Community detection (paper reference \[35\], Blondel et al. Louvain).

pub mod label_prop;
pub mod louvain;

pub use label_prop::label_propagation;
pub use louvain::{Louvain, Partition};
