//! Asynchronous label propagation, used as a cross-check for Louvain in the
//! Table 1 ablation bench.

use crate::graph::SocialGraph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Runs asynchronous label propagation until stable or `max_sweeps`.
///
/// Returns contiguous community labels. Ties between equally-frequent
/// neighbour labels are broken uniformly at random with the seeded RNG.
pub fn label_propagation(g: &SocialGraph, seed: u64, max_sweeps: usize) -> Vec<u32> {
    let n = g.node_count();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    if n == 0 {
        return labels;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut counts: Vec<u32> = vec![0; n];
    let mut seen: Vec<u32> = Vec::new();
    let mut best: Vec<u32> = Vec::new();

    for _ in 0..max_sweeps {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &v in &order {
            let nbrs = g.neighbors(crate::graph::NodeId(v as u32));
            if nbrs.is_empty() {
                continue;
            }
            seen.clear();
            let mut best_count = 0;
            best.clear();
            for &u in nbrs {
                let l = labels[u.index()];
                if counts[l as usize] == 0 {
                    seen.push(l);
                }
                counts[l as usize] += 1;
                let c = counts[l as usize];
                match c.cmp(&best_count) {
                    std::cmp::Ordering::Greater => {
                        best_count = c;
                        best.clear();
                        best.push(l);
                    }
                    std::cmp::Ordering::Equal => best.push(l),
                    std::cmp::Ordering::Less => {}
                }
            }
            let new = best[rng.gen_range(0..best.len())];
            for &l in &seen {
                counts[l as usize] = 0;
            }
            if new != labels[v] {
                labels[v] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    compact(&labels)
}

fn compact(labels: &[u32]) -> Vec<u32> {
    let max = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut map = vec![u32::MAX; max];
    let mut next = 0u32;
    labels
        .iter()
        .map(|&l| {
            if map[l as usize] == u32::MAX {
                map[l as usize] = next;
                next += 1;
            }
            map[l as usize]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn two_cliques_get_two_labels() {
        let mut b = GraphBuilder::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in i + 1..5 {
                    b = b.edge(base + i, base + j);
                }
            }
        }
        let g = b.edge(4, 5).build().unwrap();
        let labels = label_propagation(&g, 42, 100);
        // Every node in clique A shares a label; likewise clique B.
        assert!(labels[..5].iter().all(|&l| l == labels[0]));
        assert!(labels[5..].iter().all(|&l| l == labels[5]));
    }

    #[test]
    fn isolated_nodes_keep_their_label() {
        let g = SocialGraph::with_nodes(3);
        let labels = label_propagation(&g, 1, 10);
        assert_eq!(labels, vec![0, 1, 2]);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 3), (3, 0)]).build().unwrap();
        assert_eq!(label_propagation(&g, 9, 50), label_propagation(&g, 9, 50));
    }

    use crate::graph::SocialGraph;

    #[test]
    fn empty_graph() {
        assert!(label_propagation(&SocialGraph::with_nodes(0), 0, 10).is_empty());
    }
}
