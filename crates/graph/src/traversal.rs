//! Breadth-first traversal primitives: distances, components, k-hop rings.
//!
//! Everything downstream (diameter, average path length, trustee search in
//! `siot-sim`) is built on these routines, so they are written allocation-
//! consciously: a single `Vec<u32>` distance array and a reusable queue.

use crate::graph::{NodeId, SocialGraph};
use std::collections::VecDeque;

/// Distance value meaning "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances from `src`.
///
/// Returns a vector of hop counts, [`UNREACHABLE`] for nodes in other
/// components.
pub fn bfs_distances(g: &SocialGraph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS limited to `max_hops`; unreached nodes get [`UNREACHABLE`].
pub fn bfs_distances_bounded(g: &SocialGraph, src: NodeId, max_hops: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du >= max_hops {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Shortest path from `src` to `dst` as a node sequence (inclusive), or
/// `None` if disconnected.
pub fn shortest_path(g: &SocialGraph, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut parent: Vec<u32> = vec![u32::MAX; g.node_count()];
    let mut seen = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    seen[src.index()] = true;
    queue.push_back(src);
    'outer: while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                parent[v.index()] = u.0;
                if v == dst {
                    break 'outer;
                }
                queue.push_back(v);
            }
        }
    }
    if !seen[dst.index()] {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = NodeId(parent[cur.index()]);
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Connected components; returns `(component id per node, component count)`.
pub fn connected_components(g: &SocialGraph) -> (Vec<u32>, usize) {
    let mut comp = vec![u32::MAX; g.node_count()];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for s in g.nodes() {
        if comp[s.index()] != u32::MAX {
            continue;
        }
        comp[s.index()] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v.index()] == u32::MAX {
                    comp[v.index()] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Node ids of the largest connected component.
pub fn largest_component(g: &SocialGraph) -> Vec<NodeId> {
    let (comp, count) = connected_components(g);
    if count == 0 {
        return Vec::new();
    }
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .expect("count > 0");
    g.nodes().filter(|n| comp[n.index()] == best).collect()
}

/// All nodes at exactly `hops` hops from `src`.
pub fn ring(g: &SocialGraph, src: NodeId, hops: u32) -> Vec<NodeId> {
    let dist = bfs_distances_bounded(g, src, hops);
    g.nodes().filter(|n| dist[n.index()] == hops).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path4() -> SocialGraph {
        // 0 - 1 - 2 - 3, plus isolated 4
        GraphBuilder::new().nodes(5).edges([(0, 1), (1, 2), (2, 3)]).build().unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path4();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(&d[..4], &[0, 1, 2, 3]);
        assert_eq!(d[4], UNREACHABLE);
    }

    #[test]
    fn bounded_bfs_stops() {
        let g = path4();
        let d = bfs_distances_bounded(&g, NodeId(0), 2);
        assert_eq!(&d[..4], &[0, 1, 2, UNREACHABLE]);
    }

    #[test]
    fn shortest_path_found() {
        let g = path4();
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn shortest_path_trivial_and_missing() {
        let g = path4();
        assert_eq!(shortest_path(&g, NodeId(2), NodeId(2)), Some(vec![NodeId(2)]));
        assert_eq!(shortest_path(&g, NodeId(0), NodeId(4)), None);
    }

    #[test]
    fn components_counted() {
        let g = path4();
        let (comp, n) = connected_components(&g);
        assert_eq!(n, 2);
        assert_eq!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[4]);
    }

    #[test]
    fn largest_component_is_the_path() {
        let g = path4();
        let lc = largest_component(&g);
        assert_eq!(lc, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn ring_exact_hops() {
        let g = path4();
        assert_eq!(ring(&g, NodeId(0), 2), vec![NodeId(2)]);
        assert_eq!(ring(&g, NodeId(0), 0), vec![NodeId(0)]);
        assert!(ring(&g, NodeId(0), 9).is_empty());
    }

    #[test]
    fn empty_graph_components() {
        let g = SocialGraph::with_nodes(0);
        let (comp, n) = connected_components(&g);
        assert!(comp.is_empty());
        assert_eq!(n, 0);
        assert!(largest_component(&g).is_empty());
    }
}
