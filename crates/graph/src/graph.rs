//! The undirected social graph used by every simulation.
//!
//! Nodes are dense indices (`NodeId`), adjacency lists are kept sorted so
//! membership checks are `O(log deg)` and neighbour iteration is cache
//! friendly. Self-loops are rejected; parallel edges are coalesced.

use crate::error::GraphError;
use std::fmt;

/// Dense node identifier. The graph owns nodes `0..node_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// An undirected, simple (no self-loops, no parallel edges) social graph.
#[derive(Debug, Clone, Default)]
pub struct SocialGraph {
    adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl SocialGraph {
    /// Creates an empty graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        SocialGraph { adj: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId)
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        NodeId(self.adj.len() as u32 - 1)
    }

    fn check(&self, n: NodeId) -> Result<(), GraphError> {
        if n.index() >= self.adj.len() {
            return Err(GraphError::NodeOutOfBounds { node: n.0, len: self.adj.len() as u32 });
        }
        Ok(())
    }

    /// Adds the undirected edge `(a, b)`. Returns `true` if the edge is new.
    ///
    /// Self-loops are rejected with [`GraphError::SelfLoop`].
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<bool, GraphError> {
        self.check(a)?;
        self.check(b)?;
        if a == b {
            return Err(GraphError::SelfLoop(a.0));
        }
        let pos = match self.adj[a.index()].binary_search(&b) {
            Ok(_) => return Ok(false),
            Err(pos) => pos,
        };
        self.adj[a.index()].insert(pos, b);
        let pos_b = self.adj[b.index()]
            .binary_search(&a)
            .expect_err("edge must be symmetric: a->b was absent");
        self.adj[b.index()].insert(pos_b, a);
        self.edge_count += 1;
        Ok(true)
    }

    /// Whether the undirected edge `(a, b)` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adj.get(a.index()).is_some_and(|nb| nb.binary_search(&b).is_ok())
    }

    /// Sorted neighbour slice of `n`. Panics if `n` is out of bounds.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        &self.adj[n.index()]
    }

    /// Degree of `n`.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.index()].len()
    }

    /// Iterator over all undirected edges, each reported once with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(a, nbrs)| {
            let a = NodeId(a as u32);
            nbrs.iter().copied().filter(move |&b| a < b).map(move |b| (a, b))
        })
    }

    /// Builds the induced subgraph on `keep` (order preserved, deduplicated).
    ///
    /// Returns the subgraph and the mapping `new index -> old NodeId`.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (SocialGraph, Vec<NodeId>) {
        let mut old_to_new = vec![u32::MAX; self.node_count()];
        let mut mapping = Vec::with_capacity(keep.len());
        for &old in keep {
            if old.index() < self.node_count() && old_to_new[old.index()] == u32::MAX {
                old_to_new[old.index()] = mapping.len() as u32;
                mapping.push(old);
            }
        }
        let mut sub = SocialGraph::with_nodes(mapping.len());
        for (new_a, &old_a) in mapping.iter().enumerate() {
            for &old_b in self.neighbors(old_a) {
                let new_b = old_to_new[old_b.index()];
                if new_b != u32::MAX && (new_a as u32) < new_b {
                    sub.add_edge(NodeId(new_a as u32), NodeId(new_b))
                        .expect("induced edges are valid by construction");
                }
            }
        }
        (sub, mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> SocialGraph {
        let mut g = SocialGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        g.add_edge(NodeId(1), NodeId(2)).unwrap();
        g.add_edge(NodeId(2), NodeId(0)).unwrap();
        g
    }

    #[test]
    fn empty_graph() {
        let g = SocialGraph::with_nodes(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = SocialGraph::with_nodes(2);
        let c = g.add_node();
        assert_eq!(c, NodeId(2));
        assert!(g.add_edge(NodeId(0), c).unwrap());
        assert!(g.has_edge(c, NodeId(0)), "edges are symmetric");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn parallel_edges_coalesce() {
        let mut g = SocialGraph::with_nodes(2);
        assert!(g.add_edge(NodeId(0), NodeId(1)).unwrap());
        assert!(!g.add_edge(NodeId(1), NodeId(0)).unwrap());
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(0)), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = SocialGraph::with_nodes(1);
        assert_eq!(g.add_edge(NodeId(0), NodeId(0)), Err(GraphError::SelfLoop(0)));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut g = SocialGraph::with_nodes(1);
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(5)),
            Err(GraphError::NodeOutOfBounds { node: 5, len: 1 })
        ));
    }

    #[test]
    fn neighbors_sorted() {
        let mut g = SocialGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(3)).unwrap();
        g.add_edge(NodeId(0), NodeId(1)).unwrap();
        g.add_edge(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn edges_reported_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (a, b) in edges {
            assert!(a < b);
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = triangle();
        let (sub, map) = g.induced_subgraph(&[NodeId(0), NodeId(2)]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(map, vec![NodeId(0), NodeId(2)]);
        assert!(sub.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn induced_subgraph_dedups_and_ignores_oob() {
        let g = triangle();
        let (sub, map) = g.induced_subgraph(&[NodeId(1), NodeId(1), NodeId(9)]);
        assert_eq!(sub.node_count(), 1);
        assert_eq!(map, vec![NodeId(1)]);
        assert_eq!(sub.edge_count(), 0);
    }

    #[test]
    fn display_node_id() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId::from(3u32), NodeId(3));
        assert_eq!(NodeId(3).index(), 3);
    }
}
