//! Property-based tests for the simulation engine, including the method
//! dominance guarantees the paper claims.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use siot_graph::generate::erdos_renyi;
use siot_sim::tasks::TaskPool;
use siot_sim::{AgentId, Knowledge, SearchMethod, TrusteeSearch};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The aggressive candidate set contains the conservative one, which
    /// contains... nothing guaranteed from traditional (different record
    /// semantics), but conservative ⊆ aggressive must hold structurally
    /// (Eq. 12 relaxes Eq. 8).
    #[test]
    fn aggressive_candidates_superset_of_conservative(
        seed in 0u64..200, n_chars in 3usize..6, trustor in 0u32..20
    ) {
        let g = erdos_renyi(20, 0.25, seed).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xabc);
        let pool = TaskPool::generate(n_chars, n_chars, &mut rng);
        let knowledge = Knowledge::seed(&g, &pool, 2, 0.05, &mut rng);
        let search = TrusteeSearch::new(&g, &knowledge, &pool);
        let everyone = |_: AgentId| true;
        let task = pool.random_pair_task(&mut rng);

        let cons = search.find(SearchMethod::Conservative, AgentId::from(trustor), task, &everyone);
        let aggr = search.find(SearchMethod::Aggressive, AgentId::from(trustor), task, &everyone);
        for c in &cons.candidates {
            prop_assert!(
                aggr.candidates.iter().any(|a| a.trustee == c.trustee),
                "conservative candidate {} missing from aggressive set",
                c.trustee
            );
        }
        prop_assert!(aggr.inquired >= cons.inquired);
    }

    /// Search outcomes are deterministic and estimates stay in [0, 1].
    #[test]
    fn search_estimates_bounded_and_deterministic(
        seed in 0u64..100, method_idx in 0usize..3
    ) {
        let g = erdos_renyi(15, 0.3, seed).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let pool = TaskPool::generate(4, 4, &mut rng);
        let knowledge = Knowledge::seed(&g, &pool, 2, 0.05, &mut rng);
        let search = TrusteeSearch::new(&g, &knowledge, &pool);
        let everyone = |_: AgentId| true;
        let method = SearchMethod::ALL[method_idx];
        let task = pool.random_pair_task(&mut rng);

        let a = search.find(method, AgentId::from(0u32), task, &everyone);
        let b = search.find(method, AgentId::from(0u32), task, &everyone);
        prop_assert_eq!(&a, &b, "search must be pure");
        for c in &a.candidates {
            prop_assert!((0.0..=1.0).contains(&c.estimate), "{}", c.estimate);
        }
        prop_assert!(a.inquired <= g.node_count());
    }

    /// Knowledge seeding produces records within noise of ground truth.
    #[test]
    fn knowledge_records_track_truth(seed in 0u64..100, noise in 0.0..0.2f64) {
        let g = erdos_renyi(12, 0.4, seed).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let pool = TaskPool::generate(4, 4, &mut rng);
        let k = Knowledge::seed(&g, &pool, 2, noise, &mut rng);
        for holder in g.nodes() {
            for &peer in g.neighbors(holder) {
                for &tid in k.experienced(peer) {
                    let rec = k.record(holder, peer, tid).expect("neighbour record");
                    let truth = k.actual_task_competence(peer, pool.task(tid));
                    prop_assert!((0.0..=1.0).contains(&rec));
                    // clamping can only pull toward truth, so the bound holds
                    prop_assert!((rec - truth).abs() <= noise + 1e-9);
                }
            }
        }
    }
}
