//! Trustee discovery over the social graph (§4.3 / §5.5).
//!
//! A trustor floods a delegation request along qualified social links. The
//! paper's transitivity model distinguishes *recommendation* trust
//! `TW(Rτ)` — carried by every intermediate link and gated by ω₁ — from
//! *execution* trust, which only the final link toward the trustee carries
//! (gated by ω₂). The three methods differ in which links qualify and how
//! estimates combine:
//!
//! * **Traditional** (Eq. 5): only links whose record matches the *exact*
//!   task type qualify; estimates multiply along the path, unrestricted
//!   (no gates — the paper's point is precisely that existing models
//!   transit trust without restriction).
//! * **Conservative** (Eqs. 8–11): intermediates must understand the whole
//!   request (their experienced tasks cover *all* its characteristics);
//!   the final link's estimate comes from Eq. 4 inference; hops combine
//!   with Eq. 7.
//! * **Aggressive** (Eqs. 12–17): each characteristic travels its own
//!   paths (intermediates only need to cover *that* characteristic); the
//!   trustee needs all characteristics covered by its own experience, and
//!   the per-characteristic estimates recombine with Eq. 17.
//!
//! The search also counts *inquired nodes* — every node the request
//! reaches — which is the overhead metric of Fig. 12.

use crate::agent::AgentId;
use crate::knowledge::Knowledge;
use crate::tasks::TaskPool;
use siot_core::backend::{BTreeBackend, TrustBackend};
use siot_core::infer::{infer_characteristic, infer_task};
use siot_core::task::{CharacteristicId, TaskId};
use siot_core::transitivity::{two_hop, TransitivityGates};
use siot_graph::SocialGraph;

/// The three trust-transfer methods compared in §5.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchMethod {
    /// Exact-task-only transfer, Eq. 5 product chains, no gates.
    Traditional,
    /// All characteristics along one path (Eqs. 8–11).
    Conservative,
    /// Characteristics along different paths (Eqs. 12–17).
    Aggressive,
}

impl SearchMethod {
    /// All methods in the paper's comparison order.
    pub const ALL: [SearchMethod; 3] =
        [SearchMethod::Traditional, SearchMethod::Conservative, SearchMethod::Aggressive];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SearchMethod::Traditional => "Traditional",
            SearchMethod::Conservative => "Conservative",
            SearchMethod::Aggressive => "Aggressive",
        }
    }
}

/// A discovered potential trustee with its transferred trust estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The potential trustee.
    pub trustee: AgentId,
    /// Transferred trustworthiness estimate for the requested task.
    pub estimate: f64,
}

/// Result of one trustee search.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchOutcome {
    /// Potential trustees, sorted by descending estimate (ties by id).
    pub candidates: Vec<Candidate>,
    /// Number of distinct nodes the request reached (search overhead).
    pub inquired: usize,
}

impl SearchOutcome {
    /// The best candidate, if any.
    pub fn best(&self) -> Option<Candidate> {
        self.candidates.first().copied()
    }
}

/// Trustee search engine bound to one network's knowledge.
pub struct TrusteeSearch<'a, B: TrustBackend<AgentId> = BTreeBackend<AgentId>> {
    graph: &'a SocialGraph,
    knowledge: &'a Knowledge<B>,
    pool: &'a TaskPool,
    /// ω₁/ω₂ gates applied to recommendation / execution hops of the
    /// proposed methods (the traditional baseline is always ungated).
    pub gates: TransitivityGates,
    /// Maximum path length in hops (trustee at most this far).
    pub max_hops: usize,
}

/// Per-method behaviour of one flood.
struct FloodSpec<'s> {
    /// May `v` relay the request (context restriction)?
    relay_ok: &'s dyn Fn(AgentId) -> bool,
    /// Recommendation trust for the hop `u → v` (intermediate links).
    rec_tw: &'s dyn Fn(AgentId, AgentId) -> Option<f64>,
    /// Execution trust for the final hop `u → v` (trustee link).
    exec_tw: &'s dyn Fn(AgentId, AgentId) -> Option<f64>,
    /// May `v` be the executing trustee (context restriction)?
    trustee_ok: &'s dyn Fn(AgentId) -> bool,
    combine: Combine,
    gates: TransitivityGates,
}

impl<'a, B: TrustBackend<AgentId>> TrusteeSearch<'a, B> {
    /// Creates a search engine with paper-style defaults: ω₁ = 0.6 and
    /// ω₂ = 0.3 ("preset trustworthiness with relatively high values",
    /// §4.3) and a 3-hop search horizon.
    pub fn new(graph: &'a SocialGraph, knowledge: &'a Knowledge<B>, pool: &'a TaskPool) -> Self {
        TrusteeSearch {
            graph,
            knowledge,
            pool,
            gates: TransitivityGates { omega1: 0.6, omega2: 0.3 },
            max_hops: 3,
        }
    }

    /// Runs the search for `trustor` requesting `task`.
    ///
    /// `is_trustee` restricts which nodes may serve as trustees (role
    /// assignment); any node may act as an intermediate.
    pub fn find(
        &self,
        method: SearchMethod,
        trustor: AgentId,
        task: TaskId,
        is_trustee: &dyn Fn(AgentId) -> bool,
    ) -> SearchOutcome {
        match method {
            SearchMethod::Traditional => {
                let record = |u: AgentId, v: AgentId| self.knowledge.record(u, v, task);
                self.flood(
                    trustor,
                    is_trustee,
                    &FloodSpec {
                        relay_ok: &|v| self.knowledge.experienced_exactly(v, task),
                        rec_tw: &record,
                        exec_tw: &record,
                        trustee_ok: &|v| self.knowledge.experienced_exactly(v, task),
                        combine: Combine::Product,
                        gates: TransitivityGates::OPEN,
                    },
                )
            }
            SearchMethod::Conservative => {
                let t = self.pool.task(task);
                self.flood(
                    trustor,
                    is_trustee,
                    &FloodSpec {
                        relay_ok: &|v| self.knowledge.covers_all(v, t, self.pool),
                        rec_tw: &|u, v| self.knowledge.recommendation_trust(u, v),
                        exec_tw: &|u, v| {
                            infer_task(t, &self.knowledge.experiences(u, v, self.pool)).ok()
                        },
                        trustee_ok: &|v| self.knowledge.covers_all(v, t, self.pool),
                        combine: Combine::Eq7,
                        gates: self.gates,
                    },
                )
            }
            SearchMethod::Aggressive => self.aggressive(trustor, task, is_trustee),
        }
    }

    /// One BFS flood carrying a single estimate.
    fn flood(
        &self,
        trustor: AgentId,
        is_trustee: &dyn Fn(AgentId) -> bool,
        spec: &FloodSpec<'_>,
    ) -> SearchOutcome {
        let n = self.graph.node_count();
        // best recommendation-path value per node (all hops cleared ω₁)
        let mut rec_val: Vec<Option<f64>> = vec![None; n];
        let mut cand_val: Vec<Option<f64>> = vec![None; n];
        let mut reached = vec![false; n];
        rec_val[trustor.index()] = Some(1.0);
        let mut frontier = vec![trustor];

        for _hop in 0..self.max_hops {
            let mut next = Vec::new();
            for &u in &frontier {
                let base = rec_val[u.index()].expect("frontier nodes have values");
                for &v in self.graph.neighbors(u) {
                    if v == trustor {
                        continue;
                    }
                    // v as final trustee: the ω₂ gate applies to the full
                    // transferred estimate (recommendation chain folded
                    // with the execution link)
                    if is_trustee(v) && (spec.trustee_ok)(v) {
                        if let Some(tw) = (spec.exec_tw)(u, v) {
                            reached[v.index()] = true;
                            let est = spec.combine.apply(base, tw);
                            if est >= spec.gates.omega2
                                && cand_val[v.index()].is_none_or(|c| est > c)
                            {
                                cand_val[v.index()] = Some(est);
                            }
                        }
                    }
                    // v as recommender for further hops
                    if (spec.relay_ok)(v) {
                        if let Some(tw) = (spec.rec_tw)(u, v) {
                            reached[v.index()] = true;
                            if tw >= spec.gates.omega1 {
                                let est = spec.combine.apply(base, tw);
                                if rec_val[v.index()].is_none_or(|c| est > c) {
                                    let first_visit = rec_val[v.index()].is_none();
                                    rec_val[v.index()] = Some(est);
                                    if first_visit {
                                        next.push(v);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }

        let mut candidates: Vec<Candidate> = cand_val
            .iter()
            .enumerate()
            .filter_map(|(i, v)| {
                v.map(|estimate| Candidate { trustee: AgentId::from(i as u32), estimate })
            })
            .collect();
        sort_candidates(&mut candidates);
        let inquired = reached.iter().filter(|&&r| r).count();
        SearchOutcome { candidates, inquired }
    }

    /// Aggressive method: one flood per characteristic, then Eq. 17
    /// recombination per trustee. Inquiry overhead is the union of nodes
    /// reached across the floods.
    fn aggressive(
        &self,
        trustor: AgentId,
        task: TaskId,
        is_trustee: &dyn Fn(AgentId) -> bool,
    ) -> SearchOutcome {
        let t = self.pool.task(task);
        let n = self.graph.node_count();
        let mut inquired_union = vec![false; n];
        // per characteristic: (weight, candidate estimates)
        let mut per_char: Vec<(f64, Vec<Option<f64>>)> = Vec::new();

        for &(c, w) in t.characteristics() {
            let sub = self.flood(
                trustor,
                is_trustee,
                &FloodSpec {
                    relay_ok: &|v| self.knowledge.covers_characteristic(v, c, self.pool),
                    rec_tw: &|u, v| self.knowledge.recommendation_trust(u, v),
                    exec_tw: &|u, v| {
                        infer_characteristic(c, &self.knowledge.experiences(u, v, self.pool))
                    },
                    // the trustee itself must cover the *whole* task
                    // (Eq. 12's union condition)
                    trustee_ok: &|v| self.knowledge.covers_all(v, t, self.pool),
                    combine: Combine::Eq7,
                    // ω₂ is applied below to the Eq. 17 combined estimate,
                    // not per characteristic — this keeps the aggressive
                    // candidate set a superset of the conservative one
                    // (Eq. 7 is affine in the execution link, so a
                    // conservative candidate's estimate equals its
                    // weight-combined per-characteristic estimates)
                    gates: TransitivityGates { omega1: self.gates.omega1, omega2: 0.0 },
                },
            );
            let mut vals: Vec<Option<f64>> = vec![None; n];
            for cand in &sub.candidates {
                vals[cand.trustee.index()] = Some(cand.estimate);
            }
            per_char.push((w, vals));
            self.mark_reached(trustor, c, t, is_trustee, &mut inquired_union);
        }

        let mut est_by_node: Vec<Option<f64>> = vec![None; n];
        'outer: for v in 0..n {
            let mut est = 0.0;
            for (w, vals) in &per_char {
                match vals[v] {
                    Some(e) => est += w * e,
                    None => continue 'outer,
                }
            }
            if est >= self.gates.omega2 {
                est_by_node[v] = Some(est);
            }
        }

        // The aggressive scheme subsumes the conservative one (Eq. 12
        // relaxes Eq. 8: a single path covering everything is one valid
        // per-characteristic routing), so merge in the conservative
        // candidates. This matters because Eq. 7 is not monotone in its
        // recommendation argument when the execution link sits below 0.5 —
        // without the merge, a candidate could pass the conservative ω₂
        // gate yet miss the aggressive one.
        let cons = self.find(SearchMethod::Conservative, trustor, task, is_trustee);
        for cand in &cons.candidates {
            let slot = &mut est_by_node[cand.trustee.index()];
            if slot.is_none_or(|e| cand.estimate > e) {
                *slot = Some(cand.estimate);
            }
        }

        let mut candidates: Vec<Candidate> = est_by_node
            .iter()
            .enumerate()
            .filter_map(|(v, est)| {
                est.map(|estimate| Candidate { trustee: AgentId::from(v as u32), estimate })
            })
            .collect();
        sort_candidates(&mut candidates);
        let inquired = inquired_union.iter().filter(|&&r| r).count().max(cons.inquired);
        SearchOutcome { candidates, inquired }
    }

    /// Marks every node the characteristic-`c` flood reaches (relay or
    /// trustee inquiry), mirroring `flood`'s qualification rules.
    fn mark_reached(
        &self,
        trustor: AgentId,
        c: CharacteristicId,
        t: &siot_core::task::Task,
        is_trustee: &dyn Fn(AgentId) -> bool,
        reached: &mut [bool],
    ) {
        let mut seen = vec![false; self.graph.node_count()];
        seen[trustor.index()] = true;
        let mut frontier = vec![trustor];
        for _ in 0..self.max_hops {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.graph.neighbors(u) {
                    if v == trustor || seen[v.index()] {
                        continue;
                    }
                    if is_trustee(v)
                        && self.knowledge.covers_all(v, t, self.pool)
                        && infer_characteristic(c, &self.knowledge.experiences(u, v, self.pool))
                            .is_some()
                    {
                        reached[v.index()] = true;
                    }
                    if !self.knowledge.covers_characteristic(v, c, self.pool) {
                        continue;
                    }
                    let Some(rec) = self.knowledge.recommendation_trust(u, v) else {
                        continue;
                    };
                    reached[v.index()] = true;
                    if rec < self.gates.omega1 {
                        continue;
                    }
                    seen[v.index()] = true;
                    next.push(v);
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
    }
}

/// How per-hop estimates combine along a path.
#[derive(Debug, Clone, Copy)]
enum Combine {
    /// Eq. 5 product (traditional).
    Product,
    /// Eq. 7 combination (proposed).
    Eq7,
}

impl Combine {
    fn apply(self, acc: f64, hop: f64) -> f64 {
        match self {
            Combine::Product => acc * hop,
            Combine::Eq7 => two_hop(acc, hop),
        }
    }
}

fn sort_candidates(candidates: &mut [Candidate]) {
    candidates.sort_by(|a, b| {
        b.estimate
            .partial_cmp(&a.estimate)
            .expect("estimates are never NaN")
            .then(a.trustee.cmp(&b.trustee))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use siot_core::task::TaskId;
    use siot_graph::GraphBuilder;

    /// Line graph 0-1-2-3 where every node experienced every task; noise 0.
    fn line_world(n_chars: usize) -> (SocialGraph, TaskPool, Knowledge) {
        let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 3)]).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let pool = TaskPool::generate(n_chars, n_chars, &mut rng);
        let mut k = Knowledge::seed(&g, &pool, 2, 0.0, &mut rng);
        // give every node full experience so coverage never blocks
        let all: Vec<_> = pool.tasks().iter().map(|t| t.id()).collect();
        k.set_experienced(vec![all.clone(); g.node_count()]);
        k.reseed_records(&g, &pool, 0.0, &mut rng);
        (g, pool, k)
    }

    fn open_search<'a>(
        g: &'a SocialGraph,
        k: &'a Knowledge,
        pool: &'a TaskPool,
    ) -> TrusteeSearch<'a> {
        let mut s = TrusteeSearch::new(g, k, pool);
        s.gates = TransitivityGates::OPEN;
        s
    }

    #[test]
    fn all_methods_find_direct_neighbour() {
        let (g, pool, k) = line_world(4);
        let search = open_search(&g, &k, &pool);
        let task = pool.tasks()[0].id();
        for method in SearchMethod::ALL {
            let out = search.find(method, AgentId::from(0u32), task, &|_| true);
            assert!(
                out.candidates.iter().any(|c| c.trustee == AgentId::from(1u32)),
                "{} must find the direct neighbour",
                method.name()
            );
        }
    }

    #[test]
    fn hop_limit_bounds_reach() {
        let (g, pool, k) = line_world(4);
        let mut search = open_search(&g, &k, &pool);
        search.max_hops = 1;
        let task = pool.tasks()[0].id();
        let out = search.find(SearchMethod::Conservative, AgentId::from(0u32), task, &|_| true);
        assert!(out.candidates.iter().all(|c| c.trustee == AgentId::from(1u32)));
        search.max_hops = 3;
        let out = search.find(SearchMethod::Conservative, AgentId::from(0u32), task, &|_| true);
        assert!(out.candidates.iter().any(|c| c.trustee == AgentId::from(3u32)));
    }

    #[test]
    fn trustee_filter_respected() {
        let (g, pool, k) = line_world(4);
        let search = open_search(&g, &k, &pool);
        let task = pool.tasks()[0].id();
        let only3 = |a: AgentId| a == AgentId::from(3u32);
        let out = search.find(SearchMethod::Conservative, AgentId::from(0u32), task, &only3);
        assert_eq!(out.candidates.len(), 1);
        assert_eq!(out.candidates[0].trustee, AgentId::from(3u32));
    }

    #[test]
    fn traditional_narrower_than_conservative() {
        // nodes experienced only 2 of many tasks: exact-match search finds
        // fewer (or equal) candidates than characteristic coverage.
        let g = GraphBuilder::new()
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (3, 4), (1, 4)])
            .build()
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let pool = TaskPool::generate(4, 6, &mut rng);
        let k = Knowledge::seed(&g, &pool, 2, 0.05, &mut rng);
        let search = open_search(&g, &k, &pool);
        let everyone = |_: AgentId| true;
        let mut trad_total = 0usize;
        let mut cons_total = 0usize;
        for t in pool.tasks() {
            let trad =
                search.find(SearchMethod::Traditional, AgentId::from(0u32), t.id(), &everyone);
            let cons =
                search.find(SearchMethod::Conservative, AgentId::from(0u32), t.id(), &everyone);
            trad_total += trad.candidates.len();
            cons_total += cons.candidates.len();
        }
        assert!(trad_total <= cons_total, "trad {trad_total} vs cons {cons_total}");
    }

    #[test]
    fn aggressive_finds_split_coverage() {
        // 0-1-3 and 0-2-3: node 1 knows char a only, node 2 char b only,
        // node 3 experienced both. Conservative cannot route (no single
        // path covers both), aggressive can.
        let g = GraphBuilder::new().edges([(0, 1), (0, 2), (1, 3), (2, 3)]).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let pool = TaskPool::generate(2, 1, &mut rng); // τ0={a0}, τ1={a1}, pair
        let mut k = Knowledge::seed(&g, &pool, 1, 0.0, &mut rng);
        let pair_id =
            pool.tasks().iter().find(|t| t.len() == 2).expect("pool has the pair task").id();
        k.set_experienced(vec![
            vec![],                     // trustor
            vec![TaskId(0)],            // covers a0 only
            vec![TaskId(1)],            // covers a1 only
            vec![TaskId(0), TaskId(1)], // trustee covers both
        ]);
        k.reseed_records(&g, &pool, 0.0, &mut rng);
        let search = open_search(&g, &k, &pool);
        let everyone = |_: AgentId| true;

        let cons = search.find(SearchMethod::Conservative, AgentId::from(0u32), pair_id, &everyone);
        assert!(
            cons.candidates.is_empty(),
            "no single path covers both characteristics: {:?}",
            cons.candidates
        );
        let aggr = search.find(SearchMethod::Aggressive, AgentId::from(0u32), pair_id, &everyone);
        assert_eq!(aggr.candidates.len(), 1);
        assert_eq!(aggr.candidates[0].trustee, AgentId::from(3u32));
    }

    #[test]
    fn aggressive_inquires_at_least_as_many() {
        let (g, pool, k) = line_world(5);
        let search = open_search(&g, &k, &pool);
        let everyone = |_: AgentId| true;
        let task = pool.random_pair_task(&mut SmallRng::seed_from_u64(2));
        let cons = search.find(SearchMethod::Conservative, AgentId::from(0u32), task, &everyone);
        let aggr = search.find(SearchMethod::Aggressive, AgentId::from(0u32), task, &everyone);
        assert!(aggr.inquired >= cons.inquired);
    }

    #[test]
    fn candidates_sorted_descending() {
        let (g, pool, k) = line_world(4);
        let search = open_search(&g, &k, &pool);
        let task = pool.tasks()[0].id();
        let out = search.find(SearchMethod::Conservative, AgentId::from(0u32), task, &|_| true);
        for w in out.candidates.windows(2) {
            assert!(w[0].estimate >= w[1].estimate);
        }
        assert_eq!(out.best().map(|c| c.trustee), out.candidates.first().map(|c| c.trustee));
    }

    #[test]
    fn gates_prune_candidates() {
        let (g, pool, k) = line_world(4);
        let mut search = open_search(&g, &k, &pool);
        let task = pool.tasks()[0].id();
        let open = search.find(SearchMethod::Conservative, AgentId::from(0u32), task, &|_| true);
        search.gates = TransitivityGates { omega1: 0.999, omega2: 0.999 };
        let gated = search.find(SearchMethod::Conservative, AgentId::from(0u32), task, &|_| true);
        assert!(gated.candidates.len() <= open.candidates.len());
    }

    #[test]
    fn traditional_ignores_gates() {
        let (g, pool, k) = line_world(4);
        let mut search = open_search(&g, &k, &pool);
        let task = pool.tasks()[0].id();
        let open = search.find(SearchMethod::Traditional, AgentId::from(0u32), task, &|_| true);
        search.gates = TransitivityGates { omega1: 0.999, omega2: 0.999 };
        let gated = search.find(SearchMethod::Traditional, AgentId::from(0u32), task, &|_| true);
        assert_eq!(open, gated, "the unrestricted baseline has no gates");
    }

    #[test]
    fn recommendation_trust_carries_intermediate_hops() {
        // 0-1-2: zero out node 0's recommendation trust toward 1 and the
        // conservative search can no longer reach node 2.
        let (g, pool, mut k) = line_world(4);
        let task = pool.tasks()[0].id();
        k.set_recommendation_trust(AgentId::from(0u32), AgentId::from(1u32), 0.0);
        let mut search = TrusteeSearch::new(&g, &k, &pool);
        search.gates = TransitivityGates { omega1: 0.5, omega2: 0.0 };
        let out = search.find(SearchMethod::Conservative, AgentId::from(0u32), task, &|_| true);
        // node 1 (direct, execution link) is still a candidate, but the
        // request is never relayed beyond it
        assert!(out.candidates.iter().any(|c| c.trustee == AgentId::from(1u32)));
        assert!(!out.candidates.iter().any(|c| c.trustee.index() >= 2));
    }

    #[test]
    fn empty_outcome_default() {
        let out = SearchOutcome::default();
        assert!(out.best().is_none());
        assert_eq!(out.inquired, 0);
    }
}
