//! Small aggregation helpers shared by the scenario drivers.

/// Mean of a slice; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Centered moving average with window `w` (edges use the available
/// samples). Used to smooth the Fig. 13 profit series.
pub fn moving_average(xs: &[f64], w: usize) -> Vec<f64> {
    if w <= 1 || xs.is_empty() {
        return xs.to_vec();
    }
    let half = w / 2;
    (0..xs.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(xs.len());
            mean(&xs[lo..hi])
        })
        .collect()
}

/// A streaming ratio counter (numerator over denominator).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    /// Numerator.
    pub hits: u64,
    /// Denominator.
    pub total: u64,
}

impl Ratio {
    /// Records one observation.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// The ratio; 0 when nothing was recorded.
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn moving_average_smooths() {
        let xs = [0.0, 1.0, 0.0, 1.0, 0.0];
        let sm = moving_average(&xs, 3);
        assert_eq!(sm.len(), xs.len());
        assert!((sm[2] - (1.0 + 0.0 + 1.0) / 3.0).abs() < 1e-12);
        assert_eq!(moving_average(&xs, 1), xs.to_vec());
        assert!(moving_average(&[], 5).is_empty());
    }

    #[test]
    fn ratio_counts() {
        let mut r = Ratio::default();
        assert_eq!(r.value(), 0.0);
        r.record(true);
        r.record(false);
        r.record(true);
        assert!((r.value() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.total, 3);
    }
}
