//! Agents and role assignment.
//!
//! The paper randomly selects ~40% of the nodes as trustors and ~40% as
//! trustees in every sub-network (§5.1). Roles are disjoint; the remaining
//! nodes participate only as intermediates.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use siot_graph::{NodeId, SocialGraph};

/// Agent identifier — identical to the graph's node index.
pub type AgentId = NodeId;

/// Disjoint trustor/trustee role assignment over a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Roles {
    trustor: Vec<bool>,
    trustee: Vec<bool>,
    trustors: Vec<AgentId>,
    trustees: Vec<AgentId>,
}

impl Roles {
    /// Randomly assigns `trustor_frac` of nodes as trustors and
    /// `trustee_frac` as trustees (disjoint sets; fractions are clamped so
    /// they sum to at most 1).
    pub fn assign(g: &SocialGraph, trustor_frac: f64, trustee_frac: f64, seed: u64) -> Self {
        let n = g.node_count();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut order: Vec<AgentId> = g.nodes().collect();
        order.shuffle(&mut rng);

        let tf = trustor_frac.clamp(0.0, 1.0);
        let ef = trustee_frac.clamp(0.0, 1.0 - tf);
        let n_trustors = (n as f64 * tf).round() as usize;
        let n_trustees = (n as f64 * ef).round() as usize;

        let mut trustor = vec![false; n];
        let mut trustee = vec![false; n];
        let mut trustors = Vec::with_capacity(n_trustors);
        let mut trustees = Vec::with_capacity(n_trustees);
        for &a in order.iter().take(n_trustors) {
            trustor[a.index()] = true;
            trustors.push(a);
        }
        for &a in order.iter().skip(n_trustors).take(n_trustees) {
            trustee[a.index()] = true;
            trustees.push(a);
        }
        trustors.sort_unstable();
        trustees.sort_unstable();
        Roles { trustor, trustee, trustors, trustees }
    }

    /// The paper's split: 40% trustors, 40% trustees.
    pub fn paper_split(g: &SocialGraph, seed: u64) -> Self {
        Self::assign(g, 0.4, 0.4, seed)
    }

    /// Whether `a` is a trustor.
    pub fn is_trustor(&self, a: AgentId) -> bool {
        self.trustor[a.index()]
    }

    /// Whether `a` is a trustee.
    pub fn is_trustee(&self, a: AgentId) -> bool {
        self.trustee[a.index()]
    }

    /// All trustors, sorted.
    pub fn trustors(&self) -> &[AgentId] {
        &self.trustors
    }

    /// All trustees, sorted.
    pub fn trustees(&self) -> &[AgentId] {
        &self.trustees
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siot_graph::generate::erdos_renyi::erdos_renyi;

    #[test]
    fn roles_are_disjoint_and_sized() {
        let g = erdos_renyi(100, 0.1, 1).unwrap();
        let roles = Roles::paper_split(&g, 7);
        assert_eq!(roles.trustors().len(), 40);
        assert_eq!(roles.trustees().len(), 40);
        for &t in roles.trustors() {
            assert!(roles.is_trustor(t));
            assert!(!roles.is_trustee(t), "roles must be disjoint");
        }
        for &t in roles.trustees() {
            assert!(roles.is_trustee(t));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = erdos_renyi(50, 0.1, 1).unwrap();
        assert_eq!(Roles::paper_split(&g, 3), Roles::paper_split(&g, 3));
    }

    #[test]
    fn fractions_clamped() {
        let g = erdos_renyi(10, 0.3, 1).unwrap();
        let roles = Roles::assign(&g, 0.8, 0.8, 1);
        assert_eq!(roles.trustors().len() + roles.trustees().len(), 10);
    }

    #[test]
    fn empty_graph() {
        let g = siot_graph::SocialGraph::with_nodes(0);
        let roles = Roles::paper_split(&g, 0);
        assert!(roles.trustors().is_empty());
        assert!(roles.trustees().is_empty());
    }
}
