//! Task-type pools for the transitivity experiments (§5.5).
//!
//! The network hosts multiple task types, each consisting of one or two
//! characteristics drawn from a pool of `n_characteristics` (the paper
//! sweeps 4–7). Every node has *experienced* two task types; neighbours
//! hold trustworthiness records about those.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use siot_core::task::{CharacteristicId, Task, TaskId};

/// A pool of task types over a characteristic alphabet.
#[derive(Debug, Clone)]
pub struct TaskPool {
    tasks: Vec<Task>,
    n_characteristics: usize,
}

impl TaskPool {
    /// Builds a pool containing every 1-characteristic type plus
    /// `extra_pairs` random 2-characteristic types.
    pub fn generate(n_characteristics: usize, extra_pairs: usize, rng: &mut SmallRng) -> Self {
        assert!(n_characteristics >= 1, "need at least one characteristic");
        let mut tasks = Vec::new();
        let mut next_id = 0u32;
        for c in 0..n_characteristics as u32 {
            tasks.push(
                Task::uniform(TaskId(next_id), [CharacteristicId(c)])
                    .expect("single characteristic task"),
            );
            next_id += 1;
        }
        // all distinct unordered pairs, shuffled, take extra_pairs
        let mut pairs = Vec::new();
        for a in 0..n_characteristics as u32 {
            for b in a + 1..n_characteristics as u32 {
                pairs.push((a, b));
            }
        }
        pairs.shuffle(rng);
        for &(a, b) in pairs.iter().take(extra_pairs) {
            tasks.push(
                Task::uniform(TaskId(next_id), [CharacteristicId(a), CharacteristicId(b)])
                    .expect("pair task"),
            );
            next_id += 1;
        }
        TaskPool { tasks, n_characteristics }
    }

    /// All task types.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Task definition by id (ids are dense).
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0 as usize]
    }

    /// Number of task types.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Size of the characteristic alphabet.
    pub fn n_characteristics(&self) -> usize {
        self.n_characteristics
    }

    /// A random task type id.
    pub fn random_task(&self, rng: &mut SmallRng) -> TaskId {
        self.tasks[rng.gen_range(0..self.tasks.len())].id()
    }

    /// A random *2-characteristic* task type id (requests in the
    /// transitivity experiment), falling back to any task if the pool has
    /// no pairs.
    pub fn random_pair_task(&self, rng: &mut SmallRng) -> TaskId {
        let pairs: Vec<&Task> = self.tasks.iter().filter(|t| t.len() == 2).collect();
        if pairs.is_empty() {
            return self.random_task(rng);
        }
        pairs[rng.gen_range(0..pairs.len())].id()
    }

    /// `count` distinct experienced task ids for one node.
    pub fn sample_experienced(&self, count: usize, rng: &mut SmallRng) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = self.tasks.iter().map(|t| t.id()).collect();
        ids.shuffle(rng);
        ids.truncate(count.min(self.tasks.len()));
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn pool_contains_singletons_and_pairs() {
        let pool = TaskPool::generate(5, 4, &mut rng());
        assert_eq!(pool.len(), 9);
        assert!(!pool.is_empty());
        assert_eq!(pool.n_characteristics(), 5);
        let singles = pool.tasks().iter().filter(|t| t.len() == 1).count();
        let pairs = pool.tasks().iter().filter(|t| t.len() == 2).count();
        assert_eq!(singles, 5);
        assert_eq!(pairs, 4);
    }

    #[test]
    fn extra_pairs_capped_at_possible_pairs() {
        let pool = TaskPool::generate(3, 100, &mut rng());
        assert_eq!(pool.len(), 3 + 3); // C(3,2) = 3
    }

    #[test]
    fn random_pair_task_is_a_pair() {
        let pool = TaskPool::generate(6, 8, &mut rng());
        let mut r = rng();
        for _ in 0..20 {
            let id = pool.random_pair_task(&mut r);
            assert_eq!(pool.task(id).len(), 2);
        }
    }

    #[test]
    fn pair_fallback_when_no_pairs() {
        let pool = TaskPool::generate(4, 0, &mut rng());
        let id = pool.random_pair_task(&mut rng());
        assert_eq!(pool.task(id).len(), 1);
    }

    #[test]
    fn sample_experienced_distinct_and_sorted() {
        let pool = TaskPool::generate(7, 10, &mut rng());
        let mut r = rng();
        for _ in 0..10 {
            let e = pool.sample_experienced(2, &mut r);
            assert_eq!(e.len(), 2);
            assert!(e[0] < e[1]);
        }
    }

    #[test]
    fn sample_more_than_pool_truncates() {
        let pool = TaskPool::generate(2, 1, &mut rng());
        let e = pool.sample_experienced(10, &mut rng());
        assert_eq!(e.len(), pool.len());
    }

    #[test]
    fn task_ids_dense() {
        let pool = TaskPool::generate(4, 3, &mut rng());
        for (i, t) in pool.tasks().iter().enumerate() {
            assert_eq!(t.id(), TaskId(i as u32));
        }
    }
}
