//! Trust-related attack models.
//!
//! The paper motivates its model partly by the attacks studied in the IoT
//! trust literature it builds on (§2, Chen et al. \[17\]): self-promotion,
//! bad-mouthing, ballot-stuffing and opportunistic service. This module
//! implements them against the clarified model so the defences can be
//! measured:
//!
//! * **self-promotion** — a trustee advertises inflated quality; defeated
//!   by post-evaluation on *observed* outcomes (Eqs. 19–22), not claims;
//! * **bad-mouthing** — a recommender reports dishonestly low trust about
//!   good trustees; contained by the ω₁ recommendation gate once the
//!   recommender's recommendation trust is downgraded;
//! * **ballot-stuffing** — a recommender inflates reports about bad
//!   trustees (collusion); contained the same way;
//! * **opportunistic service** — an agent behaves well until its
//!   trustworthiness is established, then degrades; contained by
//!   continuous updates with a finite memory β.

use crate::agent::AgentId;
use crate::knowledge::Knowledge;
use rand::rngs::SmallRng;
use rand::Rng;
use siot_core::context::Context;
use siot_core::delegation::DelegationOutcome;
use siot_core::goal::Goal;
use siot_core::record::{ForgettingFactors, Observation};
use siot_core::store::TrustStore;
use siot_core::task::{CharacteristicId, Task, TaskId};
use siot_core::transitivity::two_hop;
use siot_core::tw::Normalizer;

/// Attack archetypes from the IoT trust literature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Attack {
    /// Advertises `claimed` quality while delivering `actual`.
    SelfPromotion {
        /// Advertised quality.
        claimed: f64,
        /// Delivered quality.
        actual: f64,
    },
    /// Reports `reported` about peers whose true quality is `actual`.
    BadMouthing {
        /// The dishonest recommendation value.
        reported: f64,
    },
    /// Inflates reports about colluders to `reported`.
    BallotStuffing {
        /// The inflated recommendation value.
        reported: f64,
    },
    /// Behaves at `good` quality for `honeymoon` interactions, then at
    /// `bad`.
    OpportunisticService {
        /// Quality during the honeymoon.
        good: f64,
        /// Quality afterwards.
        bad: f64,
        /// Length of the honeymoon in interactions.
        honeymoon: u64,
    },
}

impl Attack {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Attack::SelfPromotion { .. } => "self-promotion",
            Attack::BadMouthing { .. } => "bad-mouthing",
            Attack::BallotStuffing { .. } => "ballot-stuffing",
            Attack::OpportunisticService { .. } => "opportunistic-service",
        }
    }

    /// The quality an attacker delivers on its `n`-th interaction.
    pub fn delivered_quality(&self, n: u64, rng: &mut SmallRng) -> f64 {
        match *self {
            Attack::SelfPromotion { actual, .. } => jitter(actual, rng),
            Attack::OpportunisticService { good, bad, honeymoon } => {
                jitter(if n < honeymoon { good } else { bad }, rng)
            }
            // recommendation attacks execute honestly when (rarely) chosen
            Attack::BadMouthing { .. } | Attack::BallotStuffing { .. } => jitter(0.6, rng),
        }
    }

    /// The quality an attacker *advertises*.
    pub fn advertised_quality(&self) -> f64 {
        match *self {
            Attack::SelfPromotion { claimed, .. } => claimed,
            Attack::OpportunisticService { good, .. } => good,
            _ => 0.6,
        }
    }
}

fn jitter(x: f64, rng: &mut SmallRng) -> f64 {
    (x + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0)
}

/// Outcome of one attack-resilience run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceOutcome {
    /// Mean realized quality per delegation under the proposed model.
    pub proposed_quality: f64,
    /// Mean realized quality when the trustor believes advertisements.
    pub naive_quality: f64,
    /// Fraction of delegations that went to the attacker (proposed model).
    pub attacker_share_proposed: f64,
    /// Fraction of delegations that went to the attacker (naive model).
    pub attacker_share_naive: f64,
}

/// The trustor's engine peers in the resilience duel.
const HONEST: u8 = 0;
/// See [`HONEST`].
const ATTACKER: u8 = 1;

/// Self-promotion / opportunistic-service resilience: one trustor, one
/// honest trustee (quality `honest_quality`), one attacker. The proposed
/// trustor scores by its *own* post-evaluation records; the naive trustor
/// scores by advertised quality.
///
/// Every interaction of the proposed trustor is a full delegation session
/// (`delegate → evaluate → execute`) against its [`TrustStore`], so the
/// defence works off engine state only — including the **interaction
/// count**, which is what lets the opportunistic attacker's phase switch
/// be pinned to its record rather than to hidden bookkeeping.
pub fn execution_attack_resilience(
    attack: Attack,
    honest_quality: f64,
    interactions: u64,
    seed: u64,
) -> ResilienceOutcome {
    use rand::SeedableRng;
    let betas = ForgettingFactors::figures();
    let mut rng = SmallRng::seed_from_u64(seed);
    let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty");

    let mut proposed_sum = 0.0;
    let mut naive_sum = 0.0;
    let mut attacker_picks_proposed = 0u64;
    let mut attacker_picks_naive = 0u64;

    // the proposed trustor's whole memory lives in its engine
    let mut engine: TrustStore<u8> = TrustStore::new();

    for i in 0..interactions {
        // --- proposed: optimistic first trials, then Eq. 23 scores -----
        let score = |engine: &TrustStore<u8>, peer: u8| {
            engine
                .record(peer, task.id())
                .map_or(0.85, |rec| Normalizer::UNIT.apply(rec.expected_net_profit()))
        };
        let pick_attacker = score(&engine, ATTACKER) > score(&engine, HONEST);
        let peer = if pick_attacker { ATTACKER } else { HONEST };
        let q = if pick_attacker {
            attacker_picks_proposed += 1;
            // the attacker's phase is driven by the engine-visible count
            let n = engine.record(ATTACKER, task.id()).map_or(0, |r| r.interactions);
            attack.delivered_quality(n, &mut rng)
        } else {
            jitter(honest_quality, &mut rng)
        };
        let active =
            engine.delegate(peer, &task, Goal::ANY, Context::amicable(task.id())).activate(&engine);
        let obs = Observation { success_rate: q, gain: q, damage: 1.0 - q, cost: 0.1 };
        active
            .execute(&mut engine, DelegationOutcome::observed(obs), &betas)
            .expect("qualities are clamped to the unit range");
        proposed_sum += q;

        // --- naive: believes advertisements forever --------------------
        let naive_picks_attacker = attack.advertised_quality() > honest_quality;
        let nq = if naive_picks_attacker {
            attacker_picks_naive += 1;
            // the naive trustor's attacker has its own interaction count i
            attack.delivered_quality(i, &mut rng)
        } else {
            jitter(honest_quality, &mut rng)
        };
        naive_sum += nq;
    }

    ResilienceOutcome {
        proposed_quality: proposed_sum / interactions as f64,
        naive_quality: naive_sum / interactions as f64,
        attacker_share_proposed: attacker_picks_proposed as f64 / interactions as f64,
        attacker_share_naive: attacker_picks_naive as f64 / interactions as f64,
    }
}

/// Applies a recommendation attack to a [`Knowledge`] base: `attacker`
/// rewrites its records about every peer (bad-mouthing lowers good peers,
/// ballot-stuffing raises bad ones). Returns how many records changed.
///
/// Each rewrite is an executed delegation session inside the attacker's
/// engine (see [`Knowledge::set_record`]), so the poisoned records carry
/// rising interaction counts — the rewrite burst a defence can detect.
pub fn poison_recommendations(
    knowledge: &mut Knowledge,
    attacker: AgentId,
    attack: Attack,
    peers: &[(AgentId, Vec<TaskId>)],
) -> usize {
    let reported = match attack {
        Attack::BadMouthing { reported } | Attack::BallotStuffing { reported } => reported,
        _ => return 0,
    };
    let mut changed = 0;
    for (peer, tasks) in peers {
        for &t in tasks {
            if knowledge.record(attacker, *peer, t).is_some() {
                knowledge.set_record(attacker, *peer, t, reported);
                changed += 1;
            }
        }
    }
    changed
}

/// Measures how much a poisoned recommender can shift a two-hop estimate
/// before and after the trustor downgrades its recommendation trust.
///
/// Returns `(estimate_trusting_attacker, estimate_after_downgrade)` where
/// the second uses the ω₁-gated fallback (no transfer → direct experience
/// only, here the prior 0.5).
pub fn recommendation_attack_impact(
    true_quality: f64,
    reported: f64,
    rec_trust_before: f64,
    omega1: f64,
) -> (f64, f64) {
    let _ = true_quality;
    let poisoned = two_hop(rec_trust_before, reported);
    let after = if rec_trust_before < omega1 {
        0.5 // transfer blocked: fall back to ignorance, not poison
    } else {
        poisoned
    };
    (poisoned, after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn names() {
        assert_eq!(Attack::SelfPromotion { claimed: 1.0, actual: 0.1 }.name(), "self-promotion");
        assert_eq!(Attack::BadMouthing { reported: 0.0 }.name(), "bad-mouthing");
        assert_eq!(Attack::BallotStuffing { reported: 1.0 }.name(), "ballot-stuffing");
        assert_eq!(
            Attack::OpportunisticService { good: 0.9, bad: 0.1, honeymoon: 5 }.name(),
            "opportunistic-service"
        );
    }

    #[test]
    fn self_promotion_defeated_by_post_evaluation() {
        let attack = Attack::SelfPromotion { claimed: 0.99, actual: 0.2 };
        let out = execution_attack_resilience(attack, 0.8, 200, 42);
        // the naive trustor believes the claim forever
        assert!(out.attacker_share_naive > 0.99, "{out:?}");
        assert!(out.naive_quality < 0.3, "{out:?}");
        // the proposed trustor tries the attacker, observes, and leaves
        assert!(out.attacker_share_proposed < 0.15, "{out:?}");
        assert!(out.proposed_quality > 0.7, "{out:?}");
    }

    #[test]
    fn opportunistic_service_contained_by_finite_memory() {
        let attack = Attack::OpportunisticService { good: 0.95, bad: 0.1, honeymoon: 10 };
        let out = execution_attack_resilience(attack, 0.8, 400, 7);
        // the attacker wins the honeymoon, then the EWMA catches the drop
        assert!(out.attacker_share_proposed < 0.25, "{out:?}");
        assert!(out.proposed_quality > 0.65, "{out:?}");
        // naive keeps trusting the honeymoon reputation
        assert!(out.naive_quality < out.proposed_quality, "{out:?}");
    }

    #[test]
    fn delivered_quality_follows_phase() {
        let attack = Attack::OpportunisticService { good: 0.9, bad: 0.1, honeymoon: 3 };
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(attack.delivered_quality(0, &mut rng) > 0.7);
        assert!(attack.delivered_quality(2, &mut rng) > 0.7);
        assert!(attack.delivered_quality(3, &mut rng) < 0.3);
    }

    #[test]
    fn poison_rewrites_only_existing_records_and_leaves_a_trace() {
        use crate::tasks::TaskPool;
        use siot_graph::GraphBuilder;

        let g = GraphBuilder::new().edges([(0, 1), (1, 2), (0, 2)]).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let pool = TaskPool::generate(4, 4, &mut rng);
        let mut k = Knowledge::seed(&g, &pool, 2, 0.0, &mut rng);

        let attacker = AgentId::from(0u32);
        let victim = AgentId::from(1u32);
        let stranger_task = TaskId(9999); // never experienced by anyone
        let peers = vec![(victim, vec![k.experienced(victim)[0], stranger_task])];
        let changed = poison_recommendations(
            &mut k,
            attacker,
            Attack::BadMouthing { reported: 0.05 },
            &peers,
        );
        assert_eq!(changed, 1, "only the existing record is rewritten");
        let tid = k.experienced(victim)[0];
        assert_eq!(k.record(attacker, victim, tid), Some(0.05));
        assert!(k.record(attacker, victim, stranger_task).is_none());
        // the rewrite went through a session: the interaction count rose
        assert_eq!(k.engine(attacker).record(victim, tid).unwrap().interactions, 1);

        // execution attacks never rewrite recommendations
        let untouched = poison_recommendations(
            &mut k,
            attacker,
            Attack::SelfPromotion { claimed: 1.0, actual: 0.0 },
            &peers,
        );
        assert_eq!(untouched, 0);
    }

    #[test]
    fn recommendation_gate_blocks_poison() {
        // a still-trusted attacker (rec trust 0.9) reports 0.05 about a
        // 0.9-quality peer: the estimate is ruined
        let (poisoned, _) = recommendation_attack_impact(0.9, 0.05, 0.9, 0.6);
        assert!(poisoned < 0.2, "trusting the attacker ruins the estimate: {poisoned}");
        // once recommendation trust is downgraded below ω₁, the transfer is
        // blocked and the trustor falls back to ignorance instead of poison
        let (_, after) = recommendation_attack_impact(0.9, 0.05, 0.3, 0.6);
        assert_eq!(after, 0.5, "gated transfer falls back to ignorance");
        // an honest recommender (rec trust 0.9) passes the gate
        let (_, open) = recommendation_attack_impact(0.9, 0.85, 0.9, 0.6);
        assert!(open > 0.7);
    }

    #[test]
    fn eq7_inverts_reports_of_distrusted_recommenders() {
        // a quirk worth documenting: below 0.5 recommendation trust, Eq. 7
        // reads a slanderous report as weak positive evidence — the lie of
        // a known liar carries information
        let inverted = two_hop(0.3, 0.05);
        assert!(inverted > 0.5, "{inverted}");
    }
}
