//! The distributed trust knowledge of the network (§5.5 setup).
//!
//! Each node has experienced a small set of task types; for every node, its
//! graph neighbours hold scalar trustworthiness records about those tasks
//! that *"approach its actual capability"*. The transitivity search walks
//! these records.
//!
//! Every holder's records live in its own [`TrustEngine`], so the storage
//! layer is pluggable: [`Knowledge::seed`] uses the deterministic B-tree
//! backend, [`Knowledge::seed_in`] accepts any
//! [`siot_core::backend::TrustBackend`] — the sharded backend for
//! high-peer-count networks, or whatever a later PR plugs in.

use crate::agent::AgentId;
use crate::tasks::TaskPool;
use rand::rngs::SmallRng;
use rand::Rng;
use siot_core::backend::{BTreeBackend, TrustBackend};
use siot_core::context::Context;
use siot_core::delegation::DelegationOutcome;
use siot_core::goal::Goal;
use siot_core::infer::Experience;
use siot_core::record::{ForgettingFactors, Observation, TrustRecord};
use siot_core::store::TrustEngine;
use siot_core::task::{CharacteristicId, Task, TaskId};
use siot_graph::SocialGraph;
use std::collections::BTreeMap;

/// The scalar records of §5.5 ride in a full [`TrustRecord`]: the scalar
/// trustworthiness goes to `Ŝ` (read back via [`TrustRecord::s_hat`]), the
/// remaining components sit at their neutral extremes.
fn scalar_record(tw: f64) -> TrustRecord {
    TrustRecord::with_priors(tw.clamp(0.0, 1.0), 1.0, 0.0, 0.0)
}

/// Ground truth plus the records neighbours hold about each other.
#[derive(Debug, Clone)]
pub struct Knowledge<B: TrustBackend<AgentId> = BTreeBackend<AgentId>> {
    /// Per-node, per-characteristic actual competence in `[0, 1]`.
    competence: Vec<Vec<f64>>,
    /// Tasks each node has experienced (sorted).
    experienced: Vec<Vec<TaskId>>,
    /// `records[holder]`: the holder's trust engine over its peers.
    records: Vec<TrustEngine<AgentId, B>>,
    /// `rec_trust[holder] : peer -> recommendation trustworthiness TW(Rτ)`.
    rec_trust: Vec<BTreeMap<AgentId, f64>>,
    n_characteristics: usize,
}

impl Knowledge<BTreeBackend<AgentId>> {
    /// [`Knowledge::seed_in`] with the deterministic default backend.
    pub fn seed(
        g: &SocialGraph,
        pool: &TaskPool,
        tasks_per_node: usize,
        noise: f64,
        rng: &mut SmallRng,
    ) -> Self {
        Self::seed_in(g, pool, tasks_per_node, noise, rng)
    }
}

impl<B: TrustBackend<AgentId>> Knowledge<B> {
    /// Seeds the network: competence per (node, characteristic), two (or
    /// `tasks_per_node`) experienced tasks per node, and neighbour records
    /// equal to the true task competence plus uniform noise `±noise`.
    pub fn seed_in(
        g: &SocialGraph,
        pool: &TaskPool,
        tasks_per_node: usize,
        noise: f64,
        rng: &mut SmallRng,
    ) -> Self {
        let n = g.node_count();
        let n_chars = pool.n_characteristics();
        let competence: Vec<Vec<f64>> =
            (0..n).map(|_| (0..n_chars).map(|_| rng.gen_range(0.0..1.0)).collect()).collect();
        let experienced: Vec<Vec<TaskId>> =
            (0..n).map(|_| pool.sample_experienced(tasks_per_node, rng)).collect();

        let mut records: Vec<TrustEngine<AgentId, B>> =
            (0..n).map(|_| TrustEngine::new()).collect();
        let mut rec_trust: Vec<BTreeMap<AgentId, f64>> = vec![BTreeMap::new(); n];
        for holder in g.nodes() {
            for &peer in g.neighbors(holder) {
                for &tid in &experienced[peer.index()] {
                    let truth = task_competence(&competence[peer.index()], pool.task(tid));
                    let observed = (truth + rng.gen_range(-noise..=noise)).clamp(0.0, 1.0);
                    records[holder.index()].seed_record(peer, tid, scalar_record(observed));
                }
                // honest networks recommend reliably: TW(Rτ) is high but
                // not perfect (§4.3 gates filter on it with ω₁)
                rec_trust[holder.index()].insert(peer, rng.gen_range(0.75..0.95));
            }
        }
        Knowledge { competence, experienced, records, rec_trust, n_characteristics: n_chars }
    }

    /// Replaces the experienced-task assignment (used by the Table 2
    /// variant where node features dictate experience).
    pub fn set_experienced(&mut self, experienced: Vec<Vec<TaskId>>) {
        assert_eq!(experienced.len(), self.experienced.len());
        self.experienced = experienced;
    }

    /// Re-derives neighbour records after [`Self::set_experienced`].
    pub fn reseed_records(
        &mut self,
        g: &SocialGraph,
        pool: &TaskPool,
        noise: f64,
        rng: &mut SmallRng,
    ) {
        for e in self.records.iter_mut() {
            e.clear_records();
        }
        for holder in g.nodes() {
            for &peer in g.neighbors(holder) {
                for &tid in &self.experienced[peer.index()] {
                    let truth = task_competence(&self.competence[peer.index()], pool.task(tid));
                    let observed = (truth + rng.gen_range(-noise..=noise)).clamp(0.0, 1.0);
                    self.records[holder.index()].seed_record(peer, tid, scalar_record(observed));
                }
            }
        }
    }

    /// The actual competence of `a` on `task` (mean of its characteristic
    /// competences, weighted by the task's weights).
    pub fn actual_task_competence(&self, a: AgentId, task: &Task) -> f64 {
        task_competence(&self.competence[a.index()], task)
    }

    /// Actual competence of `a` on a single characteristic.
    pub fn actual_characteristic_competence(&self, a: AgentId, c: CharacteristicId) -> f64 {
        self.competence[a.index()][c.0 as usize]
    }

    /// Tasks `a` has experienced.
    pub fn experienced(&self, a: AgentId) -> &[TaskId] {
        &self.experienced[a.index()]
    }

    /// Whether `a`'s experienced tasks cover every characteristic of `task`.
    pub fn covers_all(&self, a: AgentId, task: &Task, pool: &TaskPool) -> bool {
        task.characteristic_ids().all(|c| self.covers_characteristic(a, c, pool))
    }

    /// Whether `a`'s experienced tasks cover characteristic `c`.
    pub fn covers_characteristic(&self, a: AgentId, c: CharacteristicId, pool: &TaskPool) -> bool {
        self.experienced[a.index()].iter().any(|&tid| pool.task(tid).has_characteristic(c))
    }

    /// Whether `a` experienced exactly this task type.
    pub fn experienced_exactly(&self, a: AgentId, task: TaskId) -> bool {
        self.experienced[a.index()].binary_search(&task).is_ok()
    }

    /// The holder's trust engine — every record `holder` keeps lives here.
    pub fn engine(&self, holder: AgentId) -> &TrustEngine<AgentId, B> {
        &self.records[holder.index()]
    }

    /// The scalar record `holder` keeps about `(peer, task)`.
    pub fn record(&self, holder: AgentId, peer: AgentId, task: TaskId) -> Option<f64> {
        self.records[holder.index()].record(peer, task).map(|r| r.s_hat)
    }

    /// Rewrites the scalar report `holder` keeps about `(peer, task)` —
    /// used by the attack models (a bad-mouthing recommender rewrites its
    /// reports).
    ///
    /// The rewrite is routed through an executed delegation session with
    /// β = 0 (the lie replaces the history wholesale), so the record's
    /// **interaction count still increments**: a recommender whose reports
    /// mutate without corresponding growth in interactions is exactly the
    /// burst signature defenses can look for, which raw overwrites used to
    /// erase.
    pub fn set_record(&mut self, holder: AgentId, peer: AgentId, task: TaskId, tw: f64) {
        let engine = &mut self.records[holder.index()];
        // the task definition only scopes the session; a forged report
        // needs no characteristic structure
        let forged_task = Task::uniform(task, [CharacteristicId(0)]).expect("non-empty");
        let claimed =
            Observation { success_rate: tw.clamp(0.0, 1.0), gain: 1.0, damage: 0.0, cost: 0.0 };
        engine
            .delegate(peer, &forged_task, Goal::ANY, Context::amicable(task))
            .activate(engine)
            .execute(engine, DelegationOutcome::observed(claimed), &ForgettingFactors::uniform(0.0))
            .expect("forged observations are clamped to the unit range");
    }

    /// Recommendation trustworthiness `TW_{holder←peer}(Rτ)` — how much
    /// `holder` trusts `peer`'s recommendations. `None` for non-neighbours.
    pub fn recommendation_trust(&self, holder: AgentId, peer: AgentId) -> Option<f64> {
        self.rec_trust[holder.index()].get(&peer).copied()
    }

    /// Overrides one recommendation-trust value (used by attack models:
    /// a bad-mouthing or ballot-stuffing peer loses recommendation trust).
    pub fn set_recommendation_trust(&mut self, holder: AgentId, peer: AgentId, tw: f64) {
        self.rec_trust[holder.index()].insert(peer, tw.clamp(0.0, 1.0));
    }

    /// All of `holder`'s experiences about `peer` as `(task, tw)` pairs
    /// suitable for Eq. 4 inference.
    pub fn experiences<'p>(
        &self,
        holder: AgentId,
        peer: AgentId,
        pool: &'p TaskPool,
    ) -> Vec<Experience<'p>> {
        let mut out = Vec::new();
        self.records[holder.index()]
            .for_each_record(peer, |tid, rec| out.push(Experience::new(pool.task(tid), rec.s_hat)));
        out
    }

    /// Size of the characteristic alphabet.
    pub fn n_characteristics(&self) -> usize {
        self.n_characteristics
    }
}

/// Weighted-average competence of a characteristic-competence vector on a
/// task.
fn task_competence(char_competence: &[f64], task: &Task) -> f64 {
    task.characteristics().iter().map(|&(c, w)| w * char_competence[c.0 as usize]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use siot_core::backend::ShardedBackend;
    use siot_graph::GraphBuilder;

    fn setup() -> (SocialGraph, TaskPool, Knowledge) {
        let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 3)]).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let pool = TaskPool::generate(4, 4, &mut rng);
        let k = Knowledge::seed(&g, &pool, 2, 0.05, &mut rng);
        (g, pool, k)
    }

    #[test]
    fn records_exist_only_between_neighbours() {
        let (g, _, k) = setup();
        let n0 = AgentId::from(0u32);
        let n2 = AgentId::from(2u32);
        // 0 and 2 are not adjacent
        assert!(!g.has_edge(n0, n2));
        for &tid in k.experienced(n2) {
            assert!(k.record(n0, n2, tid).is_none());
        }
        // 0 and 1 are adjacent: records exist for 1's experienced tasks
        let n1 = AgentId::from(1u32);
        for &tid in k.experienced(n1) {
            assert!(k.record(n0, n1, tid).is_some());
        }
    }

    #[test]
    fn records_approach_truth() {
        let (_, pool, k) = setup();
        let n1 = AgentId::from(1u32);
        let n0 = AgentId::from(0u32);
        for &tid in k.experienced(n1) {
            let truth = k.actual_task_competence(n1, pool.task(tid));
            let rec = k.record(n0, n1, tid).unwrap();
            assert!((rec - truth).abs() <= 0.05 + 1e-9);
        }
    }

    #[test]
    fn coverage_checks_follow_experience() {
        let (_, pool, k) = setup();
        let a = AgentId::from(0u32);
        for &tid in k.experienced(a) {
            assert!(k.experienced_exactly(a, tid));
            for c in pool.task(tid).characteristic_ids() {
                assert!(k.covers_characteristic(a, c, &pool));
            }
            assert!(k.covers_all(a, pool.task(tid), &pool));
        }
        assert!(!k.experienced_exactly(a, TaskId(9999)));
    }

    #[test]
    fn experiences_list_matches_records() {
        let (_, pool, k) = setup();
        let holder = AgentId::from(1u32);
        let peer = AgentId::from(0u32);
        let exp = k.experiences(holder, peer, &pool);
        assert_eq!(exp.len(), k.experienced(peer).len());
    }

    #[test]
    fn task_competence_is_weighted_average() {
        let comp = vec![0.2, 0.8];
        let t =
            Task::new(TaskId(0), [(CharacteristicId(0), 1.0), (CharacteristicId(1), 3.0)]).unwrap();
        let got = task_competence(&comp, &t);
        assert!((got - (0.25 * 0.2 + 0.75 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn reseed_after_set_experienced() {
        let (g, pool, mut k) = setup();
        let n = g.node_count();
        let new_exp: Vec<Vec<TaskId>> = (0..n).map(|_| vec![TaskId(0)]).collect();
        let mut rng = SmallRng::seed_from_u64(9);
        k.set_experienced(new_exp);
        k.reseed_records(&g, &pool, 0.0, &mut rng);
        let n0 = AgentId::from(0u32);
        let n1 = AgentId::from(1u32);
        assert_eq!(k.experienced(n1), &[TaskId(0)]);
        let rec = k.record(n0, n1, TaskId(0)).unwrap();
        let truth = k.actual_task_competence(n1, pool.task(TaskId(0)));
        assert!((rec - truth).abs() < 1e-12, "zero noise copies the truth");
    }

    #[test]
    fn record_rewrites_are_sessions_that_raise_interaction_counts() {
        let (g, _, mut k) = setup();
        let holder = AgentId::from(0u32);
        let peer = AgentId::from(1u32);
        assert!(g.has_edge(holder, peer));
        let tid = k.experienced(peer)[0];
        let before = k.engine(holder).record(peer, tid).expect("seeded").interactions;

        k.set_record(holder, peer, tid, 0.05);
        assert_eq!(k.record(holder, peer, tid), Some(0.05), "the lie lands in full");
        let after = k.engine(holder).record(peer, tid).expect("still there");
        assert_eq!(after.interactions, before + 1, "rewrites leave an interaction trace");

        // a second rewrite keeps counting — the burst is visible
        k.set_record(holder, peer, tid, 0.9);
        assert_eq!(k.engine(holder).record(peer, tid).unwrap().interactions, before + 2);
    }

    #[test]
    fn sharded_backend_sees_identical_records() {
        // the same seed sequence through either backend yields the same
        // knowledge base — storage must not leak into the semantics
        let g = GraphBuilder::new().edges([(0, 1), (1, 2), (2, 3), (0, 3)]).build().unwrap();
        let pool = TaskPool::generate(4, 4, &mut SmallRng::seed_from_u64(2));
        let kb: Knowledge = Knowledge::seed(&g, &pool, 2, 0.05, &mut SmallRng::seed_from_u64(7));
        let ks: Knowledge<ShardedBackend<AgentId>> =
            Knowledge::seed_in(&g, &pool, 2, 0.05, &mut SmallRng::seed_from_u64(7));
        for holder in g.nodes() {
            for peer in g.nodes() {
                for &tid in ks.experienced(peer) {
                    assert_eq!(kb.record(holder, peer, tid), ks.record(holder, peer, tid));
                }
                assert_eq!(
                    kb.recommendation_trust(holder, peer),
                    ks.recommendation_trust(holder, peer)
                );
            }
            assert_eq!(kb.engine(holder).record_count(), ks.engine(holder).record_count());
        }
    }
}
