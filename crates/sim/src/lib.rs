//! # siot-sim — delegation simulations on social-IoT networks
//!
//! Drives the trust model of `siot-core` over the social networks of
//! `siot-graph`, reproducing the paper's simulation experiments:
//!
//! | Figure | Scenario module |
//! |---|---|
//! | Fig. 7 (mutuality: success/unavailable/abuse vs θ) | [`scenario::mutuality`] |
//! | Figs. 9–11 + Table 2 (transitivity sweeps) | [`scenario::transitivity`] |
//! | Fig. 12 (search overhead) | [`scenario::transitivity`] |
//! | Fig. 13 (net profit vs iterations) | [`scenario::profit`] |
//! | Fig. 15 (dynamic environment tracking) | [`scenario::environment`] |
//!
//! Everything is seeded: the same configuration and seed produce the same
//! numbers on every run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod attacks;
pub mod knowledge;
pub mod metrics;
pub mod scenario;
pub mod search;
pub mod tasks;

pub use agent::{AgentId, Roles};
pub use knowledge::Knowledge;
pub use search::{SearchMethod, SearchOutcome, TrusteeSearch};
