//! Fig. 13 — trustworthiness updated with delegation results (§5.6).
//!
//! Every potential trustee has hidden actual success rate, gain, damage and
//! cost. Trustors repeatedly delegate, update their records with β = 0.1,
//! and realize net profit. Strategy 1 selects by success rate alone;
//! strategy 2 selects by expected net profit (Eq. 23). The paper shows
//! strategy 2 converging to visibly higher profit — strategy 1 can even go
//! negative on Facebook and Twitter.

use crate::agent::{AgentId, Roles};
use crate::metrics::mean;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use siot_core::context::Context;
use siot_core::delegation::{CompletedDelegation, DelegationOutcome};
use siot_core::goal::Goal;
use siot_core::policy::{HighestSuccessRate, MaxNetProfit, SelectionPolicy};
use siot_core::record::{ForgettingFactors, Observation, TrustRecord};
use siot_core::store::TrustEngine;
use siot_core::task::{CharacteristicId, Task, TaskId};
use siot_graph::traversal::bfs_distances_bounded;
use siot_graph::SocialGraph;

/// The experiment has one implicit task type; records are keyed by the
/// `(trustor, trustee)` pair.
const PROFIT_TASK: TaskId = TaskId(0);

/// Candidate-selection strategy for Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// "First strategy": highest expected success rate.
    SuccessRateOnly,
    /// "Second strategy": Eq. 23 expected net profit.
    NetProfit,
}

impl Strategy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::SuccessRateOnly => "first strategy",
            Strategy::NetProfit => "second strategy",
        }
    }
}

/// Parameters of the profit experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfitConfig {
    /// Number of delegation iterations (paper: 3000).
    pub iterations: usize,
    /// Forgetting factor β (paper: 0.1).
    pub beta: f64,
    /// Search horizon for candidate trustees.
    pub search_hops: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProfitConfig {
    fn default() -> Self {
        // β as history weight 0.9 — the paper's figures' time constant
        // (see ForgettingFactors::figures)
        ProfitConfig { iterations: 3000, beta: 0.9, search_hops: 2, seed: 42 }
    }
}

/// The hidden truth about one trustee.
#[derive(Debug, Clone, Copy)]
struct ActualBehavior {
    success_rate: f64,
    gain: f64,
    damage: f64,
    cost: f64,
}

/// Runs the experiment; returns the average realized net profit per
/// iteration (one entry per iteration).
pub fn run(g: &SocialGraph, strategy: Strategy, cfg: &ProfitConfig) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let roles = Roles::paper_split(g, cfg.seed ^ 0x9f17);
    let betas = ForgettingFactors::uniform(cfg.beta);

    // hidden actuals per trustee
    let actuals: Vec<ActualBehavior> = (0..g.node_count())
        .map(|_| ActualBehavior {
            success_rate: rng.gen_range(0.0..1.0),
            gain: rng.gen_range(0.0..1.0),
            damage: rng.gen_range(0.0..1.0),
            cost: rng.gen_range(0.0..1.0),
        })
        .collect();

    // candidate slates (fixed per trustor) and per-pair records
    let mut slates: Vec<(AgentId, Vec<AgentId>)> = Vec::new();
    for &trustor in roles.trustors() {
        let dist = bfs_distances_bounded(g, trustor, cfg.search_hops);
        let cands: Vec<AgentId> = roles
            .trustees()
            .iter()
            .copied()
            .filter(|t| *t != trustor && dist[t.index()] != u32::MAX)
            .collect();
        if !cands.is_empty() {
            slates.push((trustor, cands));
        }
    }
    // One engine holds every trustor's view, keyed by the (trustor,
    // trustee) pair — the shape a coordinator-side deployment would use.
    let mut engine: TrustEngine<(AgentId, AgentId)> = TrustEngine::new();
    let profit_task = Task::uniform(PROFIT_TASK, [CharacteristicId(0)]).expect("non-empty");
    for (trustor, cands) in &slates {
        for &c in cands {
            // Initial expectations are optimistic (the paper initializes
            // expectations at their best, §5.7): every candidate gets
            // explored before the trustor settles, so the profit series
            // rises over the first several hundred iterations as records
            // converge to the trustees' actual behaviour (Eqs. 19-22).
            engine.seed_record(
                (*trustor, c),
                PROFIT_TASK,
                TrustRecord::with_priors(1.0, 1.0, 0.0, 0.0),
            );
        }
    }

    let mut series = Vec::with_capacity(cfg.iterations);
    let mut profits = Vec::with_capacity(slates.len());
    let mut completed: Vec<CompletedDelegation<(AgentId, AgentId)>> =
        Vec::with_capacity(slates.len());
    for _ in 0..cfg.iterations {
        profits.clear();
        for (trustor, cands) in &slates {
            // score candidates under the strategy
            let recs: Vec<TrustRecord> = cands
                .iter()
                .map(|&c| {
                    engine
                        .record((*trustor, c), PROFIT_TASK)
                        .expect("record seeded for every slate member")
                })
                .collect();
            let pick = match strategy {
                Strategy::SuccessRateOnly => HighestSuccessRate.select(&recs),
                Strategy::NetProfit => MaxNetProfit.select(&recs),
            }
            .expect("slates are non-empty");
            let trustee = cands[pick];
            let actual = actuals[trustee.index()];

            // realize the outcome
            let succeeded = rng.gen_bool(actual.success_rate);
            let profit =
                if succeeded { actual.gain - actual.cost } else { -actual.damage - actual.cost };
            profits.push(profit);

            // Post-evaluation observation (Eqs. 19–22). The trustor
            // measures QoS-style rates (continuous, lightly noisy), not a
            // single success bit — a delegation exposes throughput/latency/
            // cost figures whose long-run means are the trustee's actuals.
            let jitter =
                |x: f64, rng: &mut SmallRng| (x + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0);
            let obs = Observation {
                success_rate: jitter(actual.success_rate, &mut rng),
                gain: jitter(actual.gain, &mut rng),
                damage: jitter(actual.damage, &mut rng),
                cost: jitter(actual.cost, &mut rng),
            };

            // the strategy has already decided, so the session is
            // committed: the experiment measures convergence, not the
            // goal gate
            let active = engine
                .delegate(
                    (*trustor, trustee),
                    &profit_task,
                    Goal::ANY,
                    Context::amicable(PROFIT_TASK),
                )
                .activate(&engine);
            completed.push(
                active
                    .finish(DelegationOutcome::observed(obs))
                    .expect("jittered observations are clamped to the unit range"),
            );
        }
        // one batched storage pass per iteration: each (trustor, trustee)
        // record is unique, so deferring the folds preserves the semantics
        // while the engine amortizes the lookups
        engine.commit_batch(std::mem::take(&mut completed), &betas);
        series.push(mean(&profits));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use siot_graph::generate::social::SocialNetKind;

    fn tail_mean(series: &[f64]) -> f64 {
        let tail = &series[series.len().saturating_sub(200)..];
        mean(tail)
    }

    #[test]
    fn net_profit_strategy_converges_higher() {
        let g = SocialNetKind::Twitter.generate(7);
        let cfg = ProfitConfig { iterations: 800, ..Default::default() };
        let s1 = run(&g, Strategy::SuccessRateOnly, &cfg);
        let s2 = run(&g, Strategy::NetProfit, &cfg);
        assert_eq!(s1.len(), 800);
        assert!(
            tail_mean(&s2) > tail_mean(&s1) + 0.1,
            "second strategy must win clearly: {} vs {}",
            tail_mean(&s2),
            tail_mean(&s1)
        );
    }

    #[test]
    fn success_rate_strategy_can_be_unprofitable() {
        // picking by success rate ignores damage/cost; the converged profit
        // hovers near zero (the paper even shows negative values).
        let g = SocialNetKind::Facebook.generate(7);
        let cfg = ProfitConfig { iterations: 600, ..Default::default() };
        let s1 = run(&g, Strategy::SuccessRateOnly, &cfg);
        assert!(tail_mean(&s1) < 0.2, "gotta be mediocre, got {}", tail_mean(&s1));
    }

    #[test]
    fn profit_improves_with_learning() {
        let g = SocialNetKind::Twitter.generate(9);
        let cfg = ProfitConfig { iterations: 600, ..Default::default() };
        let s2 = run(&g, Strategy::NetProfit, &cfg);
        let early = mean(&s2[..50]);
        let late = tail_mean(&s2);
        assert!(late > early, "learning must help: early {early} late {late}");
    }

    #[test]
    fn deterministic() {
        let g = SocialNetKind::Twitter.generate(3);
        let cfg = ProfitConfig { iterations: 50, ..Default::default() };
        assert_eq!(run(&g, Strategy::NetProfit, &cfg), run(&g, Strategy::NetProfit, &cfg));
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::SuccessRateOnly.name(), "first strategy");
        assert_eq!(Strategy::NetProfit.name(), "second strategy");
    }
}
