//! Scenario drivers, one per simulation experiment of §5.

pub mod environment;
pub mod mutuality;
pub mod profit;
pub mod service;
pub mod transitivity;
