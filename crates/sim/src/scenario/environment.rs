//! Fig. 15 — trustworthiness under a dynamic environment (§5.7).
//!
//! A single trustor–trustee pair; the trustee's actual competence is
//! `S = 0.8`. The environment indicator is 1.0 for the first hundred
//! iterations, then drops to 0.4, then recovers to 0.7. Three update rules
//! are tracked:
//!
//! * **ideal** — observations unaffected by the environment (blue circles);
//! * **traditional** — plain EWMA on degraded observations: converges
//!   slowly to `S·min(E)` with error and delay (red squares);
//! * **proposed** — Eq. 25 updates with the removal function r(·):
//!   quickly tracks the competence despite the changing environment
//!   (green triangles).

use crate::metrics::mean;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use siot_core::context::Context;
use siot_core::delegation::DelegationOutcome;
use siot_core::environment::EnvIndicator;
use siot_core::goal::Goal;
use siot_core::record::{ForgettingFactors, Observation, TrustRecord};
use siot_core::store::TrustEngine;
use siot_core::task::{CharacteristicId, Task, TaskId};

/// The single tracked task.
const TRACK_TASK: TaskId = TaskId(0);
/// Engine peer ids for the three tracked update rules.
const IDEAL: u8 = 0;
const TRADITIONAL: u8 = 1;
const PROPOSED: u8 = 2;

/// Parameters of the environment-tracking experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvironmentConfig {
    /// The trustee's actual competence (paper: 0.8).
    pub competence: f64,
    /// Environment phases as `(iterations, indicator)` (paper:
    /// 100×1.0, 100×0.4, 100×0.7).
    pub phases: Vec<(usize, f64)>,
    /// Forgetting factor β (paper: 0.1).
    pub beta: f64,
    /// Half-width of the uniform noise on each measured success rate.
    pub observation_noise: f64,
    /// Independent runs to average (paper: 100).
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EnvironmentConfig {
    fn default() -> Self {
        EnvironmentConfig {
            competence: 0.8,
            phases: vec![(100, 1.0), (100, 0.4), (100, 0.7)],
            // history weight matching the figures' convergence pace
            beta: 0.9,
            observation_noise: 0.1,
            runs: 100,
            seed: 42,
        }
    }
}

/// The three tracked series of expected success rates, plus the
/// environment indicator per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvironmentOutcome {
    /// `Ŝ` without environment influence (ideal reference).
    pub ideal: Vec<f64>,
    /// `Ŝ` with plain updates on degraded observations.
    pub traditional: Vec<f64>,
    /// `Ŝ` with Eq. 25 environment-removal updates.
    pub proposed: Vec<f64>,
    /// The environment indicator active at each iteration.
    pub environment: Vec<f64>,
}

impl EnvironmentOutcome {
    /// Total number of iterations.
    pub fn len(&self) -> usize {
        self.ideal.len()
    }

    /// Whether the outcome holds no iterations.
    pub fn is_empty(&self) -> bool {
        self.ideal.is_empty()
    }
}

/// Runs the experiment, averaging the trajectories over `cfg.runs`
/// independent seeds.
pub fn run(cfg: &EnvironmentConfig) -> EnvironmentOutcome {
    let total: usize = cfg.phases.iter().map(|&(n, _)| n).sum();
    let schedule: Vec<f64> =
        cfg.phases.iter().flat_map(|&(n, e)| std::iter::repeat_n(e, n)).collect();
    let betas = ForgettingFactors::uniform(cfg.beta);

    let mut ideal_acc = vec![0.0; total];
    let mut trad_acc = vec![0.0; total];
    let mut prop_acc = vec![0.0; total];

    let track_task = Task::uniform(TRACK_TASK, [CharacteristicId(0)]).expect("non-empty");
    // One delegation session per (rule, iteration): the session's context
    // carries the environment the rule perceives — amicable for the ideal
    // and traditional trackers (no removal happens), the true indicator for
    // the proposed one (Eq. 29 removal at the feedback boundary).
    let fold = |engine: &mut TrustEngine<u8>,
                task: &Task,
                peer: u8,
                obs: Observation,
                env: EnvIndicator,
                betas: &ForgettingFactors| {
        engine
            .delegate(peer, task, Goal::ANY, Context::new(task.id(), env))
            .activate(engine)
            .execute(engine, DelegationOutcome::observed(obs), betas)
            .expect("clamped observations are unit-range");
    };

    for run_idx in 0..cfg.runs {
        let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(run_idx as u64));
        // One engine tracks the same trustee under the three update rules
        // (modelled as three peers). The paper initializes the expected
        // success rate at 1.
        let mut engine: TrustEngine<u8> = TrustEngine::new();
        for peer in [IDEAL, TRADITIONAL, PROPOSED] {
            engine.seed_record(peer, TRACK_TASK, TrustRecord::optimistic());
        }

        for (i, &env) in schedule.iter().enumerate() {
            // The trustor measures a per-delegation success *rate* (QoS-style:
            // fraction of sub-operations completed). The environment scales
            // it multiplicatively — exactly the degradation Fig. 15 assumes
            // (0.8 observed as 0.8·0.4 = 0.32 in the hostile phase).
            let noise = rng.gen_range(-cfg.observation_noise..=cfg.observation_noise);
            let obs = Observation {
                success_rate: (cfg.competence * env + noise).clamp(0.0, 1.0),
                gain: 0.5,
                damage: 0.0,
                cost: 0.0,
            };
            let clean_obs =
                Observation { success_rate: (cfg.competence + noise).clamp(0.0, 1.0), ..obs };

            fold(&mut engine, &track_task, IDEAL, clean_obs, EnvIndicator::AMICABLE, &betas);
            fold(&mut engine, &track_task, TRADITIONAL, obs, EnvIndicator::AMICABLE, &betas);
            fold(&mut engine, &track_task, PROPOSED, obs, EnvIndicator::saturating(env), &betas);

            let s_hat = |peer| engine.record(peer, TRACK_TASK).expect("seeded").s_hat;
            ideal_acc[i] += s_hat(IDEAL);
            trad_acc[i] += s_hat(TRADITIONAL);
            prop_acc[i] += s_hat(PROPOSED);
        }
    }

    let n = cfg.runs.max(1) as f64;
    EnvironmentOutcome {
        ideal: ideal_acc.into_iter().map(|x| x / n).collect(),
        traditional: trad_acc.into_iter().map(|x| x / n).collect(),
        proposed: prop_acc.into_iter().map(|x| x / n).collect(),
        environment: schedule,
    }
}

/// Mean of a window of a series — convenience for shape checks.
pub fn window_mean(series: &[f64], from: usize, to: usize) -> f64 {
    mean(&series[from.min(series.len())..to.min(series.len())])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> EnvironmentOutcome {
        run(&EnvironmentConfig { runs: 60, ..Default::default() })
    }

    #[test]
    fn ideal_converges_to_competence() {
        let out = outcome();
        let tail = window_mean(&out.ideal, 60, 100);
        assert!((tail - 0.8).abs() < 0.05, "ideal tail {tail}");
    }

    #[test]
    fn traditional_sinks_with_environment() {
        let out = outcome();
        // late in the hostile phase it approaches 0.8·0.4 = 0.32
        let hostile_tail = window_mean(&out.traditional, 170, 200);
        assert!((hostile_tail - 0.32).abs() < 0.07, "hostile tail {hostile_tail}");
        // and in the recovery phase approaches 0.8·0.7 = 0.56
        let recover_tail = window_mean(&out.traditional, 270, 300);
        assert!((recover_tail - 0.56).abs() < 0.07, "recover tail {recover_tail}");
    }

    #[test]
    fn proposed_tracks_competence_throughout() {
        let out = outcome();
        for (lo, hi) in [(60, 100), (160, 200), (260, 300)] {
            let w = window_mean(&out.proposed, lo, hi);
            assert!((w - 0.8).abs() < 0.07, "proposed window {lo}..{hi} = {w}");
        }
    }

    #[test]
    fn traditional_shows_error_and_delay_proposed_does_not() {
        let out = outcome();
        // Fig. 15: right at the environment drop the traditional estimate
        // departs from the competence (error), taking iterations to settle
        // (delay); the proposed estimate never leaves the competence.
        let prop_err = (window_mean(&out.proposed, 100, 140) - 0.8).abs();
        let trad_err = (window_mean(&out.traditional, 100, 140) - 0.8).abs();
        assert!(prop_err < 0.08, "proposed stays on competence: {prop_err}");
        assert!(trad_err > 0.3, "traditional is misled by the environment: {trad_err}");
    }

    #[test]
    fn schedule_recorded() {
        let out = outcome();
        assert_eq!(out.len(), 300);
        assert!(!out.is_empty());
        assert_eq!(out.environment[0], 1.0);
        assert_eq!(out.environment[150], 0.4);
        assert_eq!(out.environment[250], 0.7);
    }

    #[test]
    fn deterministic() {
        let cfg = EnvironmentConfig { runs: 5, ..Default::default() };
        assert_eq!(run(&cfg), run(&cfg));
    }
}
