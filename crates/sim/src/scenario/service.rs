//! The §5.6 profit experiment ported onto the service facade: many
//! autonomous requesters sharing **one** trust service concurrently.
//!
//! The original profit scenario (`scenario::profit`, Fig. 13) gives every
//! trustor its own `&mut TrustEngine` and drives it synchronously. Here
//! the same shape — hidden trustee qualities, repeated delegation,
//! selection by Eq. 23 expected net profit, post-evaluation feedback —
//! runs against a single [`TrustService`]: each requester owns a cloned
//! [`TrustServiceHandle`] on its own thread, evaluates and commits
//! delegation sessions over the actor's mailbox, and the actor batches
//! whatever the concurrent requesters race in per drain.
//!
//! Records are scoped per requester (the trust a requester learns is its
//! own, exactly like the per-trustor engines of the original scenario) by
//! widening the peer key to `requester << 32 | trustee`. Because every
//! requester awaits its own acks, its view of the shared engine is
//! deterministic no matter how the actor interleaves requesters — pinned
//! by [`run`] (threads racing) and [`run_sequential`] (same drives, one
//! after another) producing bit-identical final state.
//!
//! [`run_sharded`] is the same experiment against a
//! [`ShardedTrustService`]: every operation a requester performs is
//! peer-targeted, so the whole scenario routes shard-locally — and because
//! one peer's history lives entirely inside one shard, the sharded run is
//! bit-identical to the sequential single-actor reference too (the merged
//! per-shard records ARE the unsharded records).
//!
//! [`run_remote`] pushes the same claim across a **process boundary**:
//! the sharded fleet sits behind a loopback
//! [`RemoteTrustServer`] and every
//! requester drives a [`RemoteTrustServiceHandle`] clone over one shared
//! TCP connection. The wire carries every real as its IEEE-754 bits, so
//! the remote run must *still* match the sequential reference
//! bit-for-bit — federation changes the transport, not the arithmetic.
//!
//! [`run_fleet`] goes one step further: N loopback **nodes**, each a
//! sharded service behind its own server, with the racing requesters
//! driving clones of one fault-tolerant [`FleetTrustHandle`] that routes
//! peers across nodes and commits through the idempotent tagged path.
//! Two layers of routing (peer → node → shard) still merge to the same
//! records bit-for-bit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use siot_core::backend::ShardedBackend;
use siot_core::context::Context;
use siot_core::delegation::{
    CompletedDelegation, Decision, DelegationOutcome, DelegationReceipt, DelegationRequest,
};
use siot_core::error::TrustError;
use siot_core::goal::Goal;
use siot_core::record::TrustRecord;
use siot_core::service::{
    block_on, FleetTrustHandle, RemoteTrustServer, RemoteTrustServiceHandle, ServiceOptions,
    ShardedTrustService, ShardedTrustServiceHandle, TrustService, TrustServiceHandle,
};
use siot_core::store::TrustEngine;
use siot_core::task::{CharacteristicId, Task, TaskId};

/// The single task type of the experiment.
const SERVICE_TASK: TaskId = TaskId(0);

/// Parameters of the concurrent-requesters experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceScenarioConfig {
    /// Requester threads sharing the service.
    pub requesters: usize,
    /// Candidate trustees every requester chooses among.
    pub trustees: usize,
    /// Delegation iterations per requester.
    pub iterations: usize,
    /// RNG seed (hidden qualities and outcome sampling).
    pub seed: u64,
    /// Service mailbox capacity.
    pub mailbox: usize,
}

impl Default for ServiceScenarioConfig {
    fn default() -> Self {
        ServiceScenarioConfig {
            requesters: 4,
            trustees: 8,
            iterations: 150,
            seed: 42,
            mailbox: 256,
        }
    }
}

/// What the experiment measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceScenarioOutcome {
    /// Mean realized net profit across every requester's iterations.
    pub mean_profit: f64,
    /// Mean realized profit per requester.
    pub per_requester: Vec<f64>,
    /// Iterations the goal gate declined (no action, no feedback).
    pub declined: usize,
    /// The service engine's final records, ascending by key — the state
    /// the equivalence tests compare bit-wise.
    pub final_records: Vec<(u64, TrustRecord)>,
}

/// `requester`-scoped peer key for `trustee`.
fn scoped(requester: usize, trustee: usize) -> u64 {
    ((requester as u64) << 32) | trustee as u64
}

/// Hidden ground truth: each trustee's actual competence, shared by every
/// requester (they are delegating to the same objects).
fn qualities(cfg: &ServiceScenarioConfig) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    (0..cfg.trustees).map(|_| rng.gen_range(0.2..1.0)).collect()
}

/// The service a requester drives: one actor or a sharded fleet. Every
/// operation the scenario performs is peer-targeted, so both route
/// identically from the requester's point of view.
#[derive(Clone)]
enum ScenarioHandle {
    Single(TrustServiceHandle<u64>),
    Sharded(ShardedTrustServiceHandle<u64>),
    Remote(RemoteTrustServiceHandle<u64>),
    Fleet(FleetTrustHandle<u64>),
}

impl ScenarioHandle {
    async fn record(&self, peer: u64, task: TaskId) -> Result<Option<TrustRecord>, TrustError> {
        match self {
            ScenarioHandle::Single(h) => h.record(peer, task).await,
            ScenarioHandle::Sharded(h) => h.record(peer, task).await,
            ScenarioHandle::Remote(h) => h.record(peer, task).await,
            ScenarioHandle::Fleet(h) => h.record(peer, task).await,
        }
    }

    async fn delegate(&self, request: DelegationRequest<u64>) -> Result<Decision<u64>, TrustError> {
        match self {
            ScenarioHandle::Single(h) => h.delegate(request).await,
            ScenarioHandle::Sharded(h) => h.delegate(request).await,
            ScenarioHandle::Remote(h) => h.delegate(request).await,
            ScenarioHandle::Fleet(h) => h.delegate(request).await,
        }
    }

    async fn commit(
        &self,
        completed: CompletedDelegation<u64>,
    ) -> Result<DelegationReceipt<u64>, TrustError> {
        match self {
            ScenarioHandle::Single(h) => h.commit(completed).await,
            ScenarioHandle::Sharded(h) => h.commit(completed).await,
            ScenarioHandle::Remote(h) => h.commit(completed).await,
            ScenarioHandle::Fleet(h) => h.submit(completed).await,
        }
    }
}

/// One requester's full run through its handle: score candidates from its
/// own records (Eq. 23 expected net profit, optimistic prior for
/// strangers), evaluate-decide over the wire, feed the sampled outcome
/// back as a committed session. Returns `(mean profit, declines)`.
///
/// Deterministic per requester: its keys are private to it and every
/// commit is awaited before the next read, so the interleaving with other
/// requesters cannot change what it observes.
fn drive_requester(
    handle: &ScenarioHandle,
    requester: usize,
    task: &Task,
    qualities: &[f64],
    cfg: &ServiceScenarioConfig,
) -> (f64, usize) {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (0x5107 + requester as u64));
    let optimistic = TrustRecord::with_priors(1.0, 1.0, 0.0, 0.0);
    let mut total = 0.0;
    let mut declined = 0;
    block_on(async {
        for _ in 0..cfg.iterations {
            // pre-evaluation across candidates, from this requester's own
            // records held by the shared service
            let mut best = 0;
            let mut best_score = f64::NEG_INFINITY;
            for t in 0..cfg.trustees {
                let score = match handle
                    .record(scoped(requester, t), SERVICE_TASK)
                    .await
                    .expect("service alive for the scenario's duration")
                {
                    Some(rec) => rec.expected_net_profit(),
                    None => 0.99, // explore strangers (§5.7 optimism)
                };
                if score > best_score {
                    best_score = score;
                    best = t;
                }
            }

            // the session over the wire: evaluate in the actor, decide,
            // act, commit the completion back
            let request = DelegationRequest::new(
                scoped(requester, best),
                task,
                Goal::profitable(),
                Context::amicable(SERVICE_TASK),
            )
            .with_prior(optimistic);
            match handle.delegate(request).await.expect("service alive") {
                Decision::Delegate(active) => {
                    let q = qualities[best];
                    let outcome = if rng.gen_bool(q) {
                        DelegationOutcome::succeeded(q, 0.15)
                    } else {
                        DelegationOutcome::failed(0.6, 0.15)
                    };
                    let completed =
                        active.finish(outcome).expect("sampled outcomes are unit-range");
                    let receipt = handle.commit(completed).await.expect("service alive");
                    total += if receipt.fulfilled { q - 0.15 } else { -0.6 - 0.15 };
                }
                Decision::Decline { .. } => declined += 1,
            }
        }
    });
    (total / cfg.iterations as f64, declined)
}

/// Runs the scenario with every requester on its own thread, racing into
/// the shared service.
pub fn run(cfg: &ServiceScenarioConfig) -> ServiceScenarioOutcome {
    run_inner(cfg, true)
}

/// The same requester drives, executed one requester after another — the
/// sequential reference [`run`] must match bit-for-bit.
pub fn run_sequential(cfg: &ServiceScenarioConfig) -> ServiceScenarioOutcome {
    run_inner(cfg, false)
}

/// [`run`], but against a [`ShardedTrustService`] of `shards` actors:
/// requesters race through routing-handle clones, every operation lands
/// shard-locally, and the merged per-shard records must match the
/// sequential single-actor reference bit-for-bit.
pub fn run_sharded(cfg: &ServiceScenarioConfig, shards: usize) -> ServiceScenarioOutcome {
    let task = Task::uniform(SERVICE_TASK, [CharacteristicId(0)]).expect("non-empty task");
    let service = ShardedTrustService::spawn_sharded(
        shards,
        ServiceOptions { mailbox: cfg.mailbox, ..ServiceOptions::default() },
        |_| {
            let mut engine: TrustEngine<u64, ShardedBackend<u64>> = TrustEngine::new();
            engine.register_task(task.clone());
            engine
        },
    );
    let (per_requester, declined) =
        drive_fleet(cfg, &task, &ScenarioHandle::Sharded(service.handle()), true);
    let engines = service.shutdown().expect("scenario shards shut down cleanly");
    let mut final_records: Vec<(u64, TrustRecord)> = engines
        .iter()
        .flat_map(|engine| {
            engine
                .known_peers()
                .into_iter()
                .filter_map(|peer| engine.record(peer, SERVICE_TASK).map(|rec| (peer, rec)))
        })
        .collect();
    // shards are disjoint: the merge is a sort, not a fold
    final_records.sort_unstable_by_key(|&(peer, _)| peer);
    outcome(per_requester, declined, final_records)
}

/// [`run_sharded`], but **over the wire**: the fleet of `shards` actors is
/// exposed by a loopback [`RemoteTrustServer`] and the racing requesters
/// drive clones of one connected [`RemoteTrustServiceHandle`] — every
/// evaluate, record read, and commit crosses a real TCP socket. Because
/// the wire protocol round-trips reals bit-identically, the final records
/// must still match the sequential in-process reference bit-for-bit.
pub fn run_remote(cfg: &ServiceScenarioConfig, shards: usize) -> ServiceScenarioOutcome {
    let task = Task::uniform(SERVICE_TASK, [CharacteristicId(0)]).expect("non-empty task");
    let service = ShardedTrustService::spawn_sharded(
        shards,
        ServiceOptions { mailbox: cfg.mailbox, ..ServiceOptions::default() },
        |_| {
            let mut engine: TrustEngine<u64, ShardedBackend<u64>> = TrustEngine::new();
            engine.register_task(task.clone());
            engine
        },
    );
    let server =
        RemoteTrustServer::bind("127.0.0.1:0", service.handle()).expect("loopback listener binds");
    let remote = RemoteTrustServiceHandle::<u64>::connect(server.local_addr())
        .expect("loopback connect succeeds");
    let (per_requester, declined) = drive_fleet(cfg, &task, &ScenarioHandle::Remote(remote), true);
    server.shutdown();
    let engines = service.shutdown().expect("scenario shards shut down cleanly");
    let mut final_records: Vec<(u64, TrustRecord)> = engines
        .iter()
        .flat_map(|engine| {
            engine
                .known_peers()
                .into_iter()
                .filter_map(|peer| engine.record(peer, SERVICE_TASK).map(|rec| (peer, rec)))
        })
        .collect();
    final_records.sort_unstable_by_key(|&(peer, _)| peer);
    outcome(per_requester, declined, final_records)
}

/// [`run_remote`], but across a **fleet of nodes**: `nodes` independent
/// loopback servers, each fronting its own `shards`-actor sharded
/// service, with requesters racing through clones of one
/// [`FleetTrustHandle`]. Commits travel the idempotent tagged path and
/// peers route node-first, shard-second — and the merged records must
/// still match the sequential in-process reference bit-for-bit.
pub fn run_fleet(
    cfg: &ServiceScenarioConfig,
    nodes: usize,
    shards: usize,
) -> ServiceScenarioOutcome {
    let task = Task::uniform(SERVICE_TASK, [CharacteristicId(0)]).expect("non-empty task");
    let services: Vec<_> = (0..nodes)
        .map(|_| {
            ShardedTrustService::spawn_sharded(
                shards,
                ServiceOptions { mailbox: cfg.mailbox, ..ServiceOptions::default() },
                |_| {
                    let mut engine: TrustEngine<u64, ShardedBackend<u64>> = TrustEngine::new();
                    engine.register_task(task.clone());
                    engine
                },
            )
        })
        .collect();
    let servers: Vec<_> = services
        .iter()
        .map(|s| RemoteTrustServer::bind("127.0.0.1:0", s.handle()).expect("loopback bind"))
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let fleet = FleetTrustHandle::<u64>::connect(addrs).expect("loopback fleet connects");
    let (per_requester, declined) = drive_fleet(cfg, &task, &ScenarioHandle::Fleet(fleet), true);
    for server in servers {
        server.shutdown();
    }
    let mut final_records: Vec<(u64, TrustRecord)> = services
        .into_iter()
        .flat_map(|s| s.shutdown().expect("scenario nodes shut down cleanly"))
        .flat_map(|engine| {
            engine
                .known_peers()
                .into_iter()
                .filter_map(|peer| engine.record(peer, SERVICE_TASK).map(|rec| (peer, rec)))
                .collect::<Vec<_>>()
        })
        .collect();
    // nodes and shards partition the key space: the merge is a sort
    final_records.sort_unstable_by_key(|&(peer, _)| peer);
    outcome(per_requester, declined, final_records)
}

fn run_inner(cfg: &ServiceScenarioConfig, concurrent: bool) -> ServiceScenarioOutcome {
    let task = Task::uniform(SERVICE_TASK, [CharacteristicId(0)]).expect("non-empty task");
    let mut engine: TrustEngine<u64, ShardedBackend<u64>> = TrustEngine::new();
    engine.register_task(task.clone());
    let service = TrustService::spawn(
        engine,
        ServiceOptions { mailbox: cfg.mailbox, ..ServiceOptions::default() },
    );
    let (per_requester, declined) =
        drive_fleet(cfg, &task, &ScenarioHandle::Single(service.handle()), concurrent);
    let engine = service.shutdown().expect("scenario service shuts down cleanly");
    let mut final_records: Vec<(u64, TrustRecord)> = Vec::with_capacity(engine.record_count());
    for peer in engine.known_peers() {
        if let Some(rec) = engine.record(peer, SERVICE_TASK) {
            final_records.push((peer, rec));
        }
    }
    outcome(per_requester, declined, final_records)
}

/// Every requester's drive — racing threads or one after another — with
/// per-requester profits and the decline total collected.
fn drive_fleet(
    cfg: &ServiceScenarioConfig,
    task: &Task,
    handle: &ScenarioHandle,
    concurrent: bool,
) -> (Vec<f64>, usize) {
    let qualities = qualities(cfg);
    let mut per_requester = vec![0.0; cfg.requesters];
    let mut declined = 0;
    if concurrent {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cfg.requesters)
                .map(|r| {
                    let handle = handle.clone();
                    let task = &*task;
                    let qualities = &qualities;
                    scope.spawn(move || drive_requester(&handle, r, task, qualities, cfg))
                })
                .collect();
            for (r, h) in handles.into_iter().enumerate() {
                let (profit, decl) = h.join().expect("requester thread completes");
                per_requester[r] = profit;
                declined += decl;
            }
        });
    } else {
        for (r, slot) in per_requester.iter_mut().enumerate() {
            let (profit, decl) = drive_requester(handle, r, task, &qualities, cfg);
            *slot = profit;
            declined += decl;
        }
    }
    (per_requester, declined)
}

fn outcome(
    per_requester: Vec<f64>,
    declined: usize,
    final_records: Vec<(u64, TrustRecord)>,
) -> ServiceScenarioOutcome {
    let mean_profit = per_requester.iter().sum::<f64>() / per_requester.len().max(1) as f64;
    ServiceScenarioOutcome { mean_profit, per_requester, declined, final_records }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_requesters_match_sequential_bitwise() {
        let cfg = ServiceScenarioConfig { iterations: 60, ..Default::default() };
        let racing = run(&cfg);
        let ordered = run_sequential(&cfg);
        assert_eq!(racing.final_records.len(), ordered.final_records.len());
        for ((pa, ra), (pb, rb)) in racing.final_records.iter().zip(&ordered.final_records) {
            assert_eq!(pa, pb);
            assert_eq!(ra.s_hat.to_bits(), rb.s_hat.to_bits());
            assert_eq!(ra.g_hat.to_bits(), rb.g_hat.to_bits());
            assert_eq!(ra.d_hat.to_bits(), rb.d_hat.to_bits());
            assert_eq!(ra.c_hat.to_bits(), rb.c_hat.to_bits());
            assert_eq!(ra.interactions, rb.interactions);
        }
        assert_eq!(racing.per_requester, ordered.per_requester);
        assert_eq!(racing.declined, ordered.declined);
    }

    #[test]
    fn sharded_requesters_match_sequential_bitwise() {
        let cfg = ServiceScenarioConfig { iterations: 60, ..Default::default() };
        let ordered = run_sequential(&cfg);
        for shards in [2usize, 3] {
            let sharded = run_sharded(&cfg, shards);
            assert_eq!(sharded.final_records.len(), ordered.final_records.len());
            for ((pa, ra), (pb, rb)) in sharded.final_records.iter().zip(&ordered.final_records) {
                assert_eq!(pa, pb);
                assert_eq!(ra.s_hat.to_bits(), rb.s_hat.to_bits());
                assert_eq!(ra.g_hat.to_bits(), rb.g_hat.to_bits());
                assert_eq!(ra.d_hat.to_bits(), rb.d_hat.to_bits());
                assert_eq!(ra.c_hat.to_bits(), rb.c_hat.to_bits());
                assert_eq!(ra.interactions, rb.interactions);
            }
            assert_eq!(sharded.per_requester, ordered.per_requester);
            assert_eq!(sharded.declined, ordered.declined);
        }
    }

    #[test]
    fn remote_requesters_match_sequential_bitwise() {
        let cfg = ServiceScenarioConfig { iterations: 40, ..Default::default() };
        let ordered = run_sequential(&cfg);
        let remote = run_remote(&cfg, 2);
        assert_eq!(remote.final_records.len(), ordered.final_records.len());
        for ((pa, ra), (pb, rb)) in remote.final_records.iter().zip(&ordered.final_records) {
            assert_eq!(pa, pb);
            assert_eq!(ra.s_hat.to_bits(), rb.s_hat.to_bits());
            assert_eq!(ra.g_hat.to_bits(), rb.g_hat.to_bits());
            assert_eq!(ra.d_hat.to_bits(), rb.d_hat.to_bits());
            assert_eq!(ra.c_hat.to_bits(), rb.c_hat.to_bits());
            assert_eq!(ra.interactions, rb.interactions);
        }
        assert_eq!(remote.per_requester, ordered.per_requester);
        assert_eq!(remote.declined, ordered.declined);
    }

    #[test]
    fn fleet_requesters_match_sequential_bitwise() {
        let cfg = ServiceScenarioConfig { iterations: 40, ..Default::default() };
        let ordered = run_sequential(&cfg);
        let fleet = run_fleet(&cfg, 2, 2);
        assert_eq!(fleet.final_records.len(), ordered.final_records.len());
        for ((pa, ra), (pb, rb)) in fleet.final_records.iter().zip(&ordered.final_records) {
            assert_eq!(pa, pb);
            assert_eq!(ra.s_hat.to_bits(), rb.s_hat.to_bits());
            assert_eq!(ra.g_hat.to_bits(), rb.g_hat.to_bits());
            assert_eq!(ra.d_hat.to_bits(), rb.d_hat.to_bits());
            assert_eq!(ra.c_hat.to_bits(), rb.c_hat.to_bits());
            assert_eq!(ra.interactions, rb.interactions);
        }
        assert_eq!(fleet.per_requester, ordered.per_requester);
        assert_eq!(fleet.declined, ordered.declined);
    }

    #[test]
    fn requesters_learn_profitable_trustees() {
        let cfg = ServiceScenarioConfig::default();
        let outcome = run(&cfg);
        // Eq. 23 selection converges onto good trustees: positive realized
        // profit on average, and every requester interacted
        assert!(outcome.mean_profit > 0.0, "mean profit {}", outcome.mean_profit);
        assert_eq!(outcome.per_requester.len(), cfg.requesters);
        assert!(!outcome.final_records.is_empty());
        // keys stay scoped: no requester's records leak into another's
        for &(key, _) in &outcome.final_records {
            assert!(((key >> 32) as usize) < cfg.requesters);
            assert!(((key & u32::MAX as u64) as usize) < cfg.trustees);
        }
    }
}
