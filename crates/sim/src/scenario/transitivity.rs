//! Figs. 9–12 and Table 2 — transitivity of trust (§5.5).
//!
//! Multiple task types (1–2 characteristics each) live in the network;
//! every node has experienced two of them. Trustors request 2-characteristic
//! tasks and search for trustees with the traditional, conservative, or
//! aggressive method. Measured: success rate, unavailable rate, average
//! number of potential trustees, and per-trustor inquiry overhead.

use crate::agent::{AgentId, Roles};
use crate::knowledge::Knowledge;
use crate::metrics::{mean, Ratio};
use crate::search::{SearchMethod, TrusteeSearch};
use crate::tasks::TaskPool;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use siot_core::context::Context;
use siot_core::delegation::{DelegationOutcome, Referral};
use siot_core::goal::Goal;
use siot_core::record::ForgettingFactors;
use siot_core::store::TrustEngine;
use siot_core::task::TaskId;
use siot_core::transitivity::TransitivityGates;
use siot_graph::generate::features::FeatureMatrix;
use siot_graph::SocialGraph;

/// Parameters of the transitivity experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitivityConfig {
    /// Size of the characteristic alphabet (the paper sweeps 4–7).
    pub n_characteristics: usize,
    /// Random 2-characteristic task types added to the singleton types.
    pub extra_pair_tasks: usize,
    /// Experienced task types per node (paper: 2).
    pub tasks_per_node: usize,
    /// Noise on seeded trust records.
    pub record_noise: f64,
    /// Requests per trustor.
    pub requests_per_trustor: usize,
    /// Search horizon in hops.
    pub max_hops: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransitivityConfig {
    fn default() -> Self {
        TransitivityConfig {
            n_characteristics: 4,
            extra_pair_tasks: 6,
            tasks_per_node: 2,
            record_noise: 0.05,
            requests_per_trustor: 5,
            // up to two intermediates (the paper's B ← C ← E examples);
            // peripheral trustors need the third hop to reach the core,
            // which only helps methods whose relays are common
            max_hops: 3,
            seed: 42,
        }
    }
}

/// Aggregated results for one `(network, method, n_characteristics)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitivityOutcome {
    /// Successful delegations / requests (Fig. 9, Table 2).
    pub success_rate: f64,
    /// Requests without any potential trustee (Fig. 10, Table 2).
    pub unavailable_rate: f64,
    /// Mean number of potential trustees per request (Fig. 11, Table 2).
    pub avg_potential_trustees: f64,
    /// Nodes inquired per trustor, one entry per trustor (Fig. 12).
    pub inquired_per_trustor: Vec<usize>,
    /// Delegation sessions actually executed (requests with a trustee):
    /// every realized outcome is fed back through a referral-based session
    /// into the trustors' post-evaluation ledger.
    pub executed_delegations: usize,
}

/// Runs the transitivity experiment with randomly assigned characteristics.
pub fn run(g: &SocialGraph, method: SearchMethod, cfg: &TransitivityConfig) -> TransitivityOutcome {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let pool = TaskPool::generate(cfg.n_characteristics, cfg.extra_pair_tasks, &mut rng);
    let knowledge = Knowledge::seed(g, &pool, cfg.tasks_per_node, cfg.record_noise, &mut rng);
    run_with_knowledge(g, method, cfg, &pool, &knowledge, &mut rng)
}

/// Table 2 variant: task characteristics are node properties. A node's
/// experienced tasks are derived from the attributes it actually has, so
/// characteristic coverage follows the (community-correlated) feature
/// distribution instead of being uniform.
pub fn run_with_features(
    g: &SocialGraph,
    method: SearchMethod,
    cfg: &TransitivityConfig,
    features: &FeatureMatrix,
) -> TransitivityOutcome {
    assert_eq!(features.node_count(), g.node_count());
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let pool = TaskPool::generate(features.feature_count(), cfg.extra_pair_tasks, &mut rng);
    let mut knowledge = Knowledge::seed(g, &pool, cfg.tasks_per_node, cfg.record_noise, &mut rng);

    // Experienced tasks = task types whose characteristics the node has.
    // Node properties are richer than the synthetic two-task assignment
    // (twice the budget), and most real experience is with *single*
    // capabilities: we interleave singleton and pair tasks. That is what
    // separates the methods in Table 2 — the characteristic-based schemes
    // assemble coverage from singleton experience, while the traditional
    // method needs the exact (mostly pair) task type.
    let experienced: Vec<Vec<TaskId>> = (0..g.node_count())
        .map(|node| {
            let owned: Vec<TaskId> = pool
                .tasks()
                .iter()
                .filter(|t| t.characteristic_ids().all(|c| features.has(node, c.0 as usize)))
                .map(|t| t.id())
                .collect();
            let (singles, pairs): (Vec<TaskId>, Vec<TaskId>) =
                owned.into_iter().partition(|&tid| pool.task(tid).len() == 1);
            let mut kept = Vec::with_capacity(2 * cfg.tasks_per_node);
            let mut si = singles.into_iter();
            let mut pi = pairs.into_iter();
            while kept.len() < 2 * cfg.tasks_per_node {
                match (si.next(), pi.next()) {
                    (None, None) => break,
                    (s, p) => {
                        kept.extend(s);
                        kept.extend(p);
                    }
                }
            }
            kept.truncate(2 * cfg.tasks_per_node);
            kept.sort_unstable();
            kept
        })
        .collect();
    knowledge.set_experienced(experienced);
    knowledge.reseed_records(g, &pool, cfg.record_noise, &mut rng);
    run_with_knowledge(g, method, cfg, &pool, &knowledge, &mut rng)
}

fn run_with_knowledge(
    g: &SocialGraph,
    method: SearchMethod,
    cfg: &TransitivityConfig,
    pool: &TaskPool,
    knowledge: &Knowledge,
    _rng: &mut SmallRng,
) -> TransitivityOutcome {
    let roles = Roles::paper_split(g, cfg.seed ^ 0x7ee5);
    let mut search = TrusteeSearch::new(g, knowledge, pool);
    search.max_hops = cfg.max_hops;

    let mut success = Ratio::default();
    let mut unavailable = Ratio::default();
    let mut trustee_counts = Vec::new();
    let mut inquired_per_trustor = Vec::with_capacity(roles.trustors().len());
    let is_trustee = |a: AgentId| roles.is_trustee(a);

    // Post-evaluation ledger: every realized delegation flows back through
    // a session whose trust basis is the search's transferred estimate (a
    // referral), keyed by the (trustor, trustee) pair.
    let mut ledger: TrustEngine<(AgentId, AgentId)> = TrustEngine::new();
    let betas = ForgettingFactors::figures();
    let mut executed_delegations = 0usize;

    for &trustor in roles.trustors() {
        let mut inquired_total = 0usize;
        for req in 0..cfg.requests_per_trustor {
            // Requests are drawn from a per-(trustor, request) stream so the
            // three methods face *identical* request sequences — comparisons
            // are paired, and the aggressive ⊇ conservative candidate-set
            // guarantee shows up in the rates exactly.
            let mut req_rng =
                SmallRng::seed_from_u64(cfg.seed ^ ((trustor.0 as u64) << 20) ^ (req as u64) << 8);
            let task = pool.random_pair_task(&mut req_rng);
            let out = search.find(method, trustor, task, &is_trustee);
            inquired_total += out.inquired;
            trustee_counts.push(out.candidates.len() as f64);
            match out.best() {
                None => {
                    unavailable.record(true);
                    success.record(false);
                }
                Some(best) => {
                    unavailable.record(false);
                    let p = knowledge.actual_task_competence(best.trustee, pool.task(task));
                    let p = p.clamp(0.0, 1.0);
                    let ok = req_rng.gen_bool(p);
                    success.record(ok);

                    // the search already walked and gated the paths, so
                    // its combined estimate enters as the execution link
                    let active = ledger
                        .delegate(
                            (trustor, best.trustee),
                            pool.task(task),
                            Goal::ANY,
                            Context::amicable(task),
                        )
                        .with_referral(Referral::execution(best.estimate.clamp(0.0, 1.0)))
                        .with_gates(TransitivityGates::OPEN)
                        .activate(&ledger);
                    let outcome = if ok {
                        DelegationOutcome::succeeded(p, 0.0)
                    } else {
                        DelegationOutcome::failed(1.0 - p, 0.0)
                    };
                    active
                        .execute(&mut ledger, outcome, &betas)
                        .expect("competences are clamped to the unit range");
                    executed_delegations += 1;
                }
            }
        }
        inquired_per_trustor.push(inquired_total / cfg.requests_per_trustor.max(1));
    }

    TransitivityOutcome {
        success_rate: success.value(),
        unavailable_rate: unavailable.value(),
        avg_potential_trustees: mean(&trustee_counts),
        inquired_per_trustor,
        executed_delegations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siot_graph::generate::features::synthesize_features;
    use siot_graph::generate::social::SocialNetKind;

    fn cfg(n_chars: usize) -> TransitivityConfig {
        TransitivityConfig {
            n_characteristics: n_chars,
            requests_per_trustor: 3,
            ..Default::default()
        }
    }

    #[test]
    fn proposed_methods_beat_traditional() {
        let g = SocialNetKind::Twitter.generate(3);
        let trad = run(&g, SearchMethod::Traditional, &cfg(5));
        let cons = run(&g, SearchMethod::Conservative, &cfg(5));
        let aggr = run(&g, SearchMethod::Aggressive, &cfg(5));
        assert!(cons.success_rate > trad.success_rate, "{cons:?} vs {trad:?}");
        assert!(aggr.success_rate >= cons.success_rate - 0.05, "{aggr:?} vs {cons:?}");
        assert!(cons.unavailable_rate < trad.unavailable_rate);
        assert!(aggr.unavailable_rate <= cons.unavailable_rate + 0.05);
        assert!(aggr.avg_potential_trustees >= cons.avg_potential_trustees);
        assert!(cons.avg_potential_trustees > trad.avg_potential_trustees);
        // every request with a trustee was executed through a session
        for out in [&trad, &cons, &aggr] {
            let requests = out.inquired_per_trustor.len() * 3;
            let unavailable = (out.unavailable_rate * requests as f64).round() as usize;
            assert_eq!(out.executed_delegations, requests - unavailable, "{out:?}");
        }
    }

    #[test]
    fn more_characteristics_hurt() {
        let g = SocialNetKind::Twitter.generate(3);
        let few = run(&g, SearchMethod::Conservative, &cfg(4));
        let many = run(&g, SearchMethod::Conservative, &cfg(7));
        assert!(many.success_rate < few.success_rate + 0.05, "{few:?} vs {many:?}");
        assert!(many.unavailable_rate > few.unavailable_rate - 0.05);
    }

    #[test]
    fn aggressive_costs_more_inquiries() {
        let g = SocialNetKind::Twitter.generate(3);
        let cons = run(&g, SearchMethod::Conservative, &cfg(5));
        let aggr = run(&g, SearchMethod::Aggressive, &cfg(5));
        let cons_mean: f64 = cons.inquired_per_trustor.iter().map(|&x| x as f64).sum::<f64>()
            / cons.inquired_per_trustor.len() as f64;
        let aggr_mean: f64 = aggr.inquired_per_trustor.iter().map(|&x| x as f64).sum::<f64>()
            / aggr.inquired_per_trustor.len() as f64;
        assert!(aggr_mean >= cons_mean, "aggressive pays the search overhead");
    }

    #[test]
    fn feature_variant_runs_and_ranks() {
        let (g, community) = SocialNetKind::Twitter.generate_with_communities(4);
        let features = synthesize_features(&community, 6, 0.35, 9);
        let c = TransitivityConfig { requests_per_trustor: 3, ..Default::default() };
        let trad = run_with_features(&g, SearchMethod::Traditional, &c, &features);
        let aggr = run_with_features(&g, SearchMethod::Aggressive, &c, &features);
        assert!(aggr.success_rate > trad.success_rate, "{aggr:?} vs {trad:?}");
        assert!(aggr.unavailable_rate < trad.unavailable_rate);
    }

    #[test]
    fn deterministic() {
        let g = SocialNetKind::Twitter.generate(5);
        let a = run(&g, SearchMethod::Aggressive, &cfg(5));
        let b = run(&g, SearchMethod::Aggressive, &cfg(5));
        assert_eq!(a, b);
    }
}
