//! Fig. 7 — mutuality of trustor and trustee (§5.3).
//!
//! Every trustor carries a hidden *responsibility* value in `[0, 1]`: high
//! means it uses trustees' resources legitimately, low means it abuses them
//! with high probability. Trustees reverse-evaluate trustors from usage
//! statistics and refuse delegations below threshold `θ_y(τ)`; `θ = 0`
//! reproduces the unilateral-evaluation baseline.

use crate::agent::{AgentId, Roles};
use crate::metrics::Ratio;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use siot_core::context::Context;
use siot_core::delegation::DelegationOutcome;
use siot_core::goal::Goal;
use siot_core::mutuality::{ReverseEvaluator, UsageLog};
use siot_core::record::ForgettingFactors;
use siot_core::store::TrustEngine;
use siot_core::task::{CharacteristicId, Task, TaskId};
use siot_graph::traversal::bfs_distances_bounded;
use siot_graph::SocialGraph;

/// The single implicit task type delegations are filed under.
const MUTUALITY_TASK: TaskId = TaskId(0);

/// Parameters of the mutuality experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutualityConfig {
    /// The trustee-side acceptance threshold `θ_y(τ)` (0, 0.3, 0.6 in the
    /// paper).
    pub theta: f64,
    /// Delegation requests issued per trustor.
    pub requests_per_trustor: usize,
    /// Warm-up interactions seeding each trustee's usage log per trustor.
    pub warmup_interactions: usize,
    /// How far (hops) a trustor looks for trustees.
    pub search_hops: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MutualityConfig {
    fn default() -> Self {
        MutualityConfig {
            theta: 0.0,
            requests_per_trustor: 10,
            warmup_interactions: 20,
            search_hops: 2,
            seed: 42,
        }
    }
}

/// The three rates reported per bar group in Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutualityOutcome {
    /// Successful delegations / total requests.
    pub success_rate: f64,
    /// Requests no trustee would accept / total requests.
    pub unavailable_rate: f64,
    /// Abusive uses / all uses of trustee resources.
    pub abuse_rate: f64,
}

/// Runs the mutuality experiment on one network.
pub fn run(g: &SocialGraph, cfg: &MutualityConfig) -> MutualityOutcome {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let roles = Roles::paper_split(g, cfg.seed ^ 0x5107);
    let n = g.node_count();

    // hidden ground truth
    let responsibility: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    let competence: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();

    // Warm-up: each trustee's usage log about each trustor reflects the
    // trustor's past behaviour (Bernoulli(responsibility) samples).
    // Logs are per (trustee, trustor) pair but identical in distribution,
    // so they are seeded lazily — in the network-wide trust engine, which
    // owns all reverse-evaluation state. Live entries are appended by the
    // executed delegation sessions, never by hand.
    let evaluator = ReverseEvaluator::new(cfg.theta);
    let mut engine: TrustEngine<(AgentId, AgentId)> = TrustEngine::new();
    let task = Task::uniform(MUTUALITY_TASK, [CharacteristicId(0)]).expect("non-empty");
    let betas = ForgettingFactors::figures();

    let mut success = Ratio::default();
    let mut unavailable = Ratio::default();
    let mut abuse = Ratio::default();

    for &trustor in roles.trustors() {
        // candidate trustees within the search horizon
        let dist = bfs_distances_bounded(g, trustor, cfg.search_hops);
        let mut candidates: Vec<AgentId> = roles
            .trustees()
            .iter()
            .copied()
            .filter(|t| *t != trustor && dist[t.index()] != u32::MAX)
            .collect();
        // pre-evaluation: rank by (noisily known) trustee competence
        candidates.sort_by(|a, b| {
            competence[b.index()]
                .partial_cmp(&competence[a.index()])
                .expect("competence is never NaN")
        });

        for _ in 0..cfg.requests_per_trustor {
            if candidates.is_empty() {
                unavailable.record(true);
                success.record(false);
                continue;
            }
            // Fig. 2 procedure: try candidates best-first until one accepts.
            let mut accepted: Option<AgentId> = None;
            for &trustee in &candidates {
                let log = engine.seed_usage_log((trustee, trustor), || {
                    let mut l = UsageLog::new();
                    for _ in 0..cfg.warmup_interactions {
                        if rng.gen_bool(responsibility[trustor.index()]) {
                            l.record_responsive();
                        } else {
                            l.record_abusive();
                        }
                    }
                    l
                });
                if evaluator.accepts(log) {
                    accepted = Some(trustee);
                    break;
                }
            }
            let Some(trustee) = accepted else {
                unavailable.record(true);
                success.record(false);
                continue;
            };
            unavailable.record(false);

            // the delegation happens: resource use + task execution,
            // fed back through a one-shot session so the usage log and
            // the (trustee, trustor) record move together
            let abusive = !rng.gen_bool(responsibility[trustor.index()]);
            abuse.record(abusive);
            let ok = rng.gen_bool(competence[trustee.index()]);
            success.record(ok);

            let active = engine
                .delegate((trustee, trustor), &task, Goal::ANY, Context::amicable(MUTUALITY_TASK))
                .activate(&engine);
            let outcome = if ok {
                DelegationOutcome::succeeded(0.5, 0.1)
            } else {
                DelegationOutcome::failed(0.5, 0.1)
            };
            let outcome = if abusive { outcome.abusive() } else { outcome };
            active
                .execute(&mut engine, outcome, &betas)
                .expect("outcome components are unit-range constants");
        }
    }

    MutualityOutcome {
        success_rate: success.value(),
        unavailable_rate: unavailable.value(),
        abuse_rate: abuse.value(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siot_graph::generate::social::SocialNetKind;

    fn quick(theta: f64) -> MutualityOutcome {
        let g = SocialNetKind::Twitter.generate(1);
        run(&g, &MutualityConfig { theta, requests_per_trustor: 5, ..Default::default() })
    }

    #[test]
    fn theta_zero_has_high_abuse() {
        let out = quick(0.0);
        assert!(out.abuse_rate > 0.4, "paper: abuse > 0.4 without reverse eval, got {out:?}");
        assert!(out.unavailable_rate < 0.1, "θ=0 rarely refuses: {out:?}");
    }

    #[test]
    fn raising_theta_trades_abuse_for_unavailability() {
        let t0 = quick(0.0);
        let t3 = quick(0.3);
        let t6 = quick(0.6);
        assert!(t3.abuse_rate < t0.abuse_rate, "{t0:?} vs {t3:?}");
        assert!(t6.abuse_rate < t3.abuse_rate, "{t3:?} vs {t6:?}");
        assert!(t3.unavailable_rate > t0.unavailable_rate);
        assert!(t6.unavailable_rate > t3.unavailable_rate);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = SocialNetKind::Twitter.generate(2);
        let cfg = MutualityConfig::default();
        let a = run(&g, &cfg);
        let b = run(&g, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn rates_are_rates() {
        let out = quick(0.3);
        for v in [out.success_rate, out.unavailable_rate, out.abuse_rate] {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
