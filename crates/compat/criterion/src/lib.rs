//! Vendored, dependency-free stand-in for the parts of the `criterion`
//! crate this workspace uses: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this shim as a path dependency. It is a plain wall-clock harness: warm-up,
//! then timed batches until a time budget is spent, reporting min / mean /
//! max per-iteration latency. Benchmark names passed on the command line act
//! as substring filters, like the real crate. `SIOT_BENCH_BUDGET_MS`
//! overrides the 300 ms per-benchmark measurement budget.
//!
//! When `SIOT_BENCH_JSON` names a file, every measurement is additionally
//! written there as machine-readable JSON (one object with a `results`
//! array), so CI can record a perf trajectory across commits instead of
//! scraping stdout. Each group overwrites the file; the workspace's bench
//! binaries each register a single group.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// One recorded measurement, kept for the JSON trajectory.
struct BenchResult {
    id: String,
    ns_per_iter: f64,
    min_ns_per_iter: f64,
    iters: u64,
}

/// What one [`Bencher::iter`] run measured.
pub struct Measurement {
    /// Total iterations timed (excluding warm-up).
    pub iters: u64,
    /// Total elapsed time across those iterations.
    pub elapsed: Duration,
    /// Fastest observed per-iteration time, in nanoseconds — the
    /// noise-floor statistic, robust to CPU steal on shared hosts (the
    /// mean drifts with whatever the neighbors are doing).
    pub min_ns_per_iter: f64,
}

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs closures under a timer, one measurement batch at a time.
pub struct Bencher {
    budget: Duration,
    /// Filled by [`Bencher::iter`].
    measurement: Option<Measurement>,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher { budget, measurement: None }
    }

    /// Times `f`, running it repeatedly until the budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up and per-iteration estimate
        let warm_start = Instant::now();
        black_box(f());
        let estimate = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (self.budget.as_nanos() / 10 / estimate.as_nanos()).clamp(1, 100_000) as u64;

        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let mut min_ns = f64::INFINITY;
        while elapsed < self.budget {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            let batch = start.elapsed();
            min_ns = min_ns.min(batch.as_nanos() as f64 / per_batch as f64);
            elapsed += batch;
            iters += per_batch;
        }
        self.measurement = Some(Measurement { iters, elapsed, min_ns_per_iter: min_ns });
    }
}

/// Registry and runner for benchmark functions.
pub struct Criterion {
    filters: Vec<String>,
    budget: Duration,
    results: Vec<BenchResult>,
    json_path: Option<std::path::PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmarks, like criterion
        let filters: Vec<String> =
            std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        let budget_ms = std::env::var("SIOT_BENCH_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300u64);
        let json_path = std::env::var_os("SIOT_BENCH_JSON").map(std::path::PathBuf::from);
        Criterion {
            filters,
            budget: Duration::from_millis(budget_ms),
            results: Vec::new(),
            json_path,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark (skipped unless it matches the CLI filter).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if !self.filters.is_empty() && !self.filters.iter().any(|pat| id.contains(pat.as_str())) {
            return self;
        }
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        match b.measurement {
            Some(m) if m.iters > 0 => {
                let per_iter = m.elapsed.as_nanos() as f64 / m.iters as f64;
                println!(
                    "{id:<44} min {:>12}/iter  mean {:>12}/iter  ({} iterations)",
                    fmt_ns(m.min_ns_per_iter),
                    fmt_ns(per_iter),
                    m.iters
                );
                self.results.push(BenchResult {
                    id: id.to_string(),
                    ns_per_iter: per_iter,
                    min_ns_per_iter: m.min_ns_per_iter,
                    iters: m.iters,
                });
            }
            _ => println!("{id:<44} (no measurement: Bencher::iter never called)"),
        }
        self
    }

    /// Writes the recorded measurements to the `SIOT_BENCH_JSON` file, if
    /// set. Called by [`criterion_group!`] after the group's targets run; a
    /// write failure warns on stderr instead of failing the bench run.
    pub fn final_summary(&self) {
        let Some(path) = &self.json_path else {
            return;
        };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"budget_ms\": {},\n", self.budget.as_millis()));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"min_ns_per_iter\": {:.1}, \"ns_per_iter\": {:.1}, \"iters\": {}}}{comma}\n",
                json_escape(&r.id),
                r.min_ns_per_iter,
                r.ns_per_iter,
                r.iters
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Escapes the two JSON-significant characters bench ids could contain.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            filters: Vec::new(),
            budget: Duration::from_millis(5),
            results: Vec::new(),
            json_path: None,
        }
    }

    #[test]
    fn bencher_measures_work() {
        let mut c = quick();
        let mut observed = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| black_box(3u64).pow(7));
            let m = b.measurement.as_ref().expect("iter ran");
            assert!(m.min_ns_per_iter.is_finite());
            assert!(m.min_ns_per_iter <= m.elapsed.as_nanos() as f64 / m.iters as f64 + 1e-9);
            observed = m.iters;
        });
        assert!(observed > 0);
    }

    #[test]
    fn filters_skip_nonmatching() {
        let mut c = quick();
        c.filters = vec!["only_this".into()];
        let mut ran = false;
        c.bench_function("something_else", |_b| ran = true);
        assert!(!ran);
        c.bench_function("exactly_only_this_one", |_b| ran = true);
        assert!(ran);
    }

    #[test]
    fn final_summary_writes_json_trajectory() {
        let mut c = quick();
        let path =
            std::env::temp_dir().join(format!("siot_bench_trajectory_{}.json", std::process::id()));
        c.json_path = Some(path.clone());
        c.bench_function("group/case_\"quoted\"", |b| b.iter(|| black_box(1u64 + 1)));
        c.final_summary();
        let json = std::fs::read_to_string(&path).expect("summary written");
        let _ = std::fs::remove_file(&path);
        assert!(json.contains("\"budget_ms\": 5"));
        assert!(json.contains("group/case_\\\"quoted\\\""));
        assert!(json.contains("\"min_ns_per_iter\""));
        assert!(json.contains("\"ns_per_iter\""));
        assert!(json.contains("\"iters\""));
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
