//! Vendored, dependency-free stand-in for the parts of the `criterion`
//! crate this workspace uses: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this shim as a path dependency. It is a plain wall-clock harness: warm-up,
//! then timed batches until a time budget is spent, reporting min / mean /
//! max per-iteration latency. Benchmark names passed on the command line act
//! as substring filters, like the real crate. `SIOT_BENCH_BUDGET_MS`
//! overrides the 300 ms per-benchmark measurement budget.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs closures under a timer, one measurement batch at a time.
pub struct Bencher {
    budget: Duration,
    /// Filled by [`Bencher::iter`]: (iterations, total elapsed).
    measurement: Option<(u64, Duration)>,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher { budget, measurement: None }
    }

    /// Times `f`, running it repeatedly until the budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up and per-iteration estimate
        let warm_start = Instant::now();
        black_box(f());
        let estimate = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (self.budget.as_nanos() / 10 / estimate.as_nanos()).clamp(1, 100_000) as u64;

        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.budget {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            elapsed += start.elapsed();
            iters += per_batch;
        }
        self.measurement = Some((iters, elapsed));
    }
}

/// Registry and runner for benchmark functions.
pub struct Criterion {
    filters: Vec<String>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmarks, like criterion
        let filters: Vec<String> =
            std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        let budget_ms = std::env::var("SIOT_BENCH_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300u64);
        Criterion { filters, budget: Duration::from_millis(budget_ms) }
    }
}

impl Criterion {
    /// Runs one named benchmark (skipped unless it matches the CLI filter).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if !self.filters.is_empty() && !self.filters.iter().any(|pat| id.contains(pat.as_str())) {
            return self;
        }
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        match b.measurement {
            Some((iters, elapsed)) if iters > 0 => {
                let per_iter = elapsed.as_nanos() as f64 / iters as f64;
                println!("{id:<44} {:>14}/iter  ({iters} iterations)", fmt_ns(per_iter));
            }
            _ => println!("{id:<44} (no measurement: Bencher::iter never called)"),
        }
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion { filters: Vec::new(), budget: Duration::from_millis(5) }
    }

    #[test]
    fn bencher_measures_work() {
        let mut c = quick();
        let mut observed = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| black_box(3u64).pow(7));
            observed = b.measurement.expect("iter ran").0;
        });
        assert!(observed > 0);
    }

    #[test]
    fn filters_skip_nonmatching() {
        let mut c = quick();
        c.filters = vec!["only_this".into()];
        let mut ran = false;
        c.bench_function("something_else", |_b| ran = true);
        assert!(!ran);
        c.bench_function("exactly_only_this_one", |_b| ran = true);
        assert!(ran);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
