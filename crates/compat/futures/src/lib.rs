//! Vendored offline stand-in exposing the subset of the `futures` API this
//! workspace uses (no crates.io access in the build environment):
//!
//! * [`executor::block_on`] — drive any `Future` to completion on the
//!   calling thread, parking between polls. The whole executor the
//!   workspace needs: service callers either live on their own thread
//!   (simulated devices, bench clients) or block at a natural boundary.
//! * [`channel::oneshot`] — a single-value completion channel whose
//!   [`Receiver`](channel::oneshot::Receiver) is a `Future`. The reply
//!   path of every actor round trip.
//! * [`executor::Parker`] — a reusable park/wake primitive plus a [`Waker`]
//!   minted from it, for threads that multiplex *many* futures and need to
//!   sleep until any of them (or an external producer) signals progress.
//!   The wire server's response-multiplexer loop runs on it.
//!
//! Everything is built on `std` only — `std::task::Wake` provides the
//! waker plumbing without a line of unsafe code.
//!
//! [`Waker`]: std::task::Waker

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Minimal single-threaded executor.
pub mod executor {
    use std::future::Future;
    use std::pin::pin;
    use std::sync::Arc;
    use std::task::{Context, Poll, Wake, Waker};
    use std::thread::{self, Thread};

    /// Wakes its thread by unparking it.
    struct ThreadWaker(Thread);

    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }

        fn wake_by_ref(self: &Arc<Self>) {
            self.0.unpark();
        }
    }

    /// Runs `future` to completion on the calling thread, parking between
    /// polls until a waker fires. Spurious unparks (allowed by
    /// `std::thread::park`) only cost an extra poll.
    pub fn block_on<F: Future>(future: F) -> F::Output {
        let mut future = pin!(future);
        let waker = Waker::from(Arc::new(ThreadWaker(thread::current())));
        let mut cx = Context::from_waker(&waker);
        loop {
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(value) => return value,
                Poll::Pending => thread::park(),
            }
        }
    }

    use std::sync::{Condvar, Mutex};

    /// A reusable park/wake primitive for a thread multiplexing many
    /// futures: [`park`](Parker::park) blocks until *any* prior
    /// [`unpark`](Parker::unpark) — from a [`waker`](Parker::waker) one of
    /// the polled futures fired, or from another thread handing the parked
    /// one new work. A wake that lands between the last poll and the park
    /// is never lost (the token is level-triggered, not edge-triggered),
    /// which `std::thread::park` alone cannot promise a *shared* waker.
    #[derive(Debug, Clone)]
    pub struct Parker {
        state: Arc<ParkState>,
    }

    #[derive(Debug)]
    struct ParkState {
        woken: Mutex<bool>,
        cv: Condvar,
    }

    impl Wake for ParkState {
        fn wake(self: Arc<Self>) {
            self.wake_by_ref();
        }

        fn wake_by_ref(self: &Arc<Self>) {
            *self.woken.lock().unwrap_or_else(|e| e.into_inner()) = true;
            self.cv.notify_all();
        }
    }

    impl Parker {
        /// A fresh parker with no pending wake token.
        pub fn new() -> Self {
            Parker { state: Arc::new(ParkState { woken: Mutex::new(false), cv: Condvar::new() }) }
        }

        /// A waker that [`unpark`](Self::unpark)s this parker — hand it to
        /// every future the multiplexing thread polls; any of them waking
        /// releases the next park.
        pub fn waker(&self) -> Waker {
            Waker::from(Arc::clone(&self.state))
        }

        /// Deposits a wake token and releases a parked thread (or the next
        /// [`park`](Self::park) call, if none is parked yet).
        pub fn unpark(&self) {
            self.state.wake_by_ref();
        }

        /// Blocks until a wake token is available, then consumes it.
        /// Returns immediately if one was deposited since the last park.
        pub fn park(&self) {
            let mut woken = self.state.woken.lock().unwrap_or_else(|e| e.into_inner());
            while !*woken {
                woken = self.state.cv.wait(woken).unwrap_or_else(|e| e.into_inner());
            }
            *woken = false;
        }
    }

    impl Default for Parker {
        fn default() -> Self {
            Parker::new()
        }
    }
}

/// Channels for passing values between tasks.
pub mod channel {
    /// A one-shot, single-value channel: `Sender::send` consumes the
    /// sender, and the `Receiver` is a [`Future`](std::future::Future)
    /// resolving to the sent value — or `Canceled` if the sender was
    /// dropped without sending.
    pub mod oneshot {
        use std::fmt;
        use std::future::Future;
        use std::pin::Pin;
        use std::sync::{Arc, Mutex};
        use std::task::{Context, Poll, Waker};

        /// The error returned when the sender dropped without sending.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Canceled;

        impl fmt::Display for Canceled {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "oneshot canceled")
            }
        }

        impl std::error::Error for Canceled {}

        struct Inner<T> {
            value: Option<T>,
            waker: Option<Waker>,
            sender_alive: bool,
            receiver_alive: bool,
        }

        type Shared<T> = Arc<Mutex<Inner<T>>>;

        fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, Inner<T>> {
            shared.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// The sending half; consumed by [`Sender::send`].
        pub struct Sender<T>(Shared<T>);

        /// The receiving half; a future resolving to the sent value.
        pub struct Receiver<T>(Shared<T>);

        /// Creates a connected sender/receiver pair.
        pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
            let shared = Arc::new(Mutex::new(Inner {
                value: None,
                waker: None,
                sender_alive: true,
                receiver_alive: true,
            }));
            (Sender(Arc::clone(&shared)), Receiver(shared))
        }

        impl<T> Sender<T> {
            /// Delivers `value` to the receiver, waking it if it is
            /// parked on the channel. Returns the value back if the
            /// receiver is already gone.
            pub fn send(self, value: T) -> Result<(), T> {
                let waker = {
                    let mut inner = lock(&self.0);
                    if !inner.receiver_alive {
                        return Err(value);
                    }
                    inner.value = Some(value);
                    inner.waker.take()
                };
                // wake outside the lock: the receiver may poll immediately
                if let Some(waker) = waker {
                    waker.wake();
                }
                Ok(())
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                let waker = {
                    let mut inner = lock(&self.0);
                    inner.sender_alive = false;
                    // a sent value stays deliverable; only an *unsent*
                    // drop needs to wake the receiver into Canceled
                    if inner.value.is_some() {
                        None
                    } else {
                        inner.waker.take()
                    }
                };
                if let Some(waker) = waker {
                    waker.wake();
                }
            }
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                lock(&self.0).receiver_alive = false;
            }
        }

        impl<T> Future for Receiver<T> {
            type Output = Result<T, Canceled>;

            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
                let mut inner = lock(&self.0);
                if let Some(value) = inner.value.take() {
                    return Poll::Ready(Ok(value));
                }
                if !inner.sender_alive {
                    return Poll::Ready(Err(Canceled));
                }
                inner.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }

        impl<T> fmt::Debug for Sender<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_struct("Sender").finish_non_exhaustive()
            }
        }

        impl<T> fmt::Debug for Receiver<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_struct("Receiver").finish_non_exhaustive()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::oneshot;
    use super::executor::block_on;
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(async { 2 + 2 }), 4);
    }

    #[test]
    fn oneshot_same_thread() {
        let (tx, rx) = oneshot::channel();
        tx.send(7u32).unwrap();
        assert_eq!(block_on(rx), Ok(7));
    }

    #[test]
    fn oneshot_cross_thread_wakes_parked_receiver() {
        let (tx, rx) = oneshot::channel();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send("hello").unwrap();
        });
        // the receiver parks on the first poll and must be woken by send
        assert_eq!(block_on(rx), Ok("hello"));
        sender.join().unwrap();
    }

    #[test]
    fn dropped_sender_cancels() {
        let (tx, rx) = oneshot::channel::<u8>();
        drop(tx);
        assert_eq!(block_on(rx), Err(oneshot::Canceled));
    }

    #[test]
    fn dropped_receiver_rejects_send() {
        let (tx, rx) = oneshot::channel();
        drop(rx);
        assert_eq!(tx.send(5u8), Err(5));
    }

    #[test]
    fn value_sent_before_sender_drop_survives() {
        let (tx, rx) = oneshot::channel();
        tx.send(1u8).unwrap();
        // sender already consumed by send; receiver still resolves
        assert_eq!(block_on(rx), Ok(1));
    }

    /// A future pending once, then ready — exercises the waker path even
    /// without a channel.
    struct YieldOnce(bool);

    impl Future for YieldOnce {
        type Output = u8;
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u8> {
            if self.0 {
                Poll::Ready(42)
            } else {
                self.0 = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }

    #[test]
    fn block_on_survives_self_waking_pending() {
        assert_eq!(block_on(YieldOnce(false)), 42);
    }

    #[test]
    fn parker_token_deposited_before_park_is_not_lost() {
        let parker = super::executor::Parker::new();
        parker.unpark();
        parker.park(); // returns immediately: the token was level-triggered
    }

    #[test]
    fn parker_waker_releases_a_parked_thread() {
        let parker = super::executor::Parker::new();
        let waker = parker.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            waker.wake();
        });
        parker.park();
        handle.join().unwrap();
    }
}
