//! Vendored, dependency-free stand-in for the parts of the `proptest` crate
//! this workspace uses: the [`proptest!`] macro, range/tuple/`vec`
//! strategies with [`Strategy::prop_map`], `prop_assert*` / `prop_assume!`,
//! and [`ProptestConfig::with_cases`].
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this shim as a path dependency. It is a straight random-sampling property
//! runner: no shrinking, but fully deterministic — every test derives its
//! generator seed from the test name (FNV-1a) and case index, so failures
//! reproduce exactly. Override the case count globally with the
//! `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; the case is skipped, not failed.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// A generator of random values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A fixed value (proptest's `Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Strategy combinators namespace (mirrors `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }
}

/// Inclusive-exclusive length range for [`prop::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        SizeRange { lo, hi: hi + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// The [`prop::collection::vec`] strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Deterministic per-test seed: FNV-1a over the test path.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Case count: `PROPTEST_CASES` env override, else the config's value.
pub fn resolve_cases(config_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(config_cases)
}

/// Fresh generator for one case of one test.
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    SmallRng::seed_from_u64(seed_for(test_name) ^ ((case as u64) << 32 | 0x9e37))
}

/// Defines property tests: zero or more `#[test] fn name(arg in strategy,
/// ...) { body }` items, optionally preceded by
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __cases = $crate::resolve_cases(__config.cases);
                let __name = concat!(module_path!(), "::", stringify!($name));
                let mut __ran: u32 = 0;
                let mut __attempt: u32 = 0;
                // allow up to 10x rejections before giving up on assumptions
                while __ran < __cases && __attempt < __cases.saturating_mul(10) {
                    let mut __rng = $crate::case_rng(__name, __attempt);
                    __attempt += 1;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => { __ran += 1; }
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {} (reproduce: seed {:#x}): {}",
                                __name, __attempt - 1,
                                $crate::seed_for(__name), msg
                            );
                        }
                    }
                }
                assert!(
                    __ran == __cases,
                    "proptest {}: too many rejected inputs ({} accepted of {} wanted)",
                    __name, __ran, __cases
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Skips the current case unless `cond` holds (input filtering).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// One-stop import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn unit() -> impl Strategy<Value = f64> {
        0.0..=1.0f64
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in unit(), n in 0u32..10) {
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!(n < 10);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn map_applies(x in (0.0..1.0f64).prop_map(|v| v * 2.0)) {
            prop_assert!((0.0..2.0).contains(&x));
        }

        #[test]
        fn tuples_and_assume(pair in (0u32..100, 0u32..100)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert!(pair.0 != pair.1);
        }

        #[test]
        fn eq_assertion(a in 0u64..50) {
            prop_assert_eq!(a + 1, 1 + a);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn config_header_parses(x in 0u8..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(super::seed_for("a::b"), super::seed_for("a::b"));
        assert_ne!(super::seed_for("a::b"), super::seed_for("a::c"));
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failures_panic_with_context() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u8..2) {
                prop_assert!(x > 10, "x = {x}");
            }
        }
        always_fails();
    }
}
