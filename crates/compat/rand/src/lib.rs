//! Vendored, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses: [`rngs::SmallRng`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this shim as a path dependency. [`rngs::SmallRng`] is xoshiro256++ seeded
//! through SplitMix64 — the same generator the real `rand::rngs::SmallRng`
//! uses on 64-bit targets — so statistical quality matches what the
//! simulations were written against. Everything is deterministic per seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator by expanding `state` with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`Range` or `RangeInclusive` over the
    /// common float and integer types).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // next_f64 is in [0, 1): p = 1.0 is always true, p = 0.0 never.
        next_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// The next f64 uniform in `[0, 1)` (53 mantissa bits).
#[inline]
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range sampling machinery (the tiny slice of `rand::distributions`).
pub mod distributions {
    use super::{next_f64, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Draws one sample from `rng`.
        fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
    }

    impl SampleRange<f64> for Range<f64> {
        #[inline]
        fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "gen_range: empty f64 range");
            self.start + (self.end - self.start) * next_f64(rng)
        }
    }

    impl SampleRange<f64> for RangeInclusive<f64> {
        #[inline]
        fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
            let (lo, hi) = self.into_inner();
            assert!(lo <= hi, "gen_range: empty f64 range");
            lo + (hi - lo) * next_f64(rng)
        }
    }

    /// Multiply-shift bounded sampling (Lemire); bias is negligible for the
    /// span sizes simulations use.
    #[inline]
    fn bounded<R: RngCore>(rng: &mut R, span: u64) -> u64 {
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty integer range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(bounded(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "gen_range: empty integer range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // full u64 domain
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(bounded(rng, span) as $t)
                }
            }
        )*};
    }

    int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// The generators themselves.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the same
    /// algorithm the real `rand::rngs::SmallRng` uses on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers (the tiny slice of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&y));
        }
    }

    #[test]
    fn int_ranges_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let i: usize = rng.gen_range(0..10);
            seen[i] = true;
            let j: u32 = rng.gen_range(5..=7);
            assert!((5..=7).contains(&j));
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 appear");
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
