//! Microbenchmarks for the graph substrate: the Table 1 statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use siot_graph::community::label_propagation;
use siot_graph::community::louvain::Louvain;
use siot_graph::generate::social::SocialNetKind;
use siot_graph::metrics::{average_clustering_coefficient, DistanceSummary};

fn bench_metrics(c: &mut Criterion) {
    let g = SocialNetKind::Twitter.generate(42);

    c.bench_function("generate_twitter_network", |b| {
        b.iter(|| SocialNetKind::Twitter.generate(std::hint::black_box(42)))
    });
    c.bench_function("all_pairs_bfs_distance_summary", |b| {
        b.iter(|| DistanceSummary::compute(std::hint::black_box(&g)))
    });
    c.bench_function("average_clustering_coefficient", |b| {
        b.iter(|| average_clustering_coefficient(std::hint::black_box(&g)))
    });
    c.bench_function("louvain_communities", |b| {
        b.iter(|| Louvain::new(42).run(std::hint::black_box(&g)))
    });
    // ablation: Louvain vs label propagation for the Table 1 community row
    c.bench_function("ablation_label_propagation", |b| {
        b.iter(|| label_propagation(std::hint::black_box(&g), 42, 50))
    });
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
