//! Trustee-discovery benchmarks: the three §5.5 methods over the Facebook
//! sub-network.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use siot_graph::generate::social::SocialNetKind;
use siot_sim::tasks::TaskPool;
use siot_sim::{Knowledge, SearchMethod, TrusteeSearch};

fn bench_search(c: &mut Criterion) {
    let g = SocialNetKind::Facebook.generate(42);
    let mut rng = SmallRng::seed_from_u64(42);
    let pool = TaskPool::generate(5, 10, &mut rng);
    let knowledge = Knowledge::seed(&g, &pool, 2, 0.05, &mut rng);
    let search = TrusteeSearch::new(&g, &knowledge, &pool);
    let task = pool.tasks().iter().find(|t| t.len() == 2).expect("pairs exist").id();
    let trustor = siot_sim::AgentId::from(0u32);
    let everyone = |_: siot_sim::AgentId| true;

    for method in SearchMethod::ALL {
        c.bench_function(&format!("search_{}", method.name().to_lowercase()), |b| {
            b.iter(|| {
                search.find(
                    std::hint::black_box(method),
                    std::hint::black_box(trustor),
                    task,
                    &everyone,
                )
            })
        });
    }
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
