//! Microbenchmarks for the core trust arithmetic.

use criterion::{criterion_group, criterion_main, Criterion};
use siot_core::prelude::*;

fn bench_trust_math(c: &mut Criterion) {
    let tasks: Vec<Task> = (0..16)
        .map(|i| {
            Task::uniform(TaskId(i), [CharacteristicId(i % 5), CharacteristicId((i + 1) % 5)])
                .expect("non-empty")
        })
        .collect();
    let experiences: Vec<Experience> =
        tasks.iter().enumerate().map(|(i, t)| Experience::new(t, 0.5 + 0.03 * i as f64)).collect();
    let new_task =
        Task::uniform(TaskId(99), [CharacteristicId(0), CharacteristicId(1), CharacteristicId(2)])
            .expect("non-empty");

    c.bench_function("infer_task_16_experiences", |b| {
        b.iter(|| infer_task(std::hint::black_box(&new_task), std::hint::black_box(&experiences)))
    });

    let tws = [0.9, 0.8, 0.7, 0.85, 0.6];
    c.bench_function("eq7_chain_5_hops", |b| b.iter(|| chain(std::hint::black_box(&tws))));
    // ablation: the traditional product rule on the same chain
    c.bench_function("ablation_traditional_chain_5_hops", |b| {
        b.iter(|| traditional_chain(std::hint::black_box(&tws)))
    });

    let betas = ForgettingFactors::figures();
    let obs = Observation { success_rate: 0.8, gain: 0.7, damage: 0.2, cost: 0.1 };
    c.bench_function("record_update", |b| {
        let mut rec = TrustRecord::neutral();
        b.iter(|| rec.update(std::hint::black_box(&obs), &betas))
    });
    c.bench_function("trustworthiness_eq18", |b| {
        let rec = TrustRecord::with_priors(0.8, 0.7, 0.2, 0.1);
        b.iter(|| std::hint::black_box(&rec).trustworthiness(Normalizer::UNIT))
    });
}

criterion_group!(benches, bench_trust_math);
criterion_main!(benches);
