//! Storage-backend shootout: the `TrustEngine` hot path (batched
//! `observe`) on a 100k+-record workload, per backend.
//!
//! Three cases:
//! * `btree/*` — the deterministic ordered-map default;
//! * `sharded/*` — the lock-sharded hash backend, single writer;
//! * `sharded/concurrent_*` — the sharded backend with four writer threads
//!   folding disjoint slices of the workload through `&TrustEngine`.
//!
//! A read-side case (`known_peers` + per-peer iteration) rides along since
//! trustee search hammers exactly that path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use siot_bench::runner::{backend_workload, replay_workload};
use siot_core::backend::{BTreeBackend, ShardedBackend};
use siot_core::record::ForgettingFactors;
use siot_core::store::TrustEngine;

/// 100_000 observations over 25_000 peers × 4 tasks: every observation
/// lands on a distinct `(peer, task)` key, so the replay creates exactly
/// 100_000 records — the insert-heavy regime of a cold store.
const N_OBS: usize = 100_000;
const N_PEERS: u32 = 25_000;
const N_TASKS: u32 = 4;
const BATCH: usize = 1_024;

fn bench_store_backends(c: &mut Criterion) {
    let workload = backend_workload(N_OBS, N_PEERS, N_TASKS, 42);

    c.bench_function("store_backends/btree/batched_observe_100k", |b| {
        b.iter(|| {
            let engine = replay_workload::<BTreeBackend<u32>>(black_box(&workload), BATCH);
            assert_eq!(engine.record_count(), N_OBS);
            black_box(engine)
        })
    });

    c.bench_function("store_backends/sharded/batched_observe_100k", |b| {
        b.iter(|| {
            let engine = replay_workload::<ShardedBackend<u32>>(black_box(&workload), BATCH);
            assert_eq!(engine.record_count(), N_OBS);
            black_box(engine)
        })
    });

    c.bench_function("store_backends/sharded/concurrent_observe_100k_x4", |b| {
        let betas = ForgettingFactors::figures();
        b.iter(|| {
            let engine: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
            std::thread::scope(|scope| {
                for slice in workload.chunks(N_OBS / 4) {
                    let e = &engine;
                    let betas = &betas;
                    scope.spawn(move || {
                        for batch in slice.chunks(BATCH) {
                            e.observe_batch_shared(batch, betas);
                        }
                    });
                }
            });
            assert_eq!(engine.record_count(), N_OBS);
            black_box(engine)
        })
    });

    // read path: warmed engines, full peer scan
    let warm_btree = replay_workload::<BTreeBackend<u32>>(&workload, BATCH);
    let warm_sharded = replay_workload::<ShardedBackend<u32>>(&workload, BATCH);

    c.bench_function("store_backends/btree/scan_known_peers_25k", |b| {
        b.iter(|| black_box(warm_btree.known_peers().len()))
    });

    c.bench_function("store_backends/sharded/scan_known_peers_25k", |b| {
        b.iter(|| black_box(warm_sharded.known_peers().len()))
    });
}

criterion_group!(benches, bench_store_backends);
criterion_main!(benches);
