//! Storage-backend shootout: the `TrustEngine` hot path (batched
//! `observe`) on 100k- and 1M-record workloads, per backend.
//!
//! Cases:
//! * `btree/*` — the deterministic ordered-map default;
//! * `sharded/*` — the lock-sharded hash backend, single writer;
//! * `sharded/concurrent_*` — the sharded backend with four writer threads
//!   **spawned per batch** folding disjoint slices through `&TrustEngine`
//!   (the naive baseline the ROADMAP flagged: spawn/join dominates);
//! * `sharded/pool_*` — the same four-way fan-out through a persistent
//!   [`ObserverPool`], workers parked between batches.
//!
//! A read-side case (`known_peers` + per-peer iteration) rides along since
//! trustee search hammers exactly that path. The 1M-record configuration
//! answers the ROADMAP's "measure at 1M+ records" item; the shim's
//! `SIOT_BENCH_BUDGET_MS` budget keeps it cheap in CI.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use siot_bench::runner::{backend_workload, replay_workload};
use siot_core::backend::{BTreeBackend, ShardedBackend};
use siot_core::pool::ObserverPool;
use siot_core::record::ForgettingFactors;
use siot_core::store::TrustEngine;
use std::sync::Arc;

/// 100_000 observations over 25_000 peers × 4 tasks: every observation
/// lands on a distinct `(peer, task)` key, so the replay creates exactly
/// 100_000 records — the insert-heavy regime of a cold store.
const N_OBS: usize = 100_000;
const N_PEERS: u32 = 25_000;
const N_TASKS: u32 = 4;
const BATCH: usize = 1_024;
const WRITERS: usize = 4;

/// The 1M-record configuration (250_000 peers × 4 tasks, distinct keys).
const N_OBS_1M: usize = 1_000_000;
const N_PEERS_1M: u32 = 250_000;

fn bench_workload(c: &mut Criterion, label: &str, n_obs: usize, n_peers: u32) {
    let workload = backend_workload(n_obs, n_peers, N_TASKS, 42);

    c.bench_function(&format!("store_backends/btree/batched_observe_{label}"), |b| {
        b.iter(|| {
            let engine = replay_workload::<BTreeBackend<u32>>(black_box(&workload), BATCH);
            assert_eq!(engine.record_count(), n_obs);
            black_box(engine)
        })
    });

    c.bench_function(&format!("store_backends/sharded/batched_observe_{label}"), |b| {
        b.iter(|| {
            let engine = replay_workload::<ShardedBackend<u32>>(black_box(&workload), BATCH);
            assert_eq!(engine.record_count(), n_obs);
            black_box(engine)
        })
    });

    c.bench_function(
        &format!("store_backends/sharded/concurrent_observe_{label}_x{WRITERS}"),
        |b| {
            let betas = ForgettingFactors::figures();
            b.iter(|| {
                let engine: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
                std::thread::scope(|scope| {
                    for slice in workload.chunks(n_obs / WRITERS) {
                        let e = &engine;
                        let betas = &betas;
                        scope.spawn(move || {
                            for batch in slice.chunks(BATCH) {
                                e.observe_batch_shared(batch, betas)
                                    .expect("workload observations are unit-range");
                            }
                        });
                    }
                });
                assert_eq!(engine.record_count(), n_obs);
                black_box(engine)
            })
        },
    );

    c.bench_function(&format!("store_backends/sharded/pool_observe_{label}_x{WRITERS}"), |b| {
        // the pool persists across iterations — that is the point
        let pool: ObserverPool<u32> = ObserverPool::new(WRITERS);
        let betas = ForgettingFactors::figures();
        b.iter(|| {
            let engine = Arc::new(TrustEngine::<u32, ShardedBackend<u32>>::new());
            // each dispatch splits WRITERS ways, so hand the pool
            // WRITERS batches' worth at a time
            for batch in workload.chunks(BATCH * WRITERS) {
                pool.observe_batch(&engine, batch, &betas)
                    .expect("workload observations are unit-range");
            }
            assert_eq!(engine.record_count(), n_obs);
            black_box(Arc::clone(&engine))
        })
    });
}

fn bench_store_backends(c: &mut Criterion) {
    bench_workload(c, "100k", N_OBS, N_PEERS);
    bench_workload(c, "1m", N_OBS_1M, N_PEERS_1M);

    // read path: warmed engines, full peer scan
    let workload = backend_workload(N_OBS, N_PEERS, N_TASKS, 42);
    let warm_btree = replay_workload::<BTreeBackend<u32>>(&workload, BATCH);
    let warm_sharded = replay_workload::<ShardedBackend<u32>>(&workload, BATCH);

    c.bench_function("store_backends/btree/scan_known_peers_25k", |b| {
        b.iter(|| black_box(warm_btree.known_peers().len()))
    });

    c.bench_function("store_backends/sharded/scan_known_peers_25k", |b| {
        b.iter(|| black_box(warm_sharded.known_peers().len()))
    });
}

criterion_group!(benches, bench_store_backends);
criterion_main!(benches);
