//! Storage-backend shootout: the `TrustEngine` hot path (batched
//! `observe`) on 100k- and 1M-record workloads, per backend.
//!
//! Cases:
//! * `btree/*` — the deterministic ordered-map default;
//! * `sharded/*` — the lock-sharded hash backend, single writer;
//! * `sharded/concurrent_*` — the sharded backend with four writer threads
//!   **spawned per batch** folding disjoint contiguous slices through
//!   `&TrustEngine` (the naive baseline the ROADMAP flagged: spawn/join and
//!   shard-lock contention dominate);
//! * `sharded/pool_affine_*_w{W}_s{S}` — the writer-count × shard-count
//!   sweep of the shard-affine [`ObserverPool`] under its default adaptive
//!   dispatch: `W` persistent workers each owning a disjoint set of the
//!   engine's `S` lanes, the whole slate dispatched zero-copy as one `Arc`
//!   batch. No lock contention, no per-slice copies, and bit-identical to
//!   the single-threaded fold;
//! * `sharded/pool_threads_*` — the same pool with worker-thread dispatch
//!   forced, so the trajectory records what `Dispatch::Auto` saves (or
//!   costs) on this host's core count;
//! * `log/batched_observe_*` — the durable [`LogBackend`]: every fold
//!   journaled to an append-only file (fsync off, so the row prices the
//!   frame encode + buffered write, not the disk's sync latency);
//! * `log_writebehind/batched_observe_*` — the [`WriteBehind`] combination:
//!   sharded front absorbing the folds, journal trailing behind;
//! * `log/segmented_commit_*` — the same durable replay across a rotating
//!   1 MiB segment chain: the per-rotation seal + manifest-swap cost over
//!   the single-segment append of `log/batched_observe_*`;
//! * `log/compact_churn_1m` vs `log/compact_full_1m` — compaction on a
//!   1M-record chain after a 10k-observation churn window: the incremental
//!   row folds only the raw (churned) segments, the full row rewrites the
//!   entire state — their gap is what the segmented chain buys;
//! * `log/reopen_100k` — recovery cost: replaying a 100k-record log back
//!   into memory on open (the restart path the persistence suite pins);
//! * `service/group_commit_{onflush,always}_100k` — the service commit
//!   shape of `service/commit_*` against the durable [`LogBackend`], fsync
//!   policy swept: under `always` the actor holds each batch's receipts
//!   until one group-commit `sync_all` covers the whole drain, so the row
//!   must stay within ~3× of `onflush` instead of paying per-frame syncs;
//! * `service/commit_*` — the async facade priced end to end: four client
//!   threads build committed delegation sessions and pipeline them through
//!   `TrustServiceHandle::submit` into the actor's bounded mailbox, which
//!   drains adjacent commits into `commit_batch` passes. The row carries
//!   the full wire cost — session construction, channel hops, oneshot
//!   receipts, usage-log folds — on top of the storage fold, so comparing
//!   it against `sharded/batched_observe_*` prices the facade itself;
//! * `service/sharded_commit_*_s{S}` — the sharded service tier swept over
//!   shard counts: the same four clients, but each pipeline window travels
//!   as **one** vectored `submit_batch` per shard (receipts re-stitched in
//!   caller order), so the per-session channel + oneshot overhead of
//!   `service/commit_*` collapses into one message per shard per window.
//!   `s1` prices the vectored wire shape itself against the single-actor
//!   row; `s2`/`s4` add the partitioned actors;
//! * `service/sharded_query_mix_*` — a serving-shaped mix (90% awaited
//!   `record` reads, 10% commits) through the routing handle: the
//!   query-latency row, since every read is a full round trip to the
//!   owning shard;
//! * `service/remote_commit_*` — the **federated** tier: the same four
//!   clients, but each drives its own loopback TCP connection into a
//!   [`RemoteTrustServer`] fronting a two-shard fleet. Every vectored
//!   window is CRC-framed, socket-crossed, decoded, folded, and its
//!   receipts framed back — so comparing against
//!   `service/sharded_commit_*_s2` prices the wire itself;
//! * `service/remote_query_mix_100k` — the serving-shaped 90/10 mix over
//!   the wire: every point read is a full TCP round trip to the server's
//!   owning shard, the latency row a federated deployment actually feels;
//! * `service/snapshot_query_mix_100k` — the same mix with
//!   `Freshness::Snapshot` reads served off each shard's published
//!   [`ReadSnapshot`](siot_core::service::ReadSnapshot) instead of a
//!   mailbox round trip — what the read-replica tier saves in-process;
//! * `service/snapshot_query_mix_100k_remote` — the replica tier over the
//!   wire: snapshot reads batched into `QueryMany` frames and answered on
//!   the server's reader thread without actor dispatch, closing the gap
//!   between `remote_query_mix_100k` and `sharded_query_mix_100k_s2`;
//! * `service/fleet_commit_*_n2` — the **fault-tolerant** tier: the same
//!   four clients, but their vectored windows travel as
//!   `(session, seq)`-tagged chunks through a [`FleetTrustHandle`] routing
//!   across **two** loopback nodes (each a two-shard fleet behind its own
//!   [`RemoteTrustServer`]), so comparing against
//!   `service/remote_commit_*` prices the routing split plus the
//!   idempotency tagging that makes every window safe to retry;
//! * `service/fleet_failover_commit_100k` — the fleet row under fire: one
//!   node is killed mid-stream and reborn on a new port sharing its dedup
//!   window (`bind_with` + `replace_node`), so the row prices a full
//!   recovery — reconnect backoff, tag resend, server-side receipt replay
//!   — while still landing every commit exactly once.
//!
//! A read-side case (`known_peers` + per-peer iteration) rides along since
//! trustee search hammers exactly that path. The 1M-record configuration
//! answers the ROADMAP's "measure at 1M+ records" item; the shim's
//! `SIOT_BENCH_BUDGET_MS` budget keeps it cheap in CI, and `SIOT_BENCH_JSON`
//! records the machine-readable trajectory (`BENCH_store_backends.json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use siot_bench::runner::{backend_workload, replay_workload};
use siot_core::backend::{BTreeBackend, ShardedBackend, TrustBackend};
use siot_core::context::Context;
use siot_core::delegation::{DelegationOutcome, DelegationRequest};
use siot_core::goal::Goal;
use siot_core::log_backend::{
    FsyncPolicy, LogBackend, LogOptions, WriteBehind, DEFAULT_SEGMENT_BYTES,
};
use siot_core::pool::{Dispatch, ObserverPool};
use siot_core::record::{ForgettingFactors, Observation};
use siot_core::service::{
    block_on, FleetOptions, FleetTrustHandle, Freshness, RemoteTrustServer,
    RemoteTrustServiceHandle, ServiceOptions, ShardedTrustService, TrustService,
};
use siot_core::store::{TrustEngine, TrustStore};
use siot_core::task::{CharacteristicId, Task, TaskId};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// 100_000 observations over 25_000 peers × 4 tasks: every observation
/// lands on a distinct `(peer, task)` key, so the replay creates exactly
/// 100_000 records — the insert-heavy regime of a cold store.
const N_OBS: usize = 100_000;
const N_PEERS: u32 = 25_000;
const N_TASKS: u32 = 4;
const BATCH: usize = 1_024;
const WRITERS: usize = 4;

/// The 1M-record configuration (250_000 peers × 4 tasks, distinct keys).
const N_OBS_1M: usize = 1_000_000;
const N_PEERS_1M: u32 = 250_000;

/// The pool sweep: (writers, shards) — lanes matched to the owner count
/// via `with_shards_for_writers` (4·W), plus an over-sharded 64-lane point.
const POOL_SWEEP: [(usize, usize); 3] = [(2, 8), (4, 16), (4, 64)];

/// Commits each service client keeps in flight before awaiting receipts:
/// deep enough that the actor's drain finds real batches, small enough
/// that receipt memory stays bounded.
const SERVICE_PIPELINE: usize = 1_024;

type Workload = Arc<[(u32, TaskId, Observation)]>;

/// Scratch directory for the durable-backend rows (fresh per iteration —
/// the cost of a cold store filling up, like the in-memory rows).
fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("siot-bench-{tag}-{}", std::process::id()))
}

/// The persistence price without the disk's sync latency: benches measure
/// the journaling hot path (frame encode + buffered write), not fsync.
const NO_FSYNC: LogOptions = LogOptions {
    fsync: FsyncPolicy::Never,
    compact_every: 0,
    segment_bytes: DEFAULT_SEGMENT_BYTES,
};

/// Segmented-chain pricing: 1 MiB segments so the workload actually
/// rotates (≈6 rotations at 100k frames, ≈60 at 1M) — the row carries the
/// per-rotation seal/manifest-swap cost on top of `log/batched_observe_*`.
const SEGMENTED: LogOptions =
    LogOptions { fsync: FsyncPolicy::Never, compact_every: 0, segment_bytes: 1 << 20 };

fn replay_into<B: TrustBackend<u32>>(backend: B, workload: &Workload) -> usize {
    let mut engine = TrustEngine::with_backend(backend);
    let betas = ForgettingFactors::figures();
    for batch in workload.chunks(BATCH) {
        engine.observe_batch(batch, &betas).expect("workload observations are unit-range");
    }
    engine.record_count()
}

fn bench_workload(c: &mut Criterion, label: &str, n_obs: usize, n_peers: u32) {
    let workload: Workload = backend_workload(n_obs, n_peers, N_TASKS, 42).into();

    c.bench_function(&format!("store_backends/btree/batched_observe_{label}"), |b| {
        b.iter(|| {
            let engine = replay_workload::<BTreeBackend<u32>>(black_box(&workload), BATCH);
            assert_eq!(engine.record_count(), n_obs);
            black_box(engine)
        })
    });

    c.bench_function(&format!("store_backends/sharded/batched_observe_{label}"), |b| {
        b.iter(|| {
            let engine = replay_workload::<ShardedBackend<u32>>(black_box(&workload), BATCH);
            assert_eq!(engine.record_count(), n_obs);
            black_box(engine)
        })
    });

    c.bench_function(
        &format!("store_backends/sharded/concurrent_observe_{label}_x{WRITERS}"),
        |b| {
            let betas = ForgettingFactors::figures();
            b.iter(|| {
                let engine: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
                std::thread::scope(|scope| {
                    for slice in workload.chunks(n_obs / WRITERS) {
                        let e = &engine;
                        let betas = &betas;
                        scope.spawn(move || {
                            for batch in slice.chunks(BATCH) {
                                e.observe_batch_shared(batch, betas)
                                    .expect("workload observations are unit-range");
                            }
                        });
                    }
                });
                assert_eq!(engine.record_count(), n_obs);
                black_box(engine)
            })
        },
    );

    for (writers, shards) in POOL_SWEEP {
        // the pool persists across iterations — that is the point; each
        // iteration dispatches the whole slate as one shared Arc batch
        let pool: ObserverPool<u32> = ObserverPool::new(writers);
        let betas = ForgettingFactors::figures();
        c.bench_function(
            &format!("store_backends/sharded/pool_affine_{label}_w{writers}_s{shards}"),
            |b| {
                b.iter(|| {
                    let engine = Arc::new(TrustEngine::with_backend(
                        ShardedBackend::<u32>::with_shards(shards),
                    ));
                    pool.observe_batch_arc(&engine, Arc::clone(&workload), &betas)
                        .expect("workload observations are unit-range");
                    assert_eq!(engine.record_count(), n_obs);
                    black_box(engine)
                })
            },
        );
    }

    // durable backends: same workload, every fold journaled to disk
    let log_dir = bench_dir(&format!("log-{label}"));
    c.bench_function(&format!("store_backends/log/batched_observe_{label}"), |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&log_dir);
            let backend =
                LogBackend::<u32>::open_with(&log_dir, NO_FSYNC).expect("bench dir opens");
            let count = replay_into(backend, black_box(&workload));
            assert_eq!(count, n_obs);
            black_box(count)
        })
    });
    let _ = std::fs::remove_dir_all(&log_dir);

    // the same durable replay across a rotating segment chain: what the
    // bounded-segment format costs over the single-file append above
    let seg_dir = bench_dir(&format!("seg-{label}"));
    c.bench_function(&format!("store_backends/log/segmented_commit_{label}"), |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&seg_dir);
            let backend =
                LogBackend::<u32>::open_with(&seg_dir, SEGMENTED).expect("bench dir opens");
            let count = replay_into(backend, black_box(&workload));
            assert_eq!(count, n_obs);
            black_box(count)
        })
    });
    let _ = std::fs::remove_dir_all(&seg_dir);

    let wb_dir = bench_dir(&format!("wb-{label}"));
    c.bench_function(&format!("store_backends/log_writebehind/batched_observe_{label}"), |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&wb_dir);
            let backend =
                WriteBehind::<u32>::open_with(&wb_dir, NO_FSYNC, ShardedBackend::default())
                    .expect("bench dir opens");
            let count = replay_into(backend, black_box(&workload));
            assert_eq!(count, n_obs);
            black_box(count)
        })
    });
    let _ = std::fs::remove_dir_all(&wb_dir);

    // the service facade end to end: sessions built client-side, pipelined
    // through handles, drained into commit_batch passes by the actor
    c.bench_function(&format!("store_backends/service/commit_{label}"), |b| {
        let tasks: Vec<Task> = (0..N_TASKS)
            .map(|t| Task::uniform(TaskId(t), [CharacteristicId(0)]).expect("non-empty"))
            .collect();
        b.iter(|| {
            let service = TrustService::spawn(
                TrustEngine::with_backend(ShardedBackend::<u32>::default()),
                ServiceOptions { mailbox: 4 * SERVICE_PIPELINE, ..ServiceOptions::default() },
            );
            std::thread::scope(|scope| {
                for slice in workload.chunks(n_obs / WRITERS) {
                    let handle = service.handle();
                    let tasks = &tasks;
                    scope.spawn(move || {
                        let scratch: TrustStore<u32> = TrustStore::new();
                        let mut acks = Vec::with_capacity(SERVICE_PIPELINE);
                        for window in slice.chunks(SERVICE_PIPELINE) {
                            for &(peer, tid, obs) in window {
                                let request = DelegationRequest::new(
                                    peer,
                                    &tasks[tid.0 as usize],
                                    Goal::ANY,
                                    Context::amicable(tid),
                                )
                                .committed();
                                let completed = request
                                    .activate(&scratch)
                                    .finish(DelegationOutcome::observed(obs))
                                    .expect("workload observations are unit-range");
                                acks.push(handle.submit(completed));
                            }
                            for ack in acks.drain(..) {
                                block_on(ack).expect("service alive for the whole batch");
                            }
                        }
                    });
                }
            });
            let engine = service.shutdown().expect("clean shutdown");
            assert_eq!(engine.record_count(), n_obs);
            black_box(engine.record_count())
        })
    });

    // the sharded tier: the same four clients, but every pipeline window
    // travels as one vectored submit_batch (per-shard sub-batches, receipts
    // re-stitched in caller order) instead of a per-session oneshot each
    for shards in [1usize, 2, 4] {
        c.bench_function(
            &format!("store_backends/service/sharded_commit_{label}_s{shards}"),
            |b| {
                let tasks: Vec<Task> = (0..N_TASKS)
                    .map(|t| Task::uniform(TaskId(t), [CharacteristicId(0)]).expect("non-empty"))
                    .collect();
                b.iter(|| {
                    let service = ShardedTrustService::spawn_sharded(
                        shards,
                        ServiceOptions {
                            mailbox: 4 * SERVICE_PIPELINE,
                            ..ServiceOptions::default()
                        },
                        |_| TrustEngine::with_backend(ShardedBackend::<u32>::default()),
                    );
                    std::thread::scope(|scope| {
                        for slice in workload.chunks(n_obs / WRITERS) {
                            let handle = service.handle();
                            let tasks = &tasks;
                            scope.spawn(move || {
                                let scratch: TrustStore<u32> = TrustStore::new();
                                for window in slice.chunks(SERVICE_PIPELINE) {
                                    let batch: Vec<_> = window
                                        .iter()
                                        .map(|&(peer, tid, obs)| {
                                            DelegationRequest::new(
                                                peer,
                                                &tasks[tid.0 as usize],
                                                Goal::ANY,
                                                Context::amicable(tid),
                                            )
                                            .committed()
                                            .activate(&scratch)
                                            .finish(DelegationOutcome::observed(obs))
                                            .expect("workload observations are unit-range")
                                        })
                                        .collect();
                                    let receipts = block_on(handle.submit_batch(batch))
                                        .expect("fleet alive for the whole batch");
                                    assert_eq!(receipts.len(), window.len());
                                }
                            });
                        }
                    });
                    let engines = service.shutdown().expect("clean shutdown");
                    let total: usize = engines.iter().map(|e| e.record_count()).sum();
                    assert_eq!(total, n_obs);
                    black_box(total)
                })
            },
        );
    }

    // the federated tier: the same four clients, each over its own
    // loopback TCP connection into a RemoteTrustServer fronting a
    // two-shard fleet — the sharded_commit_*_s2 shape plus the wire
    c.bench_function(&format!("store_backends/service/remote_commit_{label}"), |b| {
        let tasks: Vec<Task> = (0..N_TASKS)
            .map(|t| Task::uniform(TaskId(t), [CharacteristicId(0)]).expect("non-empty"))
            .collect();
        b.iter(|| {
            let service = ShardedTrustService::spawn_sharded(
                2,
                ServiceOptions { mailbox: 4 * SERVICE_PIPELINE, ..ServiceOptions::default() },
                |_| TrustEngine::with_backend(ShardedBackend::<u32>::default()),
            );
            let server =
                RemoteTrustServer::bind("127.0.0.1:0", service.handle()).expect("loopback bind");
            let addr = server.local_addr();
            std::thread::scope(|scope| {
                for slice in workload.chunks(n_obs / WRITERS) {
                    let tasks = &tasks;
                    scope.spawn(move || {
                        let remote = RemoteTrustServiceHandle::<u32>::connect(addr)
                            .expect("loopback connect");
                        let scratch: TrustStore<u32> = TrustStore::new();
                        // two windows in flight: submits are eager (the
                        // frame is on the socket before the future is
                        // polled), so building window N overlaps the
                        // server folding window N-1 — the pipelining the
                        // wire exists for
                        let mut inflight = std::collections::VecDeque::new();
                        for window in slice.chunks(SERVICE_PIPELINE) {
                            let batch: Vec<_> = window
                                .iter()
                                .map(|&(peer, tid, obs)| {
                                    DelegationRequest::new(
                                        peer,
                                        &tasks[tid.0 as usize],
                                        Goal::ANY,
                                        Context::amicable(tid),
                                    )
                                    .committed()
                                    .activate(&scratch)
                                    .finish(DelegationOutcome::observed(obs))
                                    .expect("workload observations are unit-range")
                                })
                                .collect();
                            inflight.push_back((window.len(), remote.submit_batch(batch)));
                            if inflight.len() > 2 {
                                let (len, pending) = inflight.pop_front().expect("non-empty");
                                let receipts =
                                    block_on(pending).expect("server alive for the whole batch");
                                assert_eq!(receipts.len(), len);
                            }
                        }
                        for (len, pending) in inflight {
                            let receipts =
                                block_on(pending).expect("server alive for the whole batch");
                            assert_eq!(receipts.len(), len);
                        }
                    });
                }
            });
            server.shutdown();
            let engines = service.shutdown().expect("clean shutdown");
            let total: usize = engines.iter().map(|e| e.record_count()).sum();
            assert_eq!(total, n_obs);
            black_box(total)
        })
    });

    // the fault-tolerant tier: the same four clients, but every vectored
    // window travels as a (session, seq)-tagged chunk through a fleet
    // handle routing across TWO loopback nodes — remote_commit's shape
    // plus the routing split and the idempotency tagging
    c.bench_function(&format!("store_backends/service/fleet_commit_{label}_n2"), |b| {
        let tasks: Vec<Task> = (0..N_TASKS)
            .map(|t| Task::uniform(TaskId(t), [CharacteristicId(0)]).expect("non-empty"))
            .collect();
        b.iter(|| {
            let services: Vec<_> = (0..2)
                .map(|_| {
                    ShardedTrustService::spawn_sharded(
                        2,
                        ServiceOptions {
                            mailbox: 4 * SERVICE_PIPELINE,
                            ..ServiceOptions::default()
                        },
                        |_| TrustEngine::with_backend(ShardedBackend::<u32>::default()),
                    )
                })
                .collect();
            let servers: Vec<_> = services
                .iter()
                .map(|s| RemoteTrustServer::bind("127.0.0.1:0", s.handle()).expect("loopback bind"))
                .collect();
            let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
            let fleet = FleetTrustHandle::<u32>::connect(addrs).expect("both nodes reachable");
            std::thread::scope(|scope| {
                for slice in workload.chunks(n_obs / WRITERS) {
                    let fleet = fleet.clone();
                    let tasks = &tasks;
                    scope.spawn(move || {
                        let scratch: TrustStore<u32> = TrustStore::new();
                        let mut inflight = std::collections::VecDeque::new();
                        for window in slice.chunks(SERVICE_PIPELINE) {
                            let batch: Vec<_> = window
                                .iter()
                                .map(|&(peer, tid, obs)| {
                                    DelegationRequest::new(
                                        peer,
                                        &tasks[tid.0 as usize],
                                        Goal::ANY,
                                        Context::amicable(tid),
                                    )
                                    .committed()
                                    .activate(&scratch)
                                    .finish(DelegationOutcome::observed(obs))
                                    .expect("workload observations are unit-range")
                                })
                                .collect();
                            inflight.push_back((window.len(), fleet.submit_batch(batch)));
                            if inflight.len() > 2 {
                                let (len, pending) = inflight.pop_front().expect("non-empty");
                                let receipts =
                                    block_on(pending).expect("fleet alive for the whole batch");
                                assert_eq!(receipts.len(), len);
                            }
                        }
                        for (len, pending) in inflight {
                            let receipts =
                                block_on(pending).expect("fleet alive for the whole batch");
                            assert_eq!(receipts.len(), len);
                        }
                    });
                }
            });
            drop(fleet);
            for server in servers {
                server.shutdown();
            }
            let total: usize = services
                .into_iter()
                .map(|s| {
                    let engines = s.shutdown().expect("clean shutdown");
                    engines.iter().map(|e| e.record_count()).sum::<usize>()
                })
                .sum();
            assert_eq!(total, n_obs);
            black_box(total)
        })
    });

    // forced worker-thread dispatch, recorded so the trajectory shows what
    // Auto saves (or costs) on this host's core count
    let pool: ObserverPool<u32> = ObserverPool::with_dispatch(WRITERS, Dispatch::Workers);
    let betas = ForgettingFactors::figures();
    c.bench_function(&format!("store_backends/sharded/pool_threads_{label}_w{WRITERS}_s16"), |b| {
        b.iter(|| {
            let engine = Arc::new(TrustEngine::with_backend(
                ShardedBackend::<u32>::with_shards_for_writers(WRITERS),
            ));
            pool.observe_batch_arc(&engine, Arc::clone(&workload), &betas)
                .expect("workload observations are unit-range");
            assert_eq!(engine.record_count(), n_obs);
            black_box(engine)
        })
    });
}

fn bench_store_backends(c: &mut Criterion) {
    bench_workload(c, "100k", N_OBS, N_PEERS);
    bench_workload(c, "1m", N_OBS_1M, N_PEERS_1M);

    // read path: warmed engines, full peer scan
    let workload = backend_workload(N_OBS, N_PEERS, N_TASKS, 42);
    let warm_btree = replay_workload::<BTreeBackend<u32>>(&workload, BATCH);
    let warm_sharded = replay_workload::<ShardedBackend<u32>>(&workload, BATCH);

    c.bench_function("store_backends/btree/scan_known_peers_25k", |b| {
        b.iter(|| black_box(warm_btree.known_peers().len()))
    });

    c.bench_function("store_backends/sharded/scan_known_peers_25k", |b| {
        b.iter(|| black_box(warm_sharded.known_peers().len()))
    });

    // serving-shaped mix through the routing handle: 90% awaited point
    // reads, 10% commits, against a pre-warmed two-shard fleet — the
    // query-latency row, since every read is a full round trip to the
    // owning shard
    {
        let tasks: Vec<Task> = (0..N_TASKS)
            .map(|t| Task::uniform(TaskId(t), [CharacteristicId(0)]).expect("non-empty"))
            .collect();
        let service = ShardedTrustService::spawn_sharded(
            2,
            ServiceOptions { mailbox: 4 * SERVICE_PIPELINE, ..ServiceOptions::default() },
            |_| TrustEngine::with_backend(ShardedBackend::<u32>::default()),
        );
        let handle = service.handle();
        let scratch: TrustStore<u32> = TrustStore::new();
        let session = |&(peer, tid, obs): &(u32, TaskId, Observation)| {
            DelegationRequest::new(peer, &tasks[tid.0 as usize], Goal::ANY, Context::amicable(tid))
                .committed()
                .activate(&scratch)
                .finish(DelegationOutcome::observed(obs))
                .expect("workload observations are unit-range")
        };
        // warm every key so the reads hit real records
        for window in workload.chunks(SERVICE_PIPELINE) {
            let batch: Vec<_> = window.iter().map(&session).collect();
            block_on(handle.submit_batch(batch)).expect("fleet alive while warming");
        }
        c.bench_function("store_backends/service/sharded_query_mix_100k_s2", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for (i, entry) in workload.iter().enumerate() {
                    if i % 10 == 0 {
                        block_on(handle.submit(session(entry))).expect("fleet alive");
                    } else {
                        let record =
                            block_on(handle.record(entry.0, entry.1)).expect("fleet alive");
                        hits += usize::from(record.is_some());
                    }
                }
                assert_eq!(hits, workload.len() - workload.len() / 10);
                black_box(hits)
            })
        });

        // the same mix with snapshot-freshness reads: each point read is
        // answered off the owning shard's published `ReadSnapshot` without
        // a mailbox round trip (awaited commits publish before acking, so
        // the snapshots are never stale here even at bound 0)
        c.bench_function("store_backends/service/snapshot_query_mix_100k", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for (i, entry) in workload.iter().enumerate() {
                    if i % 10 == 0 {
                        block_on(handle.submit(session(entry))).expect("fleet alive");
                    } else {
                        let record =
                            block_on(handle.record_with(entry.0, entry.1, Freshness::snapshot(0)))
                                .expect("fleet alive");
                        hits += usize::from(record.is_some());
                    }
                }
                assert_eq!(hits, workload.len() - workload.len() / 10);
                black_box(hits)
            })
        });

        // the same 90/10 mix over the wire: a loopback server fronting the
        // warmed fleet, every point read a full TCP round trip
        let server =
            RemoteTrustServer::bind("127.0.0.1:0", service.handle()).expect("loopback bind");
        let remote = RemoteTrustServiceHandle::<u32>::connect(server.local_addr())
            .expect("loopback connect");
        c.bench_function("store_backends/service/remote_query_mix_100k", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for (i, entry) in workload.iter().enumerate() {
                    if i % 10 == 0 {
                        block_on(remote.submit(session(entry))).expect("server alive");
                    } else {
                        let record =
                            block_on(remote.record(entry.0, entry.1)).expect("server alive");
                        hits += usize::from(record.is_some());
                    }
                }
                assert_eq!(hits, workload.len() - workload.len() / 10);
                black_box(hits)
            })
        });
        // the remote mix on the replica tier: snapshot-freshness reads
        // batched into `QueryMany` frames (one frame per pipeline window,
        // answered off published snapshots on the server's reader thread)
        // while commits stay awaited round trips — this is the row the
        // read tier exists for, closing the remote/in-process read gap
        c.bench_function("store_backends/service/snapshot_query_mix_100k_remote", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                let mut reads: Vec<(u32, TaskId)> = Vec::with_capacity(SERVICE_PIPELINE);
                for (i, entry) in workload.iter().enumerate() {
                    if i % 10 == 0 {
                        block_on(remote.submit(session(entry))).expect("server alive");
                    } else {
                        reads.push((entry.0, entry.1));
                        if reads.len() == SERVICE_PIPELINE {
                            let got =
                                block_on(remote.record_many(
                                    std::mem::take(&mut reads),
                                    Freshness::snapshot(0),
                                ))
                                .expect("server alive");
                            hits += got.iter().filter(|r| r.is_some()).count();
                        }
                    }
                }
                let got = block_on(remote.record_many(reads, Freshness::snapshot(0)))
                    .expect("server alive");
                hits += got.iter().filter(|r| r.is_some()).count();
                assert_eq!(hits, workload.len() - workload.len() / 10);
                black_box(hits)
            })
        });
        drop(remote);
        server.shutdown();
        drop(handle);
        service.shutdown().expect("clean shutdown");
    }

    // the fleet row under fire: kill node 1 mid-stream, rebind it on a new
    // port sharing the SAME dedup window, and point the fleet at the
    // replacement — every tagged window retries across the restart and the
    // server replays what it already folded, so the total still lands
    // exactly once
    {
        let tasks: Vec<Task> = (0..N_TASKS)
            .map(|t| Task::uniform(TaskId(t), [CharacteristicId(0)]).expect("non-empty"))
            .collect();
        c.bench_function("store_backends/service/fleet_failover_commit_100k", |b| {
            b.iter(|| {
                let services: Vec<_> = (0..2)
                    .map(|_| {
                        ShardedTrustService::spawn_sharded(
                            2,
                            ServiceOptions {
                                mailbox: 4 * SERVICE_PIPELINE,
                                ..ServiceOptions::default()
                            },
                            |_| TrustEngine::with_backend(ShardedBackend::<u32>::default()),
                        )
                    })
                    .collect();
                let mut servers: Vec<_> = services
                    .iter()
                    .map(|s| {
                        RemoteTrustServer::bind("127.0.0.1:0", s.handle()).expect("loopback bind")
                    })
                    .collect();
                let addrs: Vec<String> =
                    servers.iter().map(|s| s.local_addr().to_string()).collect();
                let fleet = FleetTrustHandle::<u32>::connect_opts(
                    addrs,
                    FleetOptions {
                        backoff_base: Duration::from_millis(2),
                        backoff_cap: Duration::from_millis(50),
                        ..FleetOptions::default()
                    },
                )
                .expect("both nodes reachable");
                let victim = servers.pop().expect("two servers");
                let endpoint = services[1].handle();
                let killer = {
                    let fleet = fleet.clone();
                    std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_millis(2));
                        let window = victim.dedup_window();
                        victim.shutdown();
                        let reborn = RemoteTrustServer::bind_with("127.0.0.1:0", endpoint, window)
                            .expect("fresh loopback port");
                        fleet.replace_node(1, reborn.local_addr().to_string());
                        reborn
                    })
                };
                std::thread::scope(|scope| {
                    for slice in workload.chunks(N_OBS / WRITERS) {
                        let fleet = fleet.clone();
                        let tasks = &tasks;
                        scope.spawn(move || {
                            let scratch: TrustStore<u32> = TrustStore::new();
                            let mut inflight = std::collections::VecDeque::new();
                            for window in slice.chunks(SERVICE_PIPELINE) {
                                let batch: Vec<_> = window
                                    .iter()
                                    .map(|&(peer, tid, obs)| {
                                        DelegationRequest::new(
                                            peer,
                                            &tasks[tid.0 as usize],
                                            Goal::ANY,
                                            Context::amicable(tid),
                                        )
                                        .committed()
                                        .activate(&scratch)
                                        .finish(DelegationOutcome::observed(obs))
                                        .expect("workload observations are unit-range")
                                    })
                                    .collect();
                                inflight.push_back((window.len(), fleet.submit_batch(batch)));
                                if inflight.len() > 2 {
                                    let (len, pending) = inflight.pop_front().expect("non-empty");
                                    let receipts = block_on(pending)
                                        .expect("tagged batches retry across the restart");
                                    assert_eq!(receipts.len(), len);
                                }
                            }
                            for (len, pending) in inflight {
                                let receipts = block_on(pending)
                                    .expect("tagged batches retry across the restart");
                                assert_eq!(receipts.len(), len);
                            }
                        });
                    }
                });
                let reborn = killer.join().expect("killer thread");
                drop(fleet);
                reborn.shutdown();
                for server in servers {
                    server.shutdown();
                }
                let total: usize = services
                    .into_iter()
                    .map(|s| {
                        let engines = s.shutdown().expect("clean shutdown");
                        engines.iter().map(|e| e.record_count()).sum::<usize>()
                    })
                    .sum();
                assert_eq!(total, N_OBS);
                black_box(total)
            })
        });
    }

    // the group-commit seam priced end to end: the same four clients as
    // service/commit_100k, but against the durable LogBackend with the
    // fsync policy swept — `always` must stay within ~3× of `onflush`,
    // since one sync_all covers each drained mailbox batch (and holds its
    // receipts) rather than syncing every frame
    for (tag, fsync) in [("onflush", FsyncPolicy::OnFlush), ("always", FsyncPolicy::Always)] {
        let tasks: Vec<Task> = (0..N_TASKS)
            .map(|t| Task::uniform(TaskId(t), [CharacteristicId(0)]).expect("non-empty"))
            .collect();
        let gc_dir = bench_dir(&format!("gc-{tag}"));
        c.bench_function(&format!("store_backends/service/group_commit_{tag}_100k"), |b| {
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&gc_dir);
                let engine: TrustEngine<u32, LogBackend<u32>> = TrustEngine::open_with(
                    &gc_dir,
                    LogOptions { fsync, compact_every: 0, ..LogOptions::default() },
                )
                .expect("bench dir opens");
                let service = TrustService::spawn(
                    engine,
                    ServiceOptions { mailbox: 4 * SERVICE_PIPELINE, ..ServiceOptions::default() },
                );
                std::thread::scope(|scope| {
                    for slice in workload.chunks(N_OBS / WRITERS) {
                        let handle = service.handle();
                        let tasks = &tasks;
                        scope.spawn(move || {
                            let scratch: TrustStore<u32> = TrustStore::new();
                            let mut acks = Vec::with_capacity(SERVICE_PIPELINE);
                            for window in slice.chunks(SERVICE_PIPELINE) {
                                for &(peer, tid, obs) in window {
                                    let request = DelegationRequest::new(
                                        peer,
                                        &tasks[tid.0 as usize],
                                        Goal::ANY,
                                        Context::amicable(tid),
                                    )
                                    .committed();
                                    let completed = request
                                        .activate(&scratch)
                                        .finish(DelegationOutcome::observed(obs))
                                        .expect("workload observations are unit-range");
                                    acks.push(handle.submit(completed));
                                }
                                for ack in acks.drain(..) {
                                    block_on(ack).expect("service alive for the whole batch");
                                }
                            }
                        });
                    }
                });
                let engine = service.shutdown().expect("clean shutdown");
                assert_eq!(engine.record_count(), N_OBS);
                black_box(engine.record_count())
            })
        });
        let _ = std::fs::remove_dir_all(&gc_dir);
    }

    // churn-proportional compaction on a big store: a 1M-record chain is
    // folded once into its compacted prefix; each iteration then
    // re-observes a 10k hot set and compacts. The incremental row's cost
    // tracks the churn window, the full row's the 1M records — their gap
    // is what the segmented chain buys
    {
        let workload_1m = backend_workload(N_OBS_1M, N_PEERS_1M, N_TASKS, 42);
        let churn_dir = bench_dir("churn");
        let _ = std::fs::remove_dir_all(&churn_dir);
        let backend = LogBackend::<u32>::open_with(&churn_dir, NO_FSYNC).expect("bench dir opens");
        let mut engine = TrustEngine::with_backend(backend);
        let betas = ForgettingFactors::figures();
        for batch in workload_1m.chunks(BATCH) {
            engine.observe_batch(batch, &betas).expect("workload observations are unit-range");
        }
        engine.compact().expect("initial full fold");
        assert_eq!(engine.record_count(), N_OBS_1M);
        let hot = &workload_1m[..10_000];
        c.bench_function("store_backends/log/compact_churn_1m", |b| {
            b.iter(|| {
                for batch in hot.chunks(BATCH) {
                    engine
                        .observe_batch(batch, &betas)
                        .expect("workload observations are unit-range");
                }
                engine.compact_churned().expect("incremental compaction succeeds");
                black_box(engine.compacted_segments())
            })
        });
        c.bench_function("store_backends/log/compact_full_1m", |b| {
            b.iter(|| {
                for batch in hot.chunks(BATCH) {
                    engine
                        .observe_batch(batch, &betas)
                        .expect("workload observations are unit-range");
                }
                engine.compact().expect("full compaction succeeds");
                black_box(engine.segments())
            })
        });
        drop(engine);
        let _ = std::fs::remove_dir_all(&churn_dir);
    }

    // recovery cost: replay a 100k-record log back into memory on open
    let reopen_dir = bench_dir("reopen");
    let _ = std::fs::remove_dir_all(&reopen_dir);
    {
        let backend = LogBackend::<u32>::open_with(&reopen_dir, NO_FSYNC).expect("bench dir opens");
        let workload: Workload = workload.clone().into();
        assert_eq!(replay_into(backend, &workload), N_OBS);
    }
    c.bench_function("store_backends/log/reopen_100k", |b| {
        b.iter(|| {
            let backend = LogBackend::<u32>::open(&reopen_dir).expect("warm log reopens");
            assert_eq!(backend.len(), N_OBS);
            black_box(backend.len())
        })
    });
    let _ = std::fs::remove_dir_all(&reopen_dir);
}

criterion_group!(benches, bench_store_backends);
criterion_main!(benches);
