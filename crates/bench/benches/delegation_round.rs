//! Scenario-level benchmarks: one profit iteration batch and one mutuality
//! run.

use criterion::{criterion_group, criterion_main, Criterion};
use siot_graph::generate::social::SocialNetKind;
use siot_sim::scenario::mutuality::{self, MutualityConfig};
use siot_sim::scenario::profit::{self, ProfitConfig, Strategy};

fn bench_scenarios(c: &mut Criterion) {
    let g = SocialNetKind::Twitter.generate(42);

    c.bench_function("profit_100_iterations", |b| {
        let cfg = ProfitConfig { iterations: 100, ..Default::default() };
        b.iter(|| profit::run(std::hint::black_box(&g), Strategy::NetProfit, &cfg))
    });

    c.bench_function("mutuality_run", |b| {
        let cfg = MutualityConfig { theta: 0.3, requests_per_trustor: 3, ..Default::default() };
        b.iter(|| mutuality::run(std::hint::black_box(&g), &cfg))
    });
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
