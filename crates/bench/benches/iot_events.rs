//! Discrete-event engine throughput: a full small testbed experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use siot_iot::experiment::fragments::{run, FragmentsConfig};
use siot_iot::experiment::inference::{run as run_inf, InferenceConfig};

fn bench_iot(c: &mut Criterion) {
    c.bench_function("testbed_fragments_10_rounds", |b| {
        let cfg = FragmentsConfig { rounds: 10, ..Default::default() };
        b.iter(|| run(std::hint::black_box(&cfg)))
    });
    c.bench_function("testbed_inference_5_runs", |b| {
        let cfg = InferenceConfig { runs: 5, seed: 42 };
        b.iter(|| run_inf(std::hint::black_box(&cfg)))
    });
}

criterion_group!(benches, bench_iot);
criterion_main!(benches);
