//! Behavioural ablations of the design choices called out in DESIGN.md §7:
//! what the paper's ingredients buy, each measured by swapping one piece
//! for its baseline.

use siot_bench::fmt::{f2, pct, Table};
use siot_bench::runner::seed_from_env;
use siot_core::environment::{cannikin, mean_env, EnvIndicator};
use siot_core::prelude::*;
use siot_graph::community::label_propagation;
use siot_graph::community::louvain::Louvain;
use siot_graph::generate::social::SocialNetKind;
use siot_graph::metrics::modularity;
use siot_sim::scenario::mutuality::{self, MutualityConfig};
use siot_sim::scenario::transitivity::{run, TransitivityConfig};
use siot_sim::SearchMethod;

fn main() {
    let seed = seed_from_env();
    eq7_vs_product();
    inference_vs_whole_task();
    cannikin_vs_mean();
    louvain_vs_label_prop(seed);
    transitivity_methods(seed);
    theta_sweep(seed);
}

/// Eq. 7 keeps the mistrust-agreement term the product rule drops.
fn eq7_vs_product() {
    let mut t = Table::new(
        "Ablation: Eq. 7 two-hop combiner vs Eq. 5 product",
        &["link A", "link B", "Eq. 7", "product", "difference"],
    );
    for (a, b) in [(0.9, 0.9), (0.9, 0.5), (0.5, 0.5), (0.2, 0.8), (0.2, 0.2)] {
        let eq7 = two_hop(a, b);
        let product = traditional_chain(&[a, b]);
        t.row(&[f2(a), f2(b), f2(eq7), f2(product), f2(eq7 - product)]);
    }
    t.print();
    println!("agreeing mistrust (0.2, 0.2) is information under Eq. 7, noise under the product\n");
}

/// Characteristic-level inference vs refusing unseen task types.
fn inference_vs_whole_task() {
    let gps = Task::uniform(TaskId(0), [CharacteristicId(0)]).expect("non-empty");
    let img = Task::uniform(TaskId(1), [CharacteristicId(1)]).expect("non-empty");
    let exp = [Experience::new(&gps, 0.9), Experience::new(&img, 0.7)];
    let traffic =
        Task::uniform(TaskId(2), [CharacteristicId(0), CharacteristicId(1)]).expect("non-empty");
    let mut t = Table::new(
        "Ablation: characteristic inference vs whole-task records",
        &["model", "trust toward unseen task"],
    );
    t.row(&["whole-task (no transfer)".into(), "unknown (delegation refused)".into()]);
    t.row(&[
        "characteristic-based (Eq. 4)".into(),
        f2(infer_task(&traffic, &exp).expect("covered")),
    ]);
    t.print();
    println!();
}

/// Cannikin (min) vs mean environment aggregation under one weak relay.
fn cannikin_vs_mean() {
    let envs = [
        EnvIndicator::saturating(1.0),
        EnvIndicator::saturating(1.0),
        EnvIndicator::saturating(0.25),
    ];
    let observed = 0.2; // a competent (0.8) trustee throttled by the weak relay
    let mut t = Table::new(
        "Ablation: Cannikin (min) vs mean environment aggregation (Eq. 29)",
        &["aggregation", "indicator", "corrected estimate", "true competence"],
    );
    for (name, agg) in [("cannikin", cannikin(&envs)), ("mean", mean_env(&envs))] {
        let corrected = (observed / agg.value()).clamp(0.0, 1.0);
        t.row(&[name.into(), f2(agg.value()), f2(corrected), f2(0.8)]);
    }
    t.print();
    println!("the worst link dominates the outcome, so min[·] reconstructs competence; mean under-credits\n");
}

/// Community detection choice behind the Table 1 rows.
fn louvain_vs_label_prop(seed: u64) {
    let mut t = Table::new(
        "Ablation: Louvain vs label propagation (Table 1 communities)",
        &["network", "louvain Q", "louvain #", "label-prop Q", "label-prop #"],
    );
    for kind in SocialNetKind::ALL {
        let g = kind.generate(seed);
        let lv = Louvain::new(seed).run(&g);
        let lp = label_propagation(&g, seed, 100);
        let lp_q = modularity(&g, &lp);
        let lp_count = lp.iter().copied().max().map_or(0, |m| m as usize + 1);
        t.row(&[
            kind.name().into(),
            f2(lv.modularity),
            lv.community_count().to_string(),
            f2(lp_q),
            lp_count.to_string(),
        ]);
    }
    t.print();
    println!();
}

/// Extension beyond Fig. 7: a fine θ sweep exposing the full
/// abuse-vs-availability trade-off curve of the reverse evaluation.
fn theta_sweep(seed: u64) {
    let g = SocialNetKind::Twitter.generate(seed);
    let mut t = Table::new(
        "Extension: fine θ sweep of the reverse evaluation (Twitter)",
        &["theta", "success", "unavailable", "abuse"],
    );
    for theta in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8] {
        let out = mutuality::run(
            &g,
            &MutualityConfig { theta, seed, requests_per_trustor: 5, ..Default::default() },
        );
        t.row(&[f2(theta), pct(out.success_rate), pct(out.unavailable_rate), pct(out.abuse_rate)]);
    }
    t.print();
    println!("the operating point is a policy choice: θ≈0.3 halves abuse at ~12% unavailability\n");
}

/// The three transfer methods head-to-head at one sweep point.
fn transitivity_methods(seed: u64) {
    let g = SocialNetKind::Twitter.generate(seed);
    let cfg = TransitivityConfig {
        n_characteristics: 6,
        extra_pair_tasks: 15,
        seed,
        ..Default::default()
    };
    let mut t = Table::new(
        "Ablation: trust-transfer method (Twitter, 6 characteristics)",
        &["method", "success", "unavailable", "potential trustees"],
    );
    for method in SearchMethod::ALL {
        let out = run(&g, method, &cfg);
        t.row(&[
            method.name().into(),
            pct(out.success_rate),
            pct(out.unavailable_rate),
            f2(out.avg_potential_trustees),
        ]);
    }
    t.print();
}
