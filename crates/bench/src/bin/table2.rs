//! Table 2 — transitivity with real-world node properties as task
//! characteristics, measured vs paper.

use siot_bench::fmt::{f2, pct, Table};
use siot_bench::paper::TABLE2;
use siot_bench::runner::{feature_transitivity, seed_from_env};
use siot_sim::SearchMethod;

fn main() {
    let results = feature_transitivity(seed_from_env());
    let mut t = Table::new(
        "Table 2: node-property characteristics (measured | paper)",
        &["method", "metric", "Facebook", "Google+", "Twitter"],
    );
    for (mi, method) in SearchMethod::ALL.iter().enumerate() {
        let rows: Vec<_> = results.iter().filter(|(_, m, _)| m == method).collect();
        let metric = |name: &str, get: &dyn Fn(usize) -> String| {
            vec![TABLE2[mi].method.to_string(), name.to_string(), get(0), get(1), get(2)]
        };
        t.row(&metric("Success rate", &|i| {
            format!("{} | {}", pct(rows[i].2.success_rate), pct(TABLE2[mi].success[i]))
        }));
        t.row(&metric("Unavailable rate", &|i| {
            format!("{} | {}", pct(rows[i].2.unavailable_rate), pct(TABLE2[mi].unavailable[i]))
        }));
        t.row(&metric("Num. potential trustees", &|i| {
            format!("{} | {}", f2(rows[i].2.avg_potential_trustees), f2(TABLE2[mi].trustees[i]))
        }));
    }
    t.print();
}
