//! Table 1 — connectivity characteristics of the three sub-networks,
//! paper vs the synthesized substitutes.

use siot_bench::fmt::{f2, Table};
use siot_bench::paper::TABLE1;
use siot_bench::runner::{network, seed_from_env};
use siot_graph::generate::social::SocialNetKind;
use siot_graph::metrics::ConnectivityStats;

fn main() {
    let seed = seed_from_env();
    let mut t = Table::new(
        "Table 1: connectivity characteristics (measured | paper)",
        &["metric", "Facebook", "Google+", "Twitter"],
    );
    let stats: Vec<ConnectivityStats> = SocialNetKind::ALL
        .iter()
        .map(|&k| ConnectivityStats::compute(&network(k, seed), seed))
        .collect();

    let cell = |m: String, p: String| format!("{m} | {p}");
    type RowFmt<'a> = Box<dyn Fn(usize) -> String + 'a>;
    let rows: Vec<(&str, RowFmt<'_>)> = vec![
        (
            "Number of Nodes",
            Box::new(|i: usize| cell(stats[i].nodes.to_string(), TABLE1[i].nodes.to_string())),
        ),
        (
            "Number of Edges",
            Box::new(|i| cell(stats[i].edges.to_string(), TABLE1[i].edges.to_string())),
        ),
        (
            "Average Degree",
            Box::new(|i| cell(f2(stats[i].average_degree), f2(TABLE1[i].average_degree))),
        ),
        (
            "Diameter",
            Box::new(|i| cell(stats[i].diameter.to_string(), TABLE1[i].diameter.to_string())),
        ),
        (
            "Average Path Length",
            Box::new(|i| cell(f2(stats[i].average_path_length), f2(TABLE1[i].average_path_length))),
        ),
        (
            "Avg Clustering Coefficient",
            Box::new(|i| cell(f2(stats[i].average_clustering), f2(TABLE1[i].average_clustering))),
        ),
        ("Modularity", Box::new(|i| cell(f2(stats[i].modularity), f2(TABLE1[i].modularity)))),
        (
            "Number of Communities",
            Box::new(|i| cell(stats[i].communities.to_string(), TABLE1[i].communities.to_string())),
        ),
    ];
    for (name, f) in rows {
        t.row(&[name.to_string(), f(0), f(1), f(2)]);
    }
    t.print();
}
