//! Fig. 13 — net profit over delegation iterations, success-rate-only vs
//! expected-net-profit selection, three networks.

use siot_bench::fmt::{sparkline, Table};
use siot_bench::paper::FIG13_ITERATIONS;
use siot_bench::runner::{network, seed_from_env};
use siot_graph::generate::social::SocialNetKind;
use siot_sim::scenario::profit::{run, ProfitConfig, Strategy};

fn main() {
    let seed = seed_from_env();
    let cfg = ProfitConfig { iterations: FIG13_ITERATIONS, seed, ..Default::default() };
    let mut t = Table::new(
        "Fig. 13: net profit vs iterations (paper shape: second strategy converges higher; first can go negative)",
        &["series", "start", "mid", "converged", "profile"],
    );
    for kind in SocialNetKind::ALL {
        let g = network(kind, seed);
        for strategy in [Strategy::SuccessRateOnly, Strategy::NetProfit] {
            let series = run(&g, strategy, &cfg);
            let window =
                |lo: usize, hi: usize| series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            let coarse: Vec<f64> =
                series.chunks(100).map(|c| c.iter().sum::<f64>() / c.len() as f64).collect();
            t.row(&[
                format!("{} ({})", kind.name(), strategy.name()),
                format!("{:+.3}", window(0, 100)),
                format!("{:+.3}", window(1400, 1600)),
                format!("{:+.3}", window(FIG13_ITERATIONS - 200, FIG13_ITERATIONS)),
                sparkline(&coarse),
            ]);
        }
    }
    t.print();
}
