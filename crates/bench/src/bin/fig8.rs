//! Fig. 8 — percentage of trustors selecting honest devices, with vs
//! without the characteristic-based inference model (IoT testbed).

use siot_bench::fmt::{sparkline, Table};
use siot_bench::paper::TESTBED_RUNS;
use siot_bench::runner::seed_from_env;
use siot_iot::experiment::inference::{run, InferenceConfig};

fn main() {
    let out = run(&InferenceConfig { runs: TESTBED_RUNS, seed: seed_from_env() });
    let mut t = Table::new(
        "Fig. 8: honest-device selection % per experiment (paper: with ≫ without ≈ 50%)",
        &["run", "with model", "without model"],
    );
    for i in 0..out.with_model.len() {
        t.row(&[
            (i + 1).to_string(),
            format!("{:.0}%", out.with_model[i]),
            format!("{:.0}%", out.without_model[i]),
        ]);
    }
    t.print();
    println!("with:    {}", sparkline(&out.with_model));
    println!("without: {}", sparkline(&out.without_model));
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("means: with {:.1}%  without {:.1}%", mean(&out.with_model), mean(&out.without_model));
}
