//! Fig. 14 — average trustor active time under the fragment attack, with
//! (gain+cost) vs without (gain-only) the proposed model.

use siot_bench::fmt::{sparkline, Table};
use siot_bench::paper::TESTBED_RUNS;
use siot_bench::runner::seed_from_env;
use siot_iot::experiment::fragments::{run, FragmentsConfig};

fn main() {
    let out =
        run(&FragmentsConfig { rounds: TESTBED_RUNS, seed: seed_from_env(), ..Default::default() });
    let mut t = Table::new(
        "Fig. 14: avg active time (ms) per experiment (paper shape: proposed model detects the attackers and drops; baseline stays high)",
        &["run", "with model", "without model"],
    );
    for i in 0..out.with_model.len() {
        t.row(&[
            (i + 1).to_string(),
            format!("{:.0}", out.with_model[i]),
            format!("{:.0}", out.without_model[i]),
        ]);
    }
    t.print();
    println!("with:    {}", sparkline(&out.with_model));
    println!("without: {}", sparkline(&out.without_model));
}
