//! Fig. 16 — network net profit under the light → dark → light schedule,
//! with vs without the environment-removal model.

use siot_bench::fmt::{sparkline, Table};
use siot_bench::paper::TESTBED_RUNS;
use siot_bench::runner::seed_from_env;
use siot_iot::experiment::light::{run, LightConfig};

fn main() {
    let out =
        run(&LightConfig { rounds: TESTBED_RUNS, seed: seed_from_env(), ..Default::default() });
    let mut t = Table::new(
        "Fig. 16: net profit per experiment (paper shape: proposed model recovers after the dark period; baseline stays low)",
        &["run", "light", "with model", "without model"],
    );
    for i in 0..out.with_model.len() {
        t.row(&[
            (i + 1).to_string(),
            format!("{:.2}", out.light[i]),
            format!("{:.0}", out.with_model[i]),
            format!("{:.0}", out.without_model[i]),
        ]);
    }
    t.print();
    println!("with:    {}", sparkline(&out.with_model));
    println!("without: {}", sparkline(&out.without_model));
}
