//! Runs the entire evaluation and writes CSV dumps into `bench_out/`.
//!
//! This is the one-command reproduction of §5: every table and figure, as
//! text on stdout and as machine-readable series under `bench_out/`.

use siot_bench::fmt::{f2, pct, write_series_csv, Table};
use siot_bench::paper::{
    CHARACTERISTIC_SWEEP, FIG13_ITERATIONS, FIG15_COMPETENCE, FIG15_PHASES, TABLE1, TABLE2,
    TESTBED_RUNS,
};
use siot_bench::runner::{feature_transitivity, fig7, network, seed_from_env, transitivity_sweep};
use siot_graph::generate::social::SocialNetKind;
use siot_graph::metrics::ConnectivityStats;
use siot_iot::experiment::{fragments, inference, light};
use siot_sim::scenario::{environment, profit};
use siot_sim::SearchMethod;
use std::path::Path;

fn main() {
    let seed = seed_from_env();
    let out_dir = Path::new("bench_out");
    println!("Running the full evaluation (seed {seed}); CSVs go to {}\n", out_dir.display());

    table1(seed, out_dir);
    fig7_all(seed, out_dir);
    fig8(seed, out_dir);
    sweep(seed, out_dir);
    table2(seed, out_dir);
    fig13(seed, out_dir);
    fig14(seed, out_dir);
    fig15(seed, out_dir);
    fig16(seed, out_dir);
    println!("\nDone. See EXPERIMENTS.md for the paper-vs-measured record.");
}

type MeasuredFmt = fn(&ConnectivityStats) -> String;
type PaperFmt = fn(&siot_bench::paper::Table1Row) -> String;

fn table1(seed: u64, dir: &Path) {
    let mut t =
        Table::new("Table 1 (measured | paper)", &["metric", "Facebook", "Google+", "Twitter"]);
    let stats: Vec<ConnectivityStats> = SocialNetKind::ALL
        .iter()
        .map(|&k| ConnectivityStats::compute(&network(k, seed), seed))
        .collect();
    let rows: [(&str, MeasuredFmt, PaperFmt); 8] = [
        ("Nodes", |s| s.nodes.to_string(), |p| p.nodes.to_string()),
        ("Edges", |s| s.edges.to_string(), |p| p.edges.to_string()),
        ("Average Degree", |s| f2(s.average_degree), |p| f2(p.average_degree)),
        ("Diameter", |s| s.diameter.to_string(), |p| p.diameter.to_string()),
        ("Avg Path Length", |s| f2(s.average_path_length), |p| f2(p.average_path_length)),
        ("Avg Clustering", |s| f2(s.average_clustering), |p| f2(p.average_clustering)),
        ("Modularity", |s| f2(s.modularity), |p| f2(p.modularity)),
        ("Communities", |s| s.communities.to_string(), |p| p.communities.to_string()),
    ];
    for (name, m, p) in rows {
        t.row(&[
            name.to_string(),
            format!("{} | {}", m(&stats[0]), p(&TABLE1[0])),
            format!("{} | {}", m(&stats[1]), p(&TABLE1[1])),
            format!("{} | {}", m(&stats[2]), p(&TABLE1[2])),
        ]);
    }
    t.print();
    t.write_csv(&dir.join("table1.csv")).expect("csv written");
    println!();
}

fn fig7_all(seed: u64, dir: &Path) {
    let results = fig7(seed);
    let mut t = Table::new("Fig. 7", &["network", "theta", "success", "unavailable", "abuse"]);
    for (kind, theta, o) in &results {
        t.row(&[
            kind.name().into(),
            format!("{theta:.1}"),
            pct(o.success_rate),
            pct(o.unavailable_rate),
            pct(o.abuse_rate),
        ]);
    }
    t.print();
    t.write_csv(&dir.join("fig7.csv")).expect("csv written");
    println!();
}

fn fig8(seed: u64, dir: &Path) {
    let out = inference::run(&inference::InferenceConfig { runs: TESTBED_RUNS, seed });
    let xs: Vec<f64> = (1..=out.with_model.len()).map(|i| i as f64).collect();
    write_series_csv(
        &dir.join("fig8.csv"),
        "run",
        &xs,
        &[("with_model", &out.with_model), ("without_model", &out.without_model)],
    )
    .expect("csv written");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "Fig. 8: honest selection with model {:.1}% vs without {:.1}% (paper: ≫ vs ≈50%)\n",
        mean(&out.with_model),
        mean(&out.without_model)
    );
}

fn sweep(seed: u64, dir: &Path) {
    let cells = transitivity_sweep(seed);
    for (fig, metric, get) in [
        (
            "fig9",
            "success rate",
            (|o: &siot_sim::scenario::transitivity::TransitivityOutcome| o.success_rate)
                as fn(_) -> f64,
        ),
        ("fig10", "unavailable rate", |o| o.unavailable_rate),
        ("fig11", "avg potential trustees", |o| o.avg_potential_trustees),
    ] {
        let mut t = Table::new(&format!("{fig}: {metric}"), &["series", "4", "5", "6", "7"]);
        for kind in SocialNetKind::ALL {
            for method in SearchMethod::ALL {
                let mut row = vec![format!("{} {}", kind.name(), method.name())];
                for &n in &CHARACTERISTIC_SWEEP {
                    let cell = cells
                        .iter()
                        .find(|c| c.kind == kind && c.method == method && c.n_characteristics == n)
                        .expect("full sweep");
                    row.push(f2(get(&cell.outcome)));
                }
                t.row(&row);
            }
        }
        t.print();
        t.write_csv(&dir.join(format!("{fig}.csv"))).expect("csv written");
        println!();
    }
}

fn table2(seed: u64, dir: &Path) {
    let results = feature_transitivity(seed);
    let mut t = Table::new(
        "Table 2 (measured | paper)",
        &["method", "metric", "Facebook", "Google+", "Twitter"],
    );
    for (mi, method) in SearchMethod::ALL.iter().enumerate() {
        let rows: Vec<_> = results.iter().filter(|(_, m, _)| m == method).collect();
        t.row(&[
            method.name().into(),
            "success".into(),
            format!("{} | {}", pct(rows[0].2.success_rate), pct(TABLE2[mi].success[0])),
            format!("{} | {}", pct(rows[1].2.success_rate), pct(TABLE2[mi].success[1])),
            format!("{} | {}", pct(rows[2].2.success_rate), pct(TABLE2[mi].success[2])),
        ]);
        t.row(&[
            method.name().into(),
            "unavailable".into(),
            format!("{} | {}", pct(rows[0].2.unavailable_rate), pct(TABLE2[mi].unavailable[0])),
            format!("{} | {}", pct(rows[1].2.unavailable_rate), pct(TABLE2[mi].unavailable[1])),
            format!("{} | {}", pct(rows[2].2.unavailable_rate), pct(TABLE2[mi].unavailable[2])),
        ]);
        t.row(&[
            method.name().into(),
            "trustees".into(),
            format!("{} | {}", f2(rows[0].2.avg_potential_trustees), f2(TABLE2[mi].trustees[0])),
            format!("{} | {}", f2(rows[1].2.avg_potential_trustees), f2(TABLE2[mi].trustees[1])),
            format!("{} | {}", f2(rows[2].2.avg_potential_trustees), f2(TABLE2[mi].trustees[2])),
        ]);
    }
    t.print();
    t.write_csv(&dir.join("table2.csv")).expect("csv written");

    // Fig. 12 from the same run
    let mut f12 = Table::new("Fig. 12: inquired nodes per trustor (Facebook)", &["method", "mean"]);
    for method in SearchMethod::ALL {
        let (_, _, o) = results
            .iter()
            .find(|(k, m, _)| *k == SocialNetKind::Facebook && *m == method)
            .expect("facebook present");
        let mut xs: Vec<f64> = o.inquired_per_trustor.iter().map(|&x| x as f64).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        f12.row(&[method.name().into(), format!("{mean:.1}")]);
        let idx: Vec<f64> = (0..xs.len()).map(|i| i as f64).collect();
        write_series_csv(
            &dir.join(format!("fig12_{}.csv", method.name().to_lowercase())),
            "sorted_trustor",
            &idx,
            &[("inquired", &xs)],
        )
        .expect("csv written");
    }
    f12.print();
    println!();
}

fn fig13(seed: u64, dir: &Path) {
    let cfg = profit::ProfitConfig { iterations: FIG13_ITERATIONS, seed, ..Default::default() };
    let mut t = Table::new(
        "Fig. 13: converged net profit",
        &["network", "first strategy", "second strategy"],
    );
    for kind in SocialNetKind::ALL {
        let g = network(kind, seed);
        let s1 = profit::run(&g, profit::Strategy::SuccessRateOnly, &cfg);
        let s2 = profit::run(&g, profit::Strategy::NetProfit, &cfg);
        let tail = |v: &[f64]| v[v.len() - 200..].iter().sum::<f64>() / 200.0;
        t.row(&[kind.name().into(), format!("{:+.3}", tail(&s1)), format!("{:+.3}", tail(&s2))]);
        let xs: Vec<f64> = (0..s1.len()).map(|i| i as f64).collect();
        write_series_csv(
            &dir.join(format!("fig13_{}.csv", kind.name().to_lowercase().replace('+', "plus"))),
            "iteration",
            &xs,
            &[("first_strategy", &s1), ("second_strategy", &s2)],
        )
        .expect("csv written");
    }
    t.print();
    println!();
}

fn fig14(seed: u64, dir: &Path) {
    let out = fragments::run(&fragments::FragmentsConfig {
        rounds: TESTBED_RUNS,
        seed,
        ..Default::default()
    });
    let xs: Vec<f64> = (1..=out.with_model.len()).map(|i| i as f64).collect();
    write_series_csv(
        &dir.join("fig14.csv"),
        "run",
        &xs,
        &[("with_model_ms", &out.with_model), ("without_model_ms", &out.without_model)],
    )
    .expect("csv written");
    let tail = |v: &[f64]| v[v.len() / 2..].iter().sum::<f64>() / (v.len() - v.len() / 2) as f64;
    println!(
        "Fig. 14: late-run active time with model {:.0} ms vs without {:.0} ms (paper: drops vs stays ~700 ms)\n",
        tail(&out.with_model),
        tail(&out.without_model)
    );
}

fn fig15(seed: u64, dir: &Path) {
    let out = environment::run(&environment::EnvironmentConfig {
        competence: FIG15_COMPETENCE,
        phases: FIG15_PHASES.to_vec(),
        seed,
        ..Default::default()
    });
    let xs: Vec<f64> = (0..out.len()).map(|i| i as f64).collect();
    write_series_csv(
        &dir.join("fig15.csv"),
        "iteration",
        &xs,
        &[
            ("ideal", &out.ideal),
            ("traditional", &out.traditional),
            ("proposed", &out.proposed),
            ("environment", &out.environment),
        ],
    )
    .expect("csv written");
    println!(
        "Fig. 15: hostile-phase estimates — ideal {:.2}, traditional {:.2}, proposed {:.2} (paper: 0.8 / 0.32 / 0.8)\n",
        environment::window_mean(&out.ideal, 150, 200),
        environment::window_mean(&out.traditional, 150, 200),
        environment::window_mean(&out.proposed, 150, 200),
    );
}

fn fig16(seed: u64, dir: &Path) {
    let out = light::run(&light::LightConfig { rounds: TESTBED_RUNS, seed, ..Default::default() });
    let xs: Vec<f64> = (1..=out.with_model.len()).map(|i| i as f64).collect();
    write_series_csv(
        &dir.join("fig16.csv"),
        "run",
        &xs,
        &[
            ("with_model", &out.with_model),
            ("without_model", &out.without_model),
            ("light", &out.light),
        ],
    )
    .expect("csv written");
    let last: usize = 40;
    let tail = |v: &[f64]| v[last..].iter().sum::<f64>() / (v.len() - last) as f64;
    println!(
        "Fig. 16: final light period net profit with model {:.0} vs without {:.0} (paper: recovers vs stays low)\n",
        tail(&out.with_model),
        tail(&out.without_model)
    );
}
