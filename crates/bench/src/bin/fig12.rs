//! Fig. 12 — number of inquired nodes per (sorted) trustor on the
//! Facebook sub-network, per transfer method.

use siot_bench::fmt::{sparkline, Table};
use siot_bench::runner::{feature_transitivity, seed_from_env};
use siot_graph::generate::social::SocialNetKind;
use siot_sim::SearchMethod;

fn main() {
    let results = feature_transitivity(seed_from_env());
    let mut series: Vec<(SearchMethod, Vec<f64>)> = Vec::new();
    for method in SearchMethod::ALL {
        let (_, _, outcome) = results
            .iter()
            .find(|(k, m, _)| *k == SocialNetKind::Facebook && *m == method)
            .expect("facebook run present");
        let mut xs: Vec<f64> = outcome.inquired_per_trustor.iter().map(|&x| x as f64).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("counts are finite"));
        series.push((method, xs));
    }

    let mut t = Table::new(
        "Fig. 12: inquired nodes per sorted trustor, Facebook (paper shape: aggr ≫ cons > trad)",
        &["method", "min", "median", "max", "mean", "profile"],
    );
    for (method, xs) in &series {
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        t.row(&[
            method.name().to_string(),
            format!("{:.0}", xs.first().copied().unwrap_or(0.0)),
            format!("{:.0}", xs[xs.len() / 2]),
            format!("{:.0}", xs.last().copied().unwrap_or(0.0)),
            format!("{mean:.1}"),
            sparkline(xs),
        ]);
    }
    t.print();
}
