//! Fig. 10 — unavailable rate vs number of characteristics.

use siot_bench::fmt::{pct, Table};
use siot_bench::paper::CHARACTERISTIC_SWEEP;
use siot_bench::runner::{seed_from_env, transitivity_sweep};
use siot_graph::generate::social::SocialNetKind;
use siot_sim::SearchMethod;

fn main() {
    let cells = transitivity_sweep(seed_from_env());
    let mut t = Table::new(
        "Fig. 10: unavailable rate (paper shape: aggr ≤ cons < trad, increasing in #chars)",
        &["series", "4", "5", "6", "7"],
    );
    for kind in SocialNetKind::ALL {
        for method in SearchMethod::ALL {
            let mut row = vec![format!("{} {}", kind.name(), method.name())];
            for &n in &CHARACTERISTIC_SWEEP {
                let cell = cells
                    .iter()
                    .find(|c| c.kind == kind && c.method == method && c.n_characteristics == n)
                    .expect("full sweep");
                row.push(pct(cell.outcome.unavailable_rate));
            }
            t.row(&row);
        }
    }
    t.print();
}
