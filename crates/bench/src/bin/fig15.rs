//! Fig. 15 — expected success rate tracking under the 1.0 → 0.4 → 0.7
//! environment schedule: ideal vs traditional vs proposed r(·) updates.

use siot_bench::fmt::{sparkline, Table};
use siot_bench::paper::{FIG15_COMPETENCE, FIG15_PHASES};
use siot_bench::runner::seed_from_env;
use siot_sim::scenario::environment::{run, window_mean, EnvironmentConfig};

fn main() {
    let cfg = EnvironmentConfig {
        competence: FIG15_COMPETENCE,
        phases: FIG15_PHASES.to_vec(),
        seed: seed_from_env(),
        ..Default::default()
    };
    let out = run(&cfg);
    let mut t = Table::new(
        "Fig. 15: expected success rate (paper: proposed tracks 0.8; traditional sinks to 0.32/0.56 with error+delay)",
        &["series", "amicable (0-100)", "hostile (100-200)", "recovery (200-300)", "profile"],
    );
    for (name, series) in [
        ("no env influence", &out.ideal),
        ("traditional", &out.traditional),
        ("proposed r(·)", &out.proposed),
    ] {
        t.row(&[
            name.to_string(),
            format!("{:.3}", window_mean(series, 50, 100)),
            format!("{:.3}", window_mean(series, 150, 200)),
            format!("{:.3}", window_mean(series, 250, 300)),
            sparkline(series),
        ]);
    }
    t.print();
}
