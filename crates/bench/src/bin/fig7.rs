//! Fig. 7 — success / unavailable / abuse rates of task delegations under
//! reverse-evaluation thresholds θ ∈ {0, 0.3, 0.6}.

use siot_bench::fmt::{pct, Table};
use siot_bench::runner::{fig7, seed_from_env};

fn main() {
    let results = fig7(seed_from_env());
    let mut t = Table::new(
        "Fig. 7: mutual evaluation (paper shape: θ=0 ⇒ abuse > 0.4; θ↑ ⇒ unavailable↑, abuse↓)",
        &["network", "theta", "success", "unavailable", "abuse"],
    );
    for (kind, theta, out) in results {
        t.row(&[
            kind.name().to_string(),
            format!("{theta:.1}"),
            pct(out.success_rate),
            pct(out.unavailable_rate),
            pct(out.abuse_rate),
        ]);
    }
    t.print();
}
