//! Plain-text table and CSV output.

use std::fs;
use std::io::Write;
use std::path::Path;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = fs::File::create(path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Writes an xy-series CSV: one `x` column plus one column per series.
pub fn write_series_csv(
    path: &Path,
    x_name: &str,
    xs: &[f64],
    series: &[(&str, &[f64])],
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut f = fs::File::create(path)?;
    let headers: Vec<&str> =
        std::iter::once(x_name).chain(series.iter().map(|&(n, _)| n)).collect();
    writeln!(f, "{}", headers.join(","))?;
    for (i, &x) in xs.iter().enumerate() {
        let mut cells = vec![format!("{x}")];
        for &(_, ys) in series {
            cells.push(ys.get(i).map_or(String::new(), |y| format!("{y}")));
        }
        writeln!(f, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Renders a crude ASCII sparkline of a series (reports at a glance).
pub fn sparkline(ys: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if ys.is_empty() {
        return String::new();
    }
    let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    ys.iter()
        .map(|&y| {
            if hi <= lo {
                LEVELS[0]
            } else {
                let t = ((y - lo) / (hi - lo) * 7.0).round() as usize;
                LEVELS[t.min(7)]
            }
        })
        .collect()
}

/// Formats a float with 2 decimals (table cell convenience).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with 2 decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("siot_bench_test");
        let path = dir.join("t.csv");
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn series_csv() {
        let dir = std::env::temp_dir().join("siot_bench_test2");
        let path = dir.join("s.csv");
        write_series_csv(&path, "x", &[1.0, 2.0], &[("y", &[0.5, 0.7][..])]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("x,y\n1,0.5\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sparkline_shape() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 1.0, 0.5]);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(sparkline(&[1.0, 1.0]), "▁▁");
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.5), "50.00%");
    }
}
