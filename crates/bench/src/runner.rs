//! Shared experiment execution for the binaries, the benches, and the
//! shape tests.

use crate::paper;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use siot_core::backend::TrustBackend;
use siot_core::record::{ForgettingFactors, Observation};
use siot_core::store::TrustEngine;
use siot_core::task::TaskId;
use siot_graph::generate::features::synthesize_features;
use siot_graph::generate::social::SocialNetKind;
use siot_graph::SocialGraph;
use siot_sim::scenario::mutuality::{self, MutualityConfig, MutualityOutcome};
use siot_sim::scenario::transitivity::{self, TransitivityConfig, TransitivityOutcome};
use siot_sim::SearchMethod;

/// The default seed every binary uses (override with `SIOT_SEED`).
pub const DEFAULT_SEED: u64 = 42;

/// Reads the seed from the `SIOT_SEED` environment variable, defaulting to
/// [`DEFAULT_SEED`].
pub fn seed_from_env() -> u64 {
    std::env::var("SIOT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_SEED)
}

/// Generates one evaluation network.
pub fn network(kind: SocialNetKind, seed: u64) -> SocialGraph {
    kind.generate(seed)
}

/// Fig. 7: mutuality rates for every network × θ.
pub fn fig7(seed: u64) -> Vec<(SocialNetKind, f64, MutualityOutcome)> {
    let mut out = Vec::new();
    for kind in SocialNetKind::ALL {
        let g = network(kind, seed);
        for &theta in &paper::FIG7_THETAS {
            let cfg = MutualityConfig { theta, seed, ..Default::default() };
            out.push((kind, theta, mutuality::run(&g, &cfg)));
        }
    }
    out
}

/// One cell of the Fig. 9–11 sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The network.
    pub kind: SocialNetKind,
    /// The transfer method.
    pub method: SearchMethod,
    /// Total characteristics in the network.
    pub n_characteristics: usize,
    /// The measured rates.
    pub outcome: TransitivityOutcome,
}

/// Figs. 9–11: the full (network × method × characteristics) sweep.
pub fn transitivity_sweep(seed: u64) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for kind in SocialNetKind::ALL {
        let g = network(kind, seed);
        for &n_chars in &paper::CHARACTERISTIC_SWEEP {
            let cfg = TransitivityConfig {
                n_characteristics: n_chars,
                // every 2-characteristic combination exists as a task type,
                // so the exact-match baseline starves as the alphabet grows
                extra_pair_tasks: n_chars * (n_chars - 1) / 2,
                seed,
                ..Default::default()
            };
            for method in SearchMethod::ALL {
                cells.push(SweepCell {
                    kind,
                    method,
                    n_characteristics: n_chars,
                    outcome: transitivity::run(&g, method, &cfg),
                });
            }
        }
    }
    cells
}

/// Table 2 / Fig. 12: transitivity with node-property characteristics.
pub fn feature_transitivity(seed: u64) -> Vec<(SocialNetKind, SearchMethod, TransitivityOutcome)> {
    let mut out = Vec::new();
    for kind in SocialNetKind::ALL {
        let (g, community) = kind.generate_with_communities(seed);
        let features = synthesize_features(&community, 6, 0.45, seed ^ 0xfea7);
        let cfg = TransitivityConfig { seed, ..Default::default() };
        for method in SearchMethod::ALL {
            out.push((kind, method, transitivity::run_with_features(&g, method, &cfg, &features)));
        }
    }
    out
}

/// Synthesizes a delegation-outcome stream for the storage benches: `n`
/// observations round-robined over `peers × tasks` keys, so `n ≤ peers ×
/// tasks` yields exactly `n` distinct records and larger `n` exercises the
/// update path too. Observation values are seeded-random.
pub fn backend_workload(
    n: usize,
    peers: u32,
    tasks: u32,
    seed: u64,
) -> Vec<(u32, TaskId, Observation)> {
    assert!(peers > 0 && tasks > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let peer = (i as u32) % peers;
            let task = TaskId(((i as u32) / peers) % tasks);
            let obs = Observation {
                success_rate: rng.gen_range(0.0..1.0),
                gain: rng.gen_range(0.0..1.0),
                damage: rng.gen_range(0.0..1.0),
                cost: rng.gen_range(0.0..1.0),
            };
            (peer, task, obs)
        })
        .collect()
}

/// Replays `workload` through a fresh engine over backend `B`, folding in
/// `chunk`-sized [`TrustEngine::observe_batch`] calls (the shape every
/// large simulation uses). Returns the warmed engine for inspection.
pub fn replay_workload<B: TrustBackend<u32>>(
    workload: &[(u32, TaskId, Observation)],
    chunk: usize,
) -> TrustEngine<u32, B> {
    let mut engine: TrustEngine<u32, B> = TrustEngine::new();
    let betas = ForgettingFactors::figures();
    for batch in workload.chunks(chunk.max(1)) {
        engine.observe_batch(batch, &betas).expect("workload observations are unit-range");
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;
    use siot_core::backend::{BTreeBackend, ShardedBackend};

    #[test]
    fn seed_env_parsing() {
        // no env var set in tests: default
        assert_eq!(seed_from_env(), DEFAULT_SEED);
    }

    #[test]
    fn networks_generate() {
        for kind in SocialNetKind::ALL {
            let g = network(kind, 1);
            assert!(g.node_count() > 200);
        }
    }

    #[test]
    fn workload_covers_distinct_records_then_updates() {
        let w = backend_workload(20_000, 5_000, 2, 9);
        assert_eq!(w.len(), 20_000);
        let engine = replay_workload::<BTreeBackend<u32>>(&w, 512);
        // 10k distinct keys observed twice each
        assert_eq!(engine.record_count(), 10_000);
        assert_eq!(engine.record(0, TaskId(0)).unwrap().interactions, 2);
    }

    #[test]
    fn backends_replay_identically() {
        let w = backend_workload(8_000, 1_000, 3, 11);
        let bt = replay_workload::<BTreeBackend<u32>>(&w, 256);
        let sh = replay_workload::<ShardedBackend<u32>>(&w, 256);
        assert_eq!(bt.record_count(), sh.record_count());
        assert_eq!(bt.known_peers(), sh.known_peers());
        for &(p, t, _) in &w {
            assert_eq!(bt.record(p, t), sh.record(p, t));
        }
    }
}
