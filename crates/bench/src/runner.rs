//! Shared experiment execution for the binaries and the shape tests.

use crate::paper;
use siot_graph::generate::features::synthesize_features;
use siot_graph::generate::social::SocialNetKind;
use siot_graph::SocialGraph;
use siot_sim::scenario::mutuality::{self, MutualityConfig, MutualityOutcome};
use siot_sim::scenario::transitivity::{self, TransitivityConfig, TransitivityOutcome};
use siot_sim::SearchMethod;

/// The default seed every binary uses (override with `SIOT_SEED`).
pub const DEFAULT_SEED: u64 = 42;

/// Reads the seed from the `SIOT_SEED` environment variable, defaulting to
/// [`DEFAULT_SEED`].
pub fn seed_from_env() -> u64 {
    std::env::var("SIOT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Generates one evaluation network.
pub fn network(kind: SocialNetKind, seed: u64) -> SocialGraph {
    kind.generate(seed)
}

/// Fig. 7: mutuality rates for every network × θ.
pub fn fig7(seed: u64) -> Vec<(SocialNetKind, f64, MutualityOutcome)> {
    let mut out = Vec::new();
    for kind in SocialNetKind::ALL {
        let g = network(kind, seed);
        for &theta in &paper::FIG7_THETAS {
            let cfg = MutualityConfig { theta, seed, ..Default::default() };
            out.push((kind, theta, mutuality::run(&g, &cfg)));
        }
    }
    out
}

/// One cell of the Fig. 9–11 sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The network.
    pub kind: SocialNetKind,
    /// The transfer method.
    pub method: SearchMethod,
    /// Total characteristics in the network.
    pub n_characteristics: usize,
    /// The measured rates.
    pub outcome: TransitivityOutcome,
}

/// Figs. 9–11: the full (network × method × characteristics) sweep.
pub fn transitivity_sweep(seed: u64) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for kind in SocialNetKind::ALL {
        let g = network(kind, seed);
        for &n_chars in &paper::CHARACTERISTIC_SWEEP {
            let cfg = TransitivityConfig {
                n_characteristics: n_chars,
                // every 2-characteristic combination exists as a task type,
                // so the exact-match baseline starves as the alphabet grows
                extra_pair_tasks: n_chars * (n_chars - 1) / 2,
                seed,
                ..Default::default()
            };
            for method in SearchMethod::ALL {
                cells.push(SweepCell {
                    kind,
                    method,
                    n_characteristics: n_chars,
                    outcome: transitivity::run(&g, method, &cfg),
                });
            }
        }
    }
    cells
}

/// Table 2 / Fig. 12: transitivity with node-property characteristics.
pub fn feature_transitivity(
    seed: u64,
) -> Vec<(SocialNetKind, SearchMethod, TransitivityOutcome)> {
    let mut out = Vec::new();
    for kind in SocialNetKind::ALL {
        let (g, community) = kind.generate_with_communities(seed);
        let features = synthesize_features(&community, 6, 0.45, seed ^ 0xfea7);
        let cfg = TransitivityConfig { seed, ..Default::default() };
        for method in SearchMethod::ALL {
            out.push((
                kind,
                method,
                transitivity::run_with_features(&g, method, &cfg, &features),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_env_parsing() {
        // no env var set in tests: default
        assert_eq!(seed_from_env(), DEFAULT_SEED);
    }

    #[test]
    fn networks_generate() {
        for kind in SocialNetKind::ALL {
            let g = network(kind, 1);
            assert!(g.node_count() > 200);
        }
    }
}
