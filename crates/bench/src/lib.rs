//! # siot-bench — regenerates every table and figure of the paper
//!
//! One binary per evaluation artifact:
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table1` | Table 1 — connectivity characteristics |
//! | `fig7` | Fig. 7 — mutuality rates vs θ |
//! | `fig8` | Fig. 8 — honest-device selection (testbed) |
//! | `fig9`, `fig10`, `fig11` | Figs. 9–11 — transitivity sweeps |
//! | `table2` | Table 2 — transitivity with node properties |
//! | `fig12` | Fig. 12 — inquiry overhead |
//! | `fig13` | Fig. 13 — net profit vs iterations |
//! | `fig14` | Fig. 14 — fragment attack (testbed) |
//! | `fig15` | Fig. 15 — dynamic environment tracking |
//! | `fig16` | Fig. 16 — light schedule (testbed) |
//! | `all` | everything above, plus CSV dumps into `bench_out/` |
//!
//! Absolute numbers differ from the paper (the substrate is a simulator,
//! not the authors' testbed); the *shapes* — who wins, by roughly what
//! factor, where the crossovers fall — are asserted in
//! `tests/experiments_shape.rs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fmt;
pub mod paper;
pub mod runner;
