//! Reference values transcribed from the paper, for side-by-side reports
//! and shape checks.

/// One Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Network name.
    pub name: &'static str,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Average degree.
    pub average_degree: f64,
    /// Diameter.
    pub diameter: u32,
    /// Average path length.
    pub average_path_length: f64,
    /// Average clustering coefficient.
    pub average_clustering: f64,
    /// Modularity.
    pub modularity: f64,
    /// Number of communities.
    pub communities: usize,
}

/// Table 1 as printed in the paper.
pub const TABLE1: [Table1Row; 3] = [
    Table1Row {
        name: "Facebook",
        nodes: 347,
        edges: 5038,
        average_degree: 29.04,
        diameter: 11,
        average_path_length: 3.75,
        average_clustering: 0.49,
        modularity: 0.46,
        communities: 29,
    },
    Table1Row {
        name: "Google+",
        nodes: 358,
        edges: 4178,
        average_degree: 23.34,
        diameter: 12,
        average_path_length: 3.9,
        average_clustering: 0.39,
        modularity: 0.45,
        communities: 22,
    },
    Table1Row {
        name: "Twitter",
        nodes: 244,
        edges: 2478,
        average_degree: 20.31,
        diameter: 8,
        average_path_length: 2.96,
        average_clustering: 0.27,
        modularity: 0.38,
        communities: 16,
    },
];

/// One Table 2 cell block (per network, per method).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Method name (Trad. / Cons. / Aggr.).
    pub method: &'static str,
    /// Success rates for Facebook, Google+, Twitter.
    pub success: [f64; 3],
    /// Unavailable rates for Facebook, Google+, Twitter.
    pub unavailable: [f64; 3],
    /// Average number of potential trustees for Facebook, Google+, Twitter.
    pub trustees: [f64; 3],
}

/// Table 2 as printed in the paper (rates as fractions).
pub const TABLE2: [Table2Row; 3] = [
    Table2Row {
        method: "Trad.",
        success: [0.2763, 0.2839, 0.2286],
        unavailable: [0.6645, 0.6000, 0.7333],
        trustees: [4.19, 2.37, 2.88],
    },
    Table2Row {
        method: "Cons.",
        success: [0.5789, 0.5355, 0.4857],
        unavailable: [0.3750, 0.3290, 0.4571],
        trustees: [10.63, 5.92, 5.99],
    },
    Table2Row {
        method: "Aggr.",
        success: [0.6711, 0.5935, 0.5238],
        unavailable: [0.2697, 0.2645, 0.3524],
        trustees: [11.60, 6.53, 6.35],
    },
];

/// The reverse-evaluation thresholds swept in Fig. 7.
pub const FIG7_THETAS: [f64; 3] = [0.0, 0.3, 0.6];

/// Fig. 9/10/11 sweep range: total characteristics in the network.
pub const CHARACTERISTIC_SWEEP: [usize; 4] = [4, 5, 6, 7];

/// Fig. 13 iteration count and forgetting factor.
pub const FIG13_ITERATIONS: usize = 3000;
/// Fig. 13/15 forgetting factor β.
pub const BETA: f64 = 0.1;

/// Fig. 15 phases: (iterations, environment indicator).
pub const FIG15_PHASES: [(usize, f64); 3] = [(100, 1.0), (100, 0.4), (100, 0.7)];
/// Fig. 15 trustee competence.
pub const FIG15_COMPETENCE: f64 = 0.8;

/// Fig. 8/14/16 experiment run counts.
pub const TESTBED_RUNS: usize = 50;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_known_counts() {
        assert_eq!(TABLE1[0].nodes, 347);
        assert_eq!(TABLE1[1].edges, 4178);
        assert_eq!(TABLE1[2].diameter, 8);
    }

    #[test]
    fn table2_ordering_holds_in_reference() {
        // the paper's own numbers satisfy the claimed ordering
        for net in 0..3 {
            assert!(TABLE2[0].success[net] < TABLE2[1].success[net]);
            assert!(TABLE2[1].success[net] < TABLE2[2].success[net]);
            assert!(TABLE2[0].unavailable[net] > TABLE2[1].unavailable[net]);
            assert!(TABLE2[1].unavailable[net] > TABLE2[2].unavailable[net]);
            assert!(TABLE2[0].trustees[net] < TABLE2[1].trustees[net]);
            assert!(TABLE2[1].trustees[net] < TABLE2[2].trustees[net]);
        }
    }
}
