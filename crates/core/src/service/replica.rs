//! Epoch-snapshotted read replicas: the read-optimized query tier.
//!
//! Every query API before this one serializes through an actor mailbox —
//! correct (read-your-awaited-writes) but wrong for the read-dominated
//! traffic a production SIoT deployment actually sees, where millions of
//! `trustworthiness`/`known_peers`/`task_records` lookups ride a thin
//! write stream. This module lets reads leave the write path entirely:
//!
//! * Each shard actor **publishes** an immutable, epoch-stamped
//!   [`ReadSnapshot`] of its read state at the end of every drain cycle
//!   that folded commits. Publication is cheap — the snapshot is a
//!   persistent (structurally shared) tree, so publishing clones an `Arc`,
//!   not the records — and it never blocks the write path: the shared
//!   slot is swapped under a pointer-sized critical section.
//! * A [`ReplicaHandle`] serves `trustworthiness` / `record` /
//!   `known_peers` / `task_records` directly off the latest snapshots with
//!   **zero mailbox traffic** — reads scale independently of the actors
//!   and keep answering (from the last published state) even while a shard
//!   is saturated or after the service stopped.
//! * Callers that want staleness *bounds* rather than raw snapshots use
//!   [`Freshness::Snapshot`] on the ordinary service handles: the read is
//!   served from the snapshot only while it is missing at most
//!   `max_epoch_lag` of the shard's folds, and falls through to the mailbox
//!   (a fresh read) otherwise. See [`Freshness`] for the full consistency
//!   menu — those docs are the single normative statement of the
//!   guarantees.
//!
//! ## Epochs and staleness
//!
//! Snapshots are stamped with the **drain epoch** they were published at —
//! the same per-shard counter that stamps [`Cut`] replies and shows up in
//! [`ShardStats::drains`] — using the number the publishing drain cycle
//! *completes* as. Staleness, though, is counted in **mutating folds**,
//! not drain cycles: the slot carries a fold counter the actor advances
//! once per non-empty commit fold, each snapshot remembers the count it
//! was built at, and their difference — *how many commit folds the
//! snapshot is missing* — is the lag that [`Freshness::Snapshot`] bounds.
//! (Drain cycles would be the wrong unit: read-only traffic spins the
//! drain counter without changing any record, and whether consecutive
//! queries share a drain cycle is a scheduling accident.) Under
//! [`ServiceOptions::publish_every`] ` = K` the lag never exceeds `K - 1`.
//! Drain cycles that folded nothing do **not** publish and do not advance
//! the fold counter, so a read-only or freshly spawned service never
//! looks stale and broadcasts never force a publication round.
//!
//! With the default [`ServiceOptions::publish_every`] ` = 1` every
//! mutating drain publishes before it acks, so an awaited commit is
//! already visible to snapshot reads when the ack arrives; larger values
//! amortize publication on write-hot shards and widen the lag the
//! bounded-staleness check can observe.
//!
//! ```
//! use siot_core::prelude::*;
//! use siot_core::service::{block_on, Freshness, ServiceOptions, TrustService};
//!
//! let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).unwrap();
//! let service = TrustService::spawn(TrustStore::<u32>::new(), ServiceOptions::default());
//! let handle = service.handle();
//! let replica = handle.replica();
//!
//! block_on(async {
//!     let request = DelegationRequest::new(7, &task, Goal::ANY, Context::amicable(task.id()))
//!         .committed();
//!     handle.complete(request, DelegationOutcome::succeeded(0.9, 0.1)).await.unwrap();
//! });
//! // the awaited commit was published before its ack: zero-mailbox reads
//! // see it without touching the actor
//! assert_eq!(replica.known_peers().value, vec![7]);
//! assert!(replica.record(7, task.id()).is_some());
//! service.shutdown().unwrap();
//! // the last published state keeps answering after shutdown
//! assert_eq!(replica.known_peers().value, vec![7]);
//! ```
//!
//! [`Cut`]: super::Cut
//! [`Freshness`]: super::Freshness
//! [`Freshness::Snapshot`]: super::Freshness::Snapshot
//! [`ShardStats::drains`]: super::ShardStats::drains
//! [`ShardStats::published_epoch`]: super::ShardStats::published_epoch
//! [`ServiceOptions::publish_every`]: super::ServiceOptions::publish_every

use super::{Cut, ShardStats};
use crate::delegation::DelegationReceipt;
use crate::record::TrustRecord;
use crate::task::TaskId;
use crate::tw::{Normalizer, Trustworthiness};
use std::cmp::Ordering as CmpOrdering;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// A persistent (structurally shared) AVL map from peer to its task records.
//
// The actor applies every receipt to its working copy via O(log n)
// path-copying, and "publishing" the whole read state is then one `Arc`
// clone of the root — no deep copy per drain, which is what makes
// publish-per-drain affordable at 100k+ records. Nodes the update path
// does not touch are shared between the working copy and every published
// snapshot (SymanticWeft ADR-0005's frame: immutable units, convergence
// without coordination).
// ---------------------------------------------------------------------------

type Recs = Arc<Vec<(TaskId, TrustRecord)>>;
type Link<P> = Option<Arc<Node<P>>>;

#[derive(Debug)]
struct Node<P> {
    peer: P,
    /// This peer's records, ascending by task — small (one entry per task
    /// the peer was ever delegated), shared with published snapshots until
    /// the next fold touches this peer.
    recs: Recs,
    height: u8,
    left: Link<P>,
    right: Link<P>,
}

fn height<P>(link: &Link<P>) -> u8 {
    link.as_ref().map_or(0, |n| n.height)
}

fn mk<P: Copy>(peer: P, recs: Recs, left: Link<P>, right: Link<P>) -> Arc<Node<P>> {
    let height = 1 + height(&left).max(height(&right));
    Arc::new(Node { peer, recs, height, left, right })
}

/// Rebuilds a node after one child changed, restoring the AVL invariant.
/// Inserts add at most one level, so the single/double rotations of
/// textbook AVL insertion are exhaustive (records are never deleted
/// through the service, so no deletion rebalancing exists).
fn balance<P: Copy>(peer: P, recs: Recs, left: Link<P>, right: Link<P>) -> Arc<Node<P>> {
    let (hl, hr) = (height(&left), height(&right));
    if hl > hr + 1 {
        let l = left.expect("left height >= 2 implies a left child");
        if height(&l.left) >= height(&l.right) {
            // single right rotation
            let lifted = mk(peer, recs, l.right.clone(), right);
            mk(l.peer, Arc::clone(&l.recs), l.left.clone(), Some(lifted))
        } else {
            // left-right double rotation
            let lr = l.right.as_ref().expect("left-right case has a left-right child");
            let new_left = mk(l.peer, Arc::clone(&l.recs), l.left.clone(), lr.left.clone());
            let new_right = mk(peer, recs, lr.right.clone(), right);
            mk(lr.peer, Arc::clone(&lr.recs), Some(new_left), Some(new_right))
        }
    } else if hr > hl + 1 {
        let r = right.expect("right height >= 2 implies a right child");
        if height(&r.right) >= height(&r.left) {
            // single left rotation
            let lifted = mk(peer, recs, left, r.left.clone());
            mk(r.peer, Arc::clone(&r.recs), Some(lifted), r.right.clone())
        } else {
            // right-left double rotation
            let rl = r.left.as_ref().expect("right-left case has a right-left child");
            let new_left = mk(peer, recs, left, rl.left.clone());
            let new_right = mk(r.peer, Arc::clone(&r.recs), rl.right.clone(), r.right.clone());
            mk(rl.peer, Arc::clone(&rl.recs), Some(new_left), Some(new_right))
        }
    } else {
        mk(peer, recs, left, right)
    }
}

/// Path-copying upsert: returns the new subtree root and whether a new
/// `(peer, task)` entry was created (as opposed to replaced).
fn upsert<P: Copy + Ord>(
    link: &Link<P>,
    peer: P,
    task: TaskId,
    rec: TrustRecord,
) -> (Arc<Node<P>>, bool) {
    match link {
        None => (
            Arc::new(Node {
                peer,
                recs: Arc::new(vec![(task, rec)]),
                height: 1,
                left: None,
                right: None,
            }),
            true,
        ),
        Some(n) => match peer.cmp(&n.peer) {
            CmpOrdering::Equal => {
                let mut recs = (*n.recs).clone();
                let added = match recs.binary_search_by_key(&task, |&(t, _)| t) {
                    Ok(i) => {
                        recs[i].1 = rec;
                        false
                    }
                    Err(i) => {
                        recs.insert(i, (task, rec));
                        true
                    }
                };
                (
                    Arc::new(Node {
                        peer: n.peer,
                        recs: Arc::new(recs),
                        height: n.height,
                        left: n.left.clone(),
                        right: n.right.clone(),
                    }),
                    added,
                )
            }
            CmpOrdering::Less => {
                let (new_left, added) = upsert(&n.left, peer, task, rec);
                (balance(n.peer, Arc::clone(&n.recs), Some(new_left), n.right.clone()), added)
            }
            CmpOrdering::Greater => {
                let (new_right, added) = upsert(&n.right, peer, task, rec);
                (balance(n.peer, Arc::clone(&n.recs), n.left.clone(), Some(new_right)), added)
            }
        },
    }
}

/// The snapshot's record store: cloning is O(1) (the root `Arc`), an
/// upsert path-copies O(log n) nodes.
#[derive(Debug, Clone)]
struct PeerMap<P> {
    root: Link<P>,
    records: usize,
}

impl<P> Default for PeerMap<P> {
    fn default() -> Self {
        PeerMap { root: None, records: 0 }
    }
}

impl<P: Copy + Ord> PeerMap<P> {
    fn upsert(&mut self, peer: P, task: TaskId, rec: TrustRecord) {
        let (root, added) = upsert(&self.root, peer, task, rec);
        self.root = Some(root);
        self.records += usize::from(added);
    }

    fn get(&self, peer: P) -> Option<&Recs> {
        let mut cur = &self.root;
        while let Some(n) = cur {
            match peer.cmp(&n.peer) {
                CmpOrdering::Equal => return Some(&n.recs),
                CmpOrdering::Less => cur = &n.left,
                CmpOrdering::Greater => cur = &n.right,
            }
        }
        None
    }

    /// In-order (ascending-peer) visit.
    fn for_each(&self, f: &mut impl FnMut(P, &[(TaskId, TrustRecord)])) {
        fn walk<P: Copy>(link: &Link<P>, f: &mut impl FnMut(P, &[(TaskId, TrustRecord)])) {
            if let Some(n) = link {
                walk(&n.left, f);
                f(n.peer, &n.recs);
                walk(&n.right, f);
            }
        }
        walk(&self.root, f);
    }
}

// ---------------------------------------------------------------------------
// ReadSnapshot: the immutable unit the actor publishes.
// ---------------------------------------------------------------------------

/// One shard's immutable, epoch-stamped read state: every `(peer, task)`
/// record the shard had folded when the stamping drain cycle completed,
/// plus the normalizer to derive Eq. 18 trustworthiness. Published by the
/// shard actor (see the [module docs](self)), shared by `Arc` — reading
/// never copies records and never touches the actor.
#[derive(Debug, Clone)]
pub struct ReadSnapshot<P> {
    epoch: u64,
    /// The slot's mutating-fold count when this snapshot was built — the
    /// baseline the bounded-staleness check measures lag from.
    folds: u64,
    normalizer: Normalizer,
    map: PeerMap<P>,
}

impl<P: Copy + Ord> ReadSnapshot<P> {
    /// The drain epoch this snapshot was published at — comparable with
    /// [`Cut`] epochs and [`ShardStats::drains`]: if this
    /// epoch is ≥ a cut's epoch for the same shard, the snapshot observed
    /// at least everything that cut did.
    ///
    /// [`ShardStats::drains`]: super::ShardStats::drains
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The normalization operator the owning engine derives Eq. 18
    /// trustworthiness with.
    pub fn normalizer(&self) -> Normalizer {
        self.normalizer
    }

    /// The record for `(peer, task)` as of [`epoch`](Self::epoch), if any
    /// interaction had happened.
    pub fn record(&self, peer: P, task: TaskId) -> Option<TrustRecord> {
        let recs = self.map.get(peer)?;
        recs.binary_search_by_key(&task, |&(t, _)| t).ok().map(|i| recs[i].1)
    }

    /// Eq. 18 trustworthiness toward `(peer, task)` as of
    /// [`epoch`](Self::epoch).
    pub fn trustworthiness(&self, peer: P, task: TaskId) -> Option<Trustworthiness> {
        self.record(peer, task).map(|r| r.trustworthiness(self.normalizer))
    }

    /// Peers with at least one record — each exactly once, ascending.
    pub fn known_peers(&self) -> Vec<P> {
        let mut out = Vec::new();
        self.map.for_each(&mut |peer, _| out.push(peer));
        out
    }

    /// Every `(peer, record)` pair held for `task`, ascending by peer.
    pub fn task_records(&self, task: TaskId) -> Vec<(P, TrustRecord)> {
        let mut out = Vec::new();
        self.map.for_each(&mut |peer, recs| {
            if let Ok(i) = recs.binary_search_by_key(&task, |&(t, _)| t) {
                out.push((peer, recs[i].1));
            }
        });
        out
    }

    /// How many `(peer, task)` records the snapshot holds.
    pub fn record_count(&self) -> usize {
        self.map.records
    }
}

// ---------------------------------------------------------------------------
// ReplicaSlot: the publication point shared between actor and readers.
// ---------------------------------------------------------------------------

/// The `Arc`-swap slot one shard publishes through. Readers
/// [`load`](Self::load) the current snapshot; the actor
/// [`publish`](Self::publish)es a new one. The mutex guards only the
/// pointer swap itself — a pointer-sized critical section on either side,
/// never held across record access or publication building — so the write
/// path is never meaningfully blocked by readers. (A raw `AtomicPtr` of
/// `Arc`s cannot be loaded safely without hazard-pointer machinery; the
/// swap-only mutex is the safe std-only spelling of the same shape.)
#[derive(Debug)]
pub(crate) struct ReplicaSlot<P> {
    current: Mutex<Arc<ReadSnapshot<P>>>,
    /// Epoch of the newest fold the actor applied (advanced before the
    /// fold's receipts are acked) — what a forced publication stamps its
    /// snapshot with.
    last_fold: AtomicU64,
    /// Count of mutating folds the actor has applied. The lag that
    /// [`Freshness::Snapshot`](super::Freshness::Snapshot) bounds is
    /// `folds - snapshot.folds`: how many commit folds the published
    /// snapshot is missing. Fold *counts* rather than drain epochs so
    /// read-only traffic — which spins the drain counter without changing
    /// a record — never makes a caught-up snapshot look stale.
    folds: AtomicU64,
}

impl<P: Copy + Ord> ReplicaSlot<P> {
    pub(crate) fn new(normalizer: Normalizer) -> Arc<Self> {
        let initial = ReadSnapshot { epoch: 0, folds: 0, normalizer, map: PeerMap::default() };
        Arc::new(ReplicaSlot {
            current: Mutex::new(Arc::new(initial)),
            last_fold: AtomicU64::new(0),
            folds: AtomicU64::new(0),
        })
    }

    /// The latest published snapshot.
    pub(crate) fn load(&self) -> Arc<ReadSnapshot<P>> {
        Arc::clone(&self.current.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// The latest snapshot, only while it is missing at most
    /// `max_epoch_lag` of the actor's mutating folds — `None` means "too
    /// stale, fall through to the mailbox".
    pub(crate) fn fresh_within(&self, max_epoch_lag: u64) -> Option<Arc<ReadSnapshot<P>>> {
        let snap = self.load();
        // the fold counter is read after loading: folds landing in between
        // only make this check stricter than the loaded snapshot deserves
        if self.folds.load(Ordering::Acquire).saturating_sub(snap.folds) <= max_epoch_lag {
            Some(snap)
        } else {
            None
        }
    }

    /// Mutating folds the published snapshot is missing — the lag
    /// [`Freshness::Snapshot`](super::Freshness::Snapshot) bounds.
    pub(crate) fn lag(&self) -> u64 {
        let snap_folds = self.load().folds;
        self.folds.load(Ordering::Acquire).saturating_sub(snap_folds)
    }

    fn note_fold(&self, epoch: u64) {
        self.last_fold.store(epoch, Ordering::Release);
        self.folds.fetch_add(1, Ordering::AcqRel);
    }

    fn publish(&self, snapshot: ReadSnapshot<P>) {
        let next = Arc::new(snapshot);
        *self.current.lock().unwrap_or_else(|e| e.into_inner()) = next;
    }
}

// ---------------------------------------------------------------------------
// Publisher: the actor-side half.
// ---------------------------------------------------------------------------

/// The actor's working copy of its read state plus the publication policy.
/// Owned by the actor thread; `apply` mirrors each fold receipt (the
/// receipt carries the absolute post-fold record, so no engine re-read),
/// `folded` advances the fold epoch and publishes per
/// [`ServiceOptions::publish_every`](super::ServiceOptions::publish_every).
#[derive(Debug)]
pub(crate) struct Publisher<P> {
    slot: Arc<ReplicaSlot<P>>,
    map: PeerMap<P>,
    normalizer: Normalizer,
    publish_every: u64,
    /// Folds applied since the last publication.
    dirty: u64,
}

impl<P: Copy + Ord> Publisher<P> {
    /// A publisher over `slot`, seeded with the engine's pre-existing
    /// records (`seed` visits every `(peer, task, record)` triple — the
    /// engine/backend read seam) so a reopened durable engine serves its
    /// recovered state from epoch 0.
    pub(crate) fn new(
        slot: Arc<ReplicaSlot<P>>,
        publish_every: u64,
        seed: impl FnOnce(&mut dyn FnMut(P, TaskId, TrustRecord)),
    ) -> Self {
        let normalizer = slot.load().normalizer;
        let mut map = PeerMap::default();
        seed(&mut |peer, task, rec| map.upsert(peer, task, rec));
        if map.records > 0 {
            slot.publish(ReadSnapshot { epoch: 0, folds: 0, normalizer, map: map.clone() });
        }
        Publisher { slot, map, normalizer, publish_every: publish_every.max(1), dirty: 0 }
    }

    /// Mirrors one fold receipt into the working copy.
    pub(crate) fn apply(&mut self, receipt: &DelegationReceipt<P>) {
        self.map.upsert(receipt.trustee, receipt.task, receipt.record);
    }

    /// Called once per non-empty fold, with the epoch the folding drain
    /// cycle completes as: advances the fold epoch (so staleness checks
    /// see the pending state), publishes if the policy says so, and
    /// mirrors the published epoch into `stats`.
    pub(crate) fn folded(&mut self, epoch: u64, stats: &mut ShardStats) {
        self.slot.note_fold(epoch);
        self.dirty += 1;
        if self.dirty >= self.publish_every {
            self.publish(epoch, stats);
        }
    }

    /// Publishes the working copy regardless of policy, at the epoch of
    /// the newest applied fold (the shutdown path: the last published
    /// state outlives the actor).
    pub(crate) fn force_publish(&mut self, stats: &mut ShardStats) {
        if self.dirty > 0 {
            let epoch = self.slot.last_fold.load(Ordering::Acquire);
            self.publish(epoch, stats);
        }
    }

    fn publish(&mut self, epoch: u64, stats: &mut ShardStats) {
        self.slot.publish(ReadSnapshot {
            epoch,
            // actor thread: every note_fold happened-before this publish,
            // so the counter names exactly the folds the map contains
            folds: self.slot.folds.load(Ordering::Acquire),
            normalizer: self.normalizer,
            map: self.map.clone(),
        });
        stats.published_epoch = epoch;
        self.dirty = 0;
    }
}

// ---------------------------------------------------------------------------
// ReplicaHandle: the zero-mailbox reader.
// ---------------------------------------------------------------------------

/// A read replica over a service's shards: serves `trustworthiness` /
/// `record` / `known_peers` / `task_records` directly off the latest
/// published [`ReadSnapshot`]s — zero mailbox traffic, so reads cost the
/// actors nothing and keep answering (from the last published state) even
/// while shards are saturated, reconnecting, or stopped.
///
/// Obtained from [`TrustServiceHandle::replica`] (one shard) or
/// [`ShardedTrustServiceHandle::replica`] (one slot per shard). All
/// methods are synchronous — there is nothing to await. For reads with an
/// explicit staleness *bound* (fall through to a fresh mailbox read when
/// too stale), use [`Freshness::Snapshot`] on the ordinary handles
/// instead.
///
/// [`TrustServiceHandle::replica`]: super::TrustServiceHandle::replica
/// [`ShardedTrustServiceHandle::replica`]: super::ShardedTrustServiceHandle::replica
/// [`Freshness::Snapshot`]: super::Freshness::Snapshot
#[derive(Debug)]
pub struct ReplicaHandle<P> {
    slots: Arc<[Arc<ReplicaSlot<P>>]>,
}

impl<P> Clone for ReplicaHandle<P> {
    fn clone(&self) -> Self {
        ReplicaHandle { slots: Arc::clone(&self.slots) }
    }
}

impl<P: Copy + Ord> ReplicaHandle<P> {
    pub(crate) fn over(slots: Arc<[Arc<ReplicaSlot<P>>]>) -> Self {
        ReplicaHandle { slots }
    }

    /// How many shard snapshots this replica reads over.
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// The latest published snapshot of every shard, in shard order.
    pub fn snapshots(&self) -> Vec<Arc<ReadSnapshot<P>>> {
        self.slots.iter().map(|s| s.load()).collect()
    }

    /// The worst per-shard lag (mutating folds the published snapshot is
    /// missing) across the replica — `0` means every shard's snapshot
    /// reflects its last fold.
    pub fn max_lag(&self) -> u64 {
        self.slots.iter().map(|s| s.lag()).max().unwrap_or(0)
    }

    /// Peers with at least one record across all shards — each exactly
    /// once, ascending — merged from the latest snapshots and stamped
    /// with their epochs (shard order).
    pub fn known_peers(&self) -> Cut<Vec<P>> {
        let snaps = self.snapshots();
        let epochs = snaps.iter().map(|s| s.epoch()).collect();
        let mut peers: Vec<P> = snaps.iter().flat_map(|s| s.known_peers()).collect();
        peers.sort_unstable();
        Cut { epochs, value: peers }
    }

    /// Every `(peer, record)` pair held for `task` across all shards,
    /// ascending by peer, merged from the latest snapshots and
    /// epoch-stamped.
    pub fn task_records(&self, task: TaskId) -> Cut<Vec<(P, TrustRecord)>> {
        let snaps = self.snapshots();
        let epochs = snaps.iter().map(|s| s.epoch()).collect();
        let mut records: Vec<(P, TrustRecord)> =
            snaps.iter().flat_map(|s| s.task_records(task)).collect();
        records.sort_unstable_by_key(|&(peer, _)| peer);
        Cut { epochs, value: records }
    }
}

impl<P: Copy + Ord + Hash> ReplicaHandle<P> {
    /// The slot owning `peer` under the stable shard routing (single-slot
    /// replicas route everything to their one slot).
    fn slot_of(&self, peer: P) -> &ReplicaSlot<P> {
        if self.slots.len() == 1 {
            &self.slots[0]
        } else {
            &self.slots[super::sharded::shard_index(&peer, self.slots.len())]
        }
    }

    /// The record for `(peer, task)` from the owning shard's latest
    /// snapshot.
    pub fn record(&self, peer: P, task: TaskId) -> Option<TrustRecord> {
        self.slot_of(peer).load().record(peer, task)
    }

    /// Eq. 18 trustworthiness toward `(peer, task)` from the owning
    /// shard's latest snapshot.
    pub fn trustworthiness(&self, peer: P, task: TaskId) -> Option<Trustworthiness> {
        self.slot_of(peer).load().trustworthiness(peer, task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(interactions: u64) -> TrustRecord {
        TrustRecord { interactions, ..TrustRecord::default() }
    }

    #[test]
    fn peer_map_upserts_and_iterates_sorted() {
        let mut map: PeerMap<u32> = PeerMap::default();
        // adversarial order: ascending inserts are the AVL worst case
        for peer in 0..256u32 {
            map.upsert(peer, TaskId(0), rec(1));
        }
        for peer in (0..256u32).rev() {
            map.upsert(peer, TaskId(1), rec(2));
        }
        assert_eq!(map.records, 512);
        let mut seen = Vec::new();
        map.for_each(&mut |peer, recs| {
            assert_eq!(recs.len(), 2);
            seen.push(peer);
        });
        assert_eq!(seen, (0..256u32).collect::<Vec<_>>());
        // replacement does not grow the map
        map.upsert(7, TaskId(0), rec(9));
        assert_eq!(map.records, 512);
        assert_eq!(map.get(7).unwrap()[0].1.interactions, 9);
    }

    #[test]
    fn peer_map_stays_balanced() {
        let mut map: PeerMap<u32> = PeerMap::default();
        for peer in 0..4096u32 {
            map.upsert(peer, TaskId(0), rec(1));
        }
        fn check<P: Copy>(link: &Link<P>) -> u8 {
            match link {
                None => 0,
                Some(n) => {
                    let (hl, hr) = (check(&n.left), check(&n.right));
                    assert!(hl.abs_diff(hr) <= 1, "AVL invariant");
                    assert_eq!(n.height, 1 + hl.max(hr));
                    n.height
                }
            }
        }
        let h = check(&map.root);
        // 1.44 * log2(4096) ≈ 18
        assert!(h <= 18, "height {h} for 4096 keys");
    }

    #[test]
    fn published_clones_share_structure_with_the_working_copy() {
        let mut map: PeerMap<u32> = PeerMap::default();
        for peer in 0..1024u32 {
            map.upsert(peer, TaskId(0), rec(1));
        }
        let published = map.clone();
        map.upsert(0, TaskId(0), rec(2));
        // the published snapshot still sees the old value...
        assert_eq!(published.get(0).unwrap()[0].1.interactions, 1);
        assert_eq!(map.get(0).unwrap()[0].1.interactions, 2);
        // ...and untouched subtrees are the same allocation
        let (a, b) = (published.root.as_ref().unwrap(), map.root.as_ref().unwrap());
        assert!(
            Arc::ptr_eq(&a.right.clone().unwrap(), &b.right.clone().unwrap())
                || Arc::ptr_eq(&a.left.clone().unwrap(), &b.left.clone().unwrap()),
            "one side of the root must be shared after a single-key update"
        );
    }

    #[test]
    fn slot_staleness_accounting() {
        let slot: Arc<ReplicaSlot<u32>> = ReplicaSlot::new(Normalizer::UNIT);
        let mut stats = ShardStats::default();
        let mut publisher = Publisher::new(Arc::clone(&slot), 3, |_| {});
        assert_eq!(slot.lag(), 0);
        assert!(slot.fresh_within(0).is_some(), "fresh spawn is never stale");

        publisher.apply(&DelegationReceipt {
            trustee: 5u32,
            task: TaskId(0),
            record: rec(1),
            trustworthiness: Trustworthiness::new(0.5),
            fulfilled: true,
        });
        publisher.folded(1, &mut stats);
        // publish_every = 3: fold noted, nothing published yet
        assert_eq!(slot.lag(), 1);
        assert!(slot.fresh_within(0).is_none(), "lag 1 > bound 0");
        assert!(slot.fresh_within(1).is_some());
        assert_eq!(slot.load().record_count(), 0, "still the empty epoch-0 snapshot");

        publisher.folded(2, &mut stats);
        publisher.folded(3, &mut stats);
        assert_eq!(slot.lag(), 0, "third fold published");
        assert_eq!(stats.published_epoch, 3);
        assert_eq!(slot.load().record(5, TaskId(0)).unwrap().interactions, 1);
    }
}
