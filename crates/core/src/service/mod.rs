//! An async command/query facade over the trust engine: the trust
//! *process* served to many concurrent requesters.
//!
//! Every API before this one drives a `&mut TrustEngine` synchronously —
//! fine for a simulation loop, wrong for anything network-facing, where
//! folding observations must not block request threads. The SIoT
//! trust-management literature treats trust computation as a **shared
//! service** queried by many autonomous objects at once; this module gives
//! the engine that shape:
//!
//! ```text
//! TrustServiceHandle ──┐                         ┌──────────────────────┐
//! TrustServiceHandle ──┼── bounded MPSC mailbox ─▶  actor thread        │
//! TrustServiceHandle ──┘   Command<P> / Query<P> │  owns TrustEngine<P,B>│
//!        (Clone + Send,                          │  drains → commit_batch│
//!         methods are async fns)                 └──────────────────────┘
//! ```
//!
//! * A [`TrustService::spawn`] takes **ownership** of an engine over any
//!   [`TrustBackend`] — including the durable
//!   [`LogBackend`](crate::log_backend::LogBackend) /
//!   [`WriteBehind`](crate::log_backend::WriteBehind) — and moves it onto a
//!   dedicated actor thread.
//! * [`TrustServiceHandle`] is `Clone + Send`; its methods are `async fn`s
//!   whose futures are plain [`std::future::Future`]s — no runtime
//!   required. Drive them with [`block_on`] (re-exported here from the
//!   vendored `futures` shim) or any executor.
//! * The **delegation session is the wire unit**: a handle
//!   [`evaluate`](TrustServiceHandle::evaluate)s a
//!   [`DelegationRequest`] inside the actor, the caller turns the
//!   [`Decision`] into an
//!   [`ActiveDelegation`](crate::delegation::ActiveDelegation) it finishes
//!   locally, and the resulting [`CompletedDelegation`] — one-shot and
//!   pre-validated by construction — travels back through
//!   [`commit`](TrustServiceHandle::commit).
//! * The actor **batches the mailbox drain**: adjacent commits in one
//!   drain fold through a single
//!   [`commit_batch_receipts`](TrustEngine::commit_batch_receipts) storage
//!   pass (one shard-routed backend pass, not one lock per wakeup), and
//!   every caller still gets its own [`DelegationReceipt`]. Queries are
//!   answered in arrival order, so a caller that awaited its commit ack
//!   always reads its own write.
//! * **Graceful shutdown**: [`TrustServiceHandle::shutdown`] (or dropping
//!   every handle) drains the mailbox, commits everything queued, flushes
//!   the backend — on a durable engine no acked commit is lost — and only
//!   then stops. [`TrustService::shutdown`] additionally hands the engine
//!   back for inspection or reuse.
//!
//! Backpressure is by bounded mailbox: once `ServiceOptions::mailbox`
//! messages are queued, submitting threads block in `send` until the actor
//! drains — the service sheds load onto its callers instead of growing an
//! unbounded queue. Saturation is observable: [`TrustServiceHandle::stats`]
//! reports the live mailbox depth and the drained-commit-batch sizes
//! ([`ShardStats`]), so callers can see when they are the bottleneck.
//!
//! One actor is still one thread. When a single mailbox becomes the serial
//! bottleneck, the [`sharded`] tier partitions the engine across N
//! independent actors by a stable hash of the trustee peer —
//! [`ShardedTrustService::spawn_sharded`] — behind one routing
//! [`ShardedTrustServiceHandle`] with the same per-peer API plus
//! fan-out/merge broadcast queries.
//!
//! ```
//! use siot_core::prelude::*;
//! use siot_core::service::{block_on, ServiceOptions, TrustService};
//!
//! let mut engine: TrustStore<u32> = TrustStore::new();
//! let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).unwrap();
//! engine.register_task(task.clone());
//!
//! let service = TrustService::spawn(engine, ServiceOptions::default());
//! let handle = service.handle();
//!
//! block_on(async {
//!     // the session lifecycle over the wire: evaluate in the actor,
//!     // finish locally, commit the completion back
//!     let request = DelegationRequest::new(7, &task, Goal::profitable(), Context::amicable(task.id()))
//!         .with_prior(TrustRecord::with_priors(1.0, 1.0, 0.0, 0.0));
//!     let Decision::Delegate(active) = handle.delegate(request).await.unwrap() else {
//!         unreachable!("optimistic prior delegates")
//!     };
//!     let completed = active.finish(DelegationOutcome::succeeded(0.9, 0.2)).unwrap();
//!     let receipt = handle.commit(completed).await.unwrap();
//!     assert!(receipt.fulfilled);
//!     assert!(handle.trustworthiness(7, task.id()).await.unwrap().unwrap().value() > 0.5);
//! });
//!
//! let engine = service.shutdown().unwrap();
//! assert_eq!(engine.record_count(), 1);
//! ```

use crate::backend::TrustBackend;
use crate::delegation::{
    CompletedDelegation, Decision, DelegationOutcome, DelegationReceipt, DelegationRequest,
    EvaluatedDelegation,
};
use crate::error::TrustError;
use crate::record::{ForgettingFactors, TrustRecord};
use crate::store::TrustEngine;
use crate::task::{Task, TaskId};
use crate::tw::Trustworthiness;
use futures::channel::oneshot;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll};
use std::thread::JoinHandle;

pub mod fault;
pub mod fleet;
pub mod remote;
pub mod replica;
pub mod sharded;

pub use fault::{Fault, FaultPlan, FaultProxy};
pub use fleet::{FleetCut, FleetOptions, FleetTrustHandle, NodeStats};
pub use futures::executor::block_on;
pub use remote::{
    DedupWindow, RemotePending, RemoteTrustServer, RemoteTrustServiceHandle, ServiceEndpoint,
};
pub use replica::{ReadSnapshot, ReplicaHandle};
pub use sharded::{Freshness, ShardedTrustService, ShardedTrustServiceHandle};

use replica::{Publisher, ReplicaSlot};

/// A consistent answer to a broadcast query, named by the **epoch vector**
/// at which it was taken: one drain-cycle counter per shard (see
/// [`ShardStats::drains`]), sampled at the instant each shard answered.
///
/// Epochs are per-shard monotone, so two cuts from the same handle are
/// comparable shard-wise: if every epoch of cut B is ≥ the matching epoch
/// of cut A, B observed at least everything A did. Under
/// [`Freshness::Aligned`] the vector names one global instant — all shards
/// stood in the rendezvous together when these epochs were sampled — which
/// is what lets a *remote* client reason about alignment without sharing
/// the server's clock: the epoch scheme is the wire form of the
/// consistency story.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut<T> {
    /// Per-shard drain-cycle counters at the instant each shard answered,
    /// in shard order. A single-actor service reports one epoch.
    pub epochs: Vec<u64>,
    /// The merged answer.
    pub value: T,
}

/// Construction knobs for a [`TrustService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceOptions {
    /// Forgetting factors every commit folds with — engine policy, fixed
    /// at spawn so all requesters blend history identically.
    pub betas: ForgettingFactors,
    /// Mailbox capacity (minimum 1): messages queued beyond it block the
    /// submitting thread until the actor drains.
    pub mailbox: usize,
    /// Publish a [`ReadSnapshot`] after every `publish_every`-th drain
    /// cycle that folded commits (minimum 1; the default `1` publishes at
    /// the end of every mutating drain, *before* the drain's receipts are
    /// acked, so an awaited commit is already visible to snapshot reads).
    /// Larger values amortize publication on write-hot shards at the cost
    /// of replica staleness — the lag [`Freshness::Snapshot`] bounds. See
    /// the [`replica`] module docs. Drains that fold nothing never
    /// publish.
    pub publish_every: u64,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions { betas: ForgettingFactors::figures(), mailbox: 1024, publish_every: 1 }
    }
}

/// Saturation counters for one service actor ("shard" because the sharded
/// tier reports one of these per shard — a plain [`TrustService`] is the
/// one-shard case).
///
/// Returned by [`TrustServiceHandle::stats`] and, fleet-wide, by
/// [`ShardedTrustServiceHandle::shard_stats`]. The commit counters are the
/// actor's own bookkeeping (consistent with the mailbox order at the moment
/// the stats query was served); `mailbox_depth` is sampled from the live
/// send counter, so it reflects messages enqueued *after* the query too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Messages sent into the mailbox and not yet picked up by the actor —
    /// the backpressure signal: pinned near the mailbox capacity means
    /// submitters are blocking.
    pub mailbox_depth: usize,
    /// The mailbox's capacity ([`ServiceOptions::mailbox`], clamped to at
    /// least 1) — reported alongside the depth so *remote* callers can
    /// compute the saturation ratio `mailbox_depth / mailbox_capacity`
    /// without knowing the server's configuration.
    pub mailbox_capacity: usize,
    /// Mailbox drain cycles the actor has completed.
    pub drains: u64,
    /// Commit storage passes (`commit_batch_receipts` calls) the actor ran.
    pub commit_batches: u64,
    /// Sessions folded in total.
    pub committed: u64,
    /// Largest single commit batch folded in one storage pass — how much
    /// batching the drain actually achieved under load.
    pub largest_commit_batch: usize,
    /// Size of the most recent commit batch.
    pub last_commit_batch: usize,
    /// The drain epoch of the last published [`ReadSnapshot`] (`0` until
    /// the first publication) — staleness observable next to
    /// `mailbox_depth`: compare against [`drains`](Self::drains) to see
    /// how far snapshot readers trail this shard's write path. Reported
    /// to remote clients like every other counter.
    pub published_epoch: u64,
}

impl ShardStats {
    /// Mailbox saturation in `[0, 1]`: `mailbox_depth / mailbox_capacity`.
    /// The load-shedding signal a fleet dashboard actually wants — near
    /// `1.0` this shard is the one blocking its submitters.
    pub fn saturation(&self) -> f64 {
        // capacity is clamped to at least 1 at spawn, but a zero from a
        // hand-built value must not poison a dashboard with NaN
        self.mailbox_depth as f64 / (self.mailbox_capacity.max(1)) as f64
    }
}

/// A cross-shard rendezvous: every party blocks in [`arrive`](Self::arrive)
/// until all `parties` have arrived (or the rendezvous is aborted), then
/// all proceed. The [`Freshness::Aligned`] broadcast primitive — while all
/// shard actors stand inside the rendezvous simultaneously, none is
/// mutating, so the answers they compute immediately after form one
/// consistent global cut.
#[derive(Debug)]
pub(crate) struct Rendezvous {
    parties: usize,
    state: Mutex<RendezvousState>,
    cv: Condvar,
}

#[derive(Debug)]
struct RendezvousState {
    arrived: usize,
    aborted: bool,
}

impl Rendezvous {
    fn new(parties: usize) -> Arc<Self> {
        Arc::new(Rendezvous {
            parties,
            state: Mutex::new(RendezvousState { arrived: 0, aborted: false }),
            cv: Condvar::new(),
        })
    }

    /// Blocks until every party arrived or [`abort`](Self::abort) ran.
    fn arrive(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.arrived += 1;
        if st.arrived >= self.parties || st.aborted {
            self.cv.notify_all();
            return;
        }
        while st.arrived < self.parties && !st.aborted {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Releases every blocked party without waiting for the stragglers —
    /// called when a shard can no longer arrive (stopped before its query),
    /// so the live shards degrade to answering unaligned instead of
    /// deadlocking. The merge that requested alignment discards their
    /// answers and surfaces the typed error.
    fn abort(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.aborted = true;
        self.cv.notify_all();
    }
}

/// State-mutating requests served by the actor.
enum Command<P> {
    /// Fold one finished session. Batched with adjacent commits per drain.
    Commit { completed: CompletedDelegation<P>, reply: oneshot::Sender<DelegationReceipt<P>> },
    /// Fold a whole pre-built batch of finished sessions in one message:
    /// the vectored wire unit of [`TrustServiceHandle::submit_batch`] (and
    /// of the sharded tier's per-shard sub-batches). Joins the drain's
    /// pending batch, so the shard still runs one
    /// `commit_batch_receipts` storage pass; the receipts come back as one
    /// vector in batch order.
    CommitMany {
        batch: Vec<CompletedDelegation<P>>,
        reply: oneshot::Sender<Vec<DelegationReceipt<P>>>,
    },
    /// The whole session in one message: the actor activates the request
    /// (committed — the decision was the caller's), validates the outcome,
    /// and folds it in the same drain batch as adjacent commits.
    Complete {
        request: DelegationRequest<P>,
        outcome: DelegationOutcome,
        reply: oneshot::Sender<Result<DelegationReceipt<P>, TrustError>>,
    },
    /// Register (or replace) a task definition in the actor's engine.
    RegisterTask { task: Task, reply: oneshot::Sender<()> },
    /// Push engine state down to stable storage.
    Flush { reply: oneshot::Sender<Result<(), TrustError>> },
    /// Drain the mailbox, flush the backend, stop the actor.
    Shutdown { reply: oneshot::Sender<Result<(), TrustError>> },
}

/// Read-only requests served by the actor.
enum Query<P> {
    /// Run the §3.3 evaluation against the actor's engine.
    Evaluate { request: DelegationRequest<P>, reply: oneshot::Sender<EvaluatedDelegation<P>> },
    /// Eq. 18 trustworthiness toward `(peer, task)`.
    Trustworthiness { peer: P, task: TaskId, reply: oneshot::Sender<Option<Trustworthiness>> },
    /// The raw record for `(peer, task)`.
    Record { peer: P, task: TaskId, reply: oneshot::Sender<Option<TrustRecord>> },
    /// Every peer with at least one record. `align` is the sharded tier's
    /// [`Freshness::Aligned`] rendezvous: when set, the actor folds its
    /// pending commits, arrives, and answers only once every shard stands
    /// at the same cut. The reply is stamped with the actor's drain-cycle
    /// **epoch** ([`ShardStats::drains`] at answer time) — the wire tier's
    /// cross-process consistency token (see [`Cut`]).
    KnownPeers { align: Option<Arc<Rendezvous>>, reply: oneshot::Sender<(u64, Vec<P>)> },
    /// Every `(peer, record)` pair held for one task — a single atomic
    /// snapshot (one round trip, consistent against concurrent commits).
    /// `align` and the epoch stamp as in [`Query::KnownPeers`].
    TaskRecords {
        task: TaskId,
        align: Option<Arc<Rendezvous>>,
        reply: oneshot::Sender<(u64, Vec<(P, TrustRecord)>)>,
    },
    /// The actor's saturation counters ([`ShardStats`]).
    Stats { reply: oneshot::Sender<ShardStats> },
}

enum Message<P> {
    Command(Command<P>),
    Query(Query<P>),
}

/// A reply obligation for one or more elements of the pending commit batch.
enum Ack<P> {
    Commit(oneshot::Sender<DelegationReceipt<P>>),
    Complete(oneshot::Sender<Result<DelegationReceipt<P>, TrustError>>),
    /// A vectored submission: the next `len` receipts belong to this
    /// caller, in its batch order.
    Many {
        reply: oneshot::Sender<Vec<DelegationReceipt<P>>>,
        len: usize,
    },
}

/// The future of one actor round trip: eagerly sent on creation, resolves
/// when the actor replies. [`TrustError::ServiceStopped`] if the actor is
/// gone — before the send or before the reply.
pub struct Pending<R> {
    state: PendingState<R>,
}

enum PendingState<R> {
    Waiting(oneshot::Receiver<R>),
    /// The send itself failed; the error is taken on the resolving poll.
    Failed(Option<TrustError>),
    /// Resolved without an actor round trip (e.g. an empty batch).
    Ready(Option<R>),
}

impl<R> Pending<R> {
    fn waiting(rx: oneshot::Receiver<R>) -> Self {
        Pending { state: PendingState::Waiting(rx) }
    }

    fn failed(err: TrustError) -> Self {
        Pending { state: PendingState::Failed(Some(err)) }
    }

    fn ready(value: R) -> Self {
        Pending { state: PendingState::Ready(Some(value)) }
    }
}

// No self-references: the state is a oneshot receiver or an owned value,
// both freely movable, so the future is `Unpin` for every `R`.
impl<R> Unpin for Pending<R> {}

impl<R> Future for Pending<R> {
    type Output = Result<R, TrustError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match &mut self.get_mut().state {
            PendingState::Waiting(rx) => Pin::new(rx)
                .poll(cx)
                .map(|r| r.map_err(|oneshot::Canceled| TrustError::ServiceStopped)),
            PendingState::Failed(err) => {
                Poll::Ready(Err(err.take().expect("a resolved Pending is not re-polled")))
            }
            PendingState::Ready(value) => {
                Poll::Ready(Ok(value.take().expect("a resolved Pending is not re-polled")))
            }
        }
    }
}

/// A cloneable, `Send` handle to a running [`TrustService`] actor.
///
/// Every method is an `async fn` (or returns a [`Pending`] future): the
/// message is sent when the future is first polled — except
/// [`submit`](Self::submit), which sends eagerly so callers can pipeline —
/// and the future resolves when the actor replies. All futures are plain
/// `std` futures; drive them with [`block_on`] or any executor.
#[derive(Debug)]
pub struct TrustServiceHandle<P> {
    tx: SyncSender<Message<P>>,
    /// Messages enqueued and not yet picked up by the actor — incremented
    /// before every send, decremented by the actor per message received.
    /// The live half of [`ShardStats::mailbox_depth`].
    depth: Arc<AtomicUsize>,
    /// The actor's snapshot publication point — the read-replica tier's
    /// zero-mailbox seam (see [`replica`]).
    slot: Arc<ReplicaSlot<P>>,
}

impl<P> Clone for TrustServiceHandle<P> {
    fn clone(&self) -> Self {
        TrustServiceHandle {
            tx: self.tx.clone(),
            depth: Arc::clone(&self.depth),
            slot: Arc::clone(&self.slot),
        }
    }
}

impl<P: Copy + Ord> TrustServiceHandle<P> {
    /// Sends one message, blocking briefly if the mailbox is full.
    fn request<R>(&self, build: impl FnOnce(oneshot::Sender<R>) -> Message<P>) -> Pending<R> {
        let (tx, rx) = oneshot::channel();
        // increment before the send so the counter never under-reports: the
        // actor only decrements messages it actually received
        self.depth.fetch_add(1, Ordering::Relaxed);
        match self.tx.send(build(tx)) {
            Ok(()) => Pending::waiting(rx),
            Err(_) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Pending::failed(TrustError::ServiceStopped)
            }
        }
    }

    /// Eagerly submits one finished session for committing and returns the
    /// receipt future — the pipelining primitive: submit a window of
    /// completions first, await the receipts after, and the actor folds
    /// them in one batched drain. [`commit`](Self::commit) is this plus the
    /// immediate await.
    pub fn submit(&self, completed: CompletedDelegation<P>) -> Pending<DelegationReceipt<P>> {
        self.request(|reply| Message::Command(Command::Commit { completed, reply }))
    }

    /// Eagerly submits a whole batch of finished sessions as **one**
    /// message and returns the future of their receipts, in batch order.
    /// The actor folds the batch through a single
    /// `commit_batch_receipts` storage pass (merged with whatever else its
    /// drain finds), so a vectored submission costs one channel hop and one
    /// oneshot instead of one per session — the wire shape the sharded
    /// tier's per-shard sub-batches use.
    ///
    /// An empty batch resolves immediately with an empty receipt vector —
    /// no mailbox round trip, and (having nothing to commit) it succeeds
    /// even after the service stopped.
    pub fn submit_batch(
        &self,
        batch: Vec<CompletedDelegation<P>>,
    ) -> Pending<Vec<DelegationReceipt<P>>> {
        if batch.is_empty() {
            return Pending::ready(Vec::new());
        }
        self.request(|reply| Message::Command(Command::CommitMany { batch, reply }))
    }

    /// Commits one finished session and resolves to its receipt.
    pub async fn commit(
        &self,
        completed: CompletedDelegation<P>,
    ) -> Result<DelegationReceipt<P>, TrustError> {
        self.submit(completed).await
    }

    /// Runs the §3.3 evaluation of `request` against the service's engine
    /// (direct record → inference → gated referrals → prior) and resolves
    /// to the evaluated session.
    pub async fn evaluate(
        &self,
        request: DelegationRequest<P>,
    ) -> Result<EvaluatedDelegation<P>, TrustError> {
        self.request(|reply| Message::Query(Query::Evaluate { request, reply })).await
    }

    /// [`evaluate`](Self::evaluate) carried through to the §3.4 decision.
    /// The [`Delegate`](Decision::Delegate) arm holds the one-shot
    /// [`ActiveDelegation`](crate::delegation::ActiveDelegation) the caller
    /// finishes locally and [`commit`](Self::commit)s back.
    pub async fn delegate(&self, request: DelegationRequest<P>) -> Result<Decision<P>, TrustError> {
        Ok(self.evaluate(request).await?.into_decision())
    }

    /// The whole committed session in one round trip: the actor activates
    /// `request`, validates `outcome`, and folds it batched with adjacent
    /// commits. For callers whose delegation decision was already made
    /// upstream (a coordinator re-materializing reports, a feedback-only
    /// trustor).
    pub async fn complete(
        &self,
        request: DelegationRequest<P>,
        outcome: DelegationOutcome,
    ) -> Result<DelegationReceipt<P>, TrustError> {
        self.request(|reply| Message::Command(Command::Complete { request, outcome, reply }))
            .await?
    }

    /// Registers (or replaces) a task definition in the service's engine —
    /// inference needs the characteristic weights.
    pub async fn register_task(&self, task: Task) -> Result<(), TrustError> {
        self.request(|reply| Message::Command(Command::RegisterTask { task, reply })).await
    }

    /// Eq. 18 trustworthiness toward `(peer, task)`, `None` without direct
    /// experience.
    pub async fn trustworthiness(
        &self,
        peer: P,
        task: TaskId,
    ) -> Result<Option<Trustworthiness>, TrustError> {
        self.request(|reply| Message::Query(Query::Trustworthiness { peer, task, reply })).await
    }

    /// The record for `(peer, task)`, if any interaction happened.
    pub async fn record(&self, peer: P, task: TaskId) -> Result<Option<TrustRecord>, TrustError> {
        self.request(|reply| Message::Query(Query::Record { peer, task, reply })).await
    }

    // ---- the read-replica seam: snapshot reads, bounded staleness ------

    /// The latest published [`ReadSnapshot`] — zero mailbox traffic,
    /// infallible (the last published state keeps answering after the
    /// service stopped). See the [`replica`] module docs.
    pub fn read_snapshot(&self) -> Arc<ReadSnapshot<P>> {
        self.slot.load()
    }

    /// A zero-mailbox [`ReplicaHandle`] over this service's snapshots.
    pub fn replica(&self) -> ReplicaHandle<P> {
        ReplicaHandle::over(vec![Arc::clone(&self.slot)].into())
    }

    /// The publication slot — the sharded/remote tiers' access to this
    /// shard's snapshots.
    pub(crate) fn slot(&self) -> &Arc<ReplicaSlot<P>> {
        &self.slot
    }

    /// [`record`](Self::record) with an explicit [`Freshness`]. Under
    /// [`Freshness::Snapshot`] the read is served from the latest
    /// published snapshot while within its staleness bound and falls
    /// through to a fresh mailbox read otherwise; `Relaxed` and `Aligned`
    /// are both the ordinary mailbox read on a single actor.
    pub async fn record_with(
        &self,
        peer: P,
        task: TaskId,
        freshness: Freshness,
    ) -> Result<Option<TrustRecord>, TrustError> {
        self.record_round_with(peer, task, freshness).await
    }

    /// The eager send of [`record_with`](Self::record_with) — a snapshot
    /// hit resolves without any actor round trip.
    pub(crate) fn record_round_with(
        &self,
        peer: P,
        task: TaskId,
        freshness: Freshness,
    ) -> Pending<Option<TrustRecord>> {
        if let Freshness::Snapshot { max_epoch_lag } = freshness {
            if let Some(snap) = self.slot.fresh_within(max_epoch_lag) {
                return Pending::ready(snap.record(peer, task));
            }
        }
        self.request(|reply| Message::Query(Query::Record { peer, task, reply }))
    }

    /// [`trustworthiness`](Self::trustworthiness) with an explicit
    /// [`Freshness`] — see [`record_with`](Self::record_with).
    pub async fn trustworthiness_with(
        &self,
        peer: P,
        task: TaskId,
        freshness: Freshness,
    ) -> Result<Option<Trustworthiness>, TrustError> {
        self.trustworthiness_round_with(peer, task, freshness).await
    }

    /// The eager send of
    /// [`trustworthiness_with`](Self::trustworthiness_with).
    pub(crate) fn trustworthiness_round_with(
        &self,
        peer: P,
        task: TaskId,
        freshness: Freshness,
    ) -> Pending<Option<Trustworthiness>> {
        if let Freshness::Snapshot { max_epoch_lag } = freshness {
            if let Some(snap) = self.slot.fresh_within(max_epoch_lag) {
                return Pending::ready(snap.trustworthiness(peer, task));
            }
        }
        self.request(|reply| Message::Query(Query::Trustworthiness { peer, task, reply }))
    }

    /// [`known_peers`](Self::known_peers) with an explicit [`Freshness`]
    /// — see [`record_with`](Self::record_with).
    pub async fn known_peers_with(&self, freshness: Freshness) -> Result<Vec<P>, TrustError> {
        Ok(self.known_peers_round_with(freshness).await?.1)
    }

    /// The eager epoch-stamped send of
    /// [`known_peers_with`](Self::known_peers_with).
    pub(crate) fn known_peers_round_with(&self, freshness: Freshness) -> Pending<(u64, Vec<P>)> {
        if let Freshness::Snapshot { max_epoch_lag } = freshness {
            if let Some(snap) = self.slot.fresh_within(max_epoch_lag) {
                return Pending::ready((snap.epoch(), snap.known_peers()));
            }
        }
        self.known_peers_in(None)
    }

    /// [`task_records`](Self::task_records) with an explicit
    /// [`Freshness`] — see [`record_with`](Self::record_with).
    pub async fn task_records_with(
        &self,
        task: TaskId,
        freshness: Freshness,
    ) -> Result<Vec<(P, TrustRecord)>, TrustError> {
        Ok(self.task_records_round_with(task, freshness).await?.1)
    }

    /// The eager epoch-stamped send of
    /// [`task_records_with`](Self::task_records_with).
    pub(crate) fn task_records_round_with(
        &self,
        task: TaskId,
        freshness: Freshness,
    ) -> Pending<(u64, Vec<(P, TrustRecord)>)> {
        if let Freshness::Snapshot { max_epoch_lag } = freshness {
            if let Some(snap) = self.slot.fresh_within(max_epoch_lag) {
                return Pending::ready((snap.epoch(), snap.task_records(task)));
            }
        }
        self.task_records_in(task, None)
    }

    /// Peers with at least one record — each exactly once, ascending.
    pub async fn known_peers(&self) -> Result<Vec<P>, TrustError> {
        Ok(self.known_peers_in(None).await?.1)
    }

    /// [`Self::known_peers`] with an optional rendezvous, epoch-stamped —
    /// the sharded tier's aligned fan-out seam and the wire tier's
    /// epoch source.
    fn known_peers_in(&self, align: Option<Arc<Rendezvous>>) -> Pending<(u64, Vec<P>)> {
        self.request(|reply| Message::Query(Query::KnownPeers { align, reply }))
    }

    /// Every `(peer, record)` pair held for `task`, ascending by peer —
    /// one round trip and one consistent snapshot, where a
    /// [`known_peers`](Self::known_peers)-then-[`record`](Self::record)
    /// loop would cross the mailbox once per peer and interleave with
    /// concurrent commits. The shape ranking and fleet-survey callers
    /// want.
    pub async fn task_records(&self, task: TaskId) -> Result<Vec<(P, TrustRecord)>, TrustError> {
        Ok(self.task_records_in(task, None).await?.1)
    }

    /// [`Self::task_records`] with an optional rendezvous, epoch-stamped —
    /// the sharded tier's aligned fan-out seam and the wire tier's
    /// epoch source.
    fn task_records_in(
        &self,
        task: TaskId,
        align: Option<Arc<Rendezvous>>,
    ) -> Pending<(u64, Vec<(P, TrustRecord)>)> {
        self.request(|reply| Message::Query(Query::TaskRecords { task, align, reply }))
    }

    /// The actor's saturation counters: live mailbox depth plus the
    /// drained-commit-batch bookkeeping. See [`ShardStats`].
    pub async fn stats(&self) -> Result<ShardStats, TrustError> {
        self.stats_in().await
    }

    /// The eager [`Self::stats`] — the sharded tier's fan-out seam.
    fn stats_in(&self) -> Pending<ShardStats> {
        self.request(|reply| Message::Query(Query::Stats { reply }))
    }

    /// Pushes engine state down to stable storage (see
    /// [`TrustEngine::flush`]) and resolves once it is down.
    pub async fn flush(&self) -> Result<(), TrustError> {
        self.request(|reply| Message::Command(Command::Flush { reply })).await?
    }

    /// Stops the service gracefully: the actor finishes draining its
    /// mailbox (every queued commit is folded and acked), flushes the
    /// backend, then exits — on a durable engine, no acked commit is lost.
    /// Requests arriving after the drain fail with
    /// [`TrustError::ServiceStopped`].
    pub async fn shutdown(&self) -> Result<(), TrustError> {
        self.request(|reply| Message::Command(Command::Shutdown { reply })).await?
    }
}

/// A running trust service: the actor thread owning the engine, plus the
/// first [`TrustServiceHandle`]. See the [module docs](self).
#[derive(Debug)]
pub struct TrustService<P, B = crate::backend::BTreeBackend<P>> {
    handle: TrustServiceHandle<P>,
    thread: JoinHandle<TrustEngine<P, B>>,
}

impl<P, B> TrustService<P, B>
where
    P: Copy + Ord + Send + Sync + 'static,
    B: TrustBackend<P> + Send + 'static,
{
    /// Takes ownership of `engine` and moves it onto a dedicated actor
    /// thread. Register task definitions before spawning (or via
    /// [`TrustServiceHandle::register_task`]).
    pub fn spawn(engine: TrustEngine<P, B>, options: ServiceOptions) -> Self {
        Self::spawn_named(engine, options, "siot-trust-service".into())
    }

    /// [`Self::spawn`] with an explicit actor-thread name — the sharded
    /// tier names each shard's thread after its index.
    fn spawn_named(engine: TrustEngine<P, B>, options: ServiceOptions, name: String) -> Self {
        let capacity = options.mailbox.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
        let betas = options.betas;
        let depth = Arc::new(AtomicUsize::new(0));
        let actor_depth = Arc::clone(&depth);
        // the replica seam: seed the publisher with the engine's recovered
        // records (a reopened durable engine serves its state from epoch 0)
        // and hand the shared slot to both the actor and every handle
        let slot = ReplicaSlot::new(engine.normalizer());
        let publisher = Publisher::new(Arc::clone(&slot), options.publish_every, |sink| {
            engine.for_each_stored_record(sink)
        });
        let thread = std::thread::Builder::new()
            .name(name)
            .spawn(move || actor(engine, rx, betas, actor_depth, capacity, publisher))
            .expect("actor thread spawns");
        TrustService { handle: TrustServiceHandle { tx, depth, slot }, thread }
    }

    /// A zero-mailbox [`ReplicaHandle`] over this service's published
    /// snapshots — see the [`replica`] module docs.
    pub fn read_replica(&self) -> ReplicaHandle<P> {
        self.handle.replica()
    }

    /// A new handle to the running actor.
    pub fn handle(&self) -> TrustServiceHandle<P> {
        self.handle.clone()
    }

    /// Gracefully stops the actor ([`TrustServiceHandle::shutdown`]) and
    /// hands the engine back. If the final durable flush failed, its error
    /// is returned instead and the engine is dropped — the journal retries
    /// the flush on drop, and callers that must keep the engine on flush
    /// failure can `flush().await` through the handle first.
    pub fn shutdown(self) -> Result<TrustEngine<P, B>, TrustError> {
        let flushed = block_on(self.handle.shutdown());
        let engine = self.thread.join().map_err(|_| TrustError::WorkerPanicked)?;
        match flushed {
            // a concurrent handle already shut the actor down: the drain
            // and flush still happened, just acked to someone else
            Ok(()) | Err(TrustError::ServiceStopped) => Ok(engine),
            Err(e) => Err(e),
        }
    }
}

/// The actor loop: block on the first message, drain greedily, batch
/// adjacent commits through one `commit_batch_receipts` pass, answer
/// queries in arrival order. Exits — flushing first — on shutdown or once
/// every handle is gone; either way the engine is returned to
/// [`TrustService::shutdown`]'s `join`.
fn actor<P: Copy + Ord, B: TrustBackend<P>>(
    mut engine: TrustEngine<P, B>,
    rx: Receiver<Message<P>>,
    betas: ForgettingFactors,
    depth: Arc<AtomicUsize>,
    mailbox_capacity: usize,
    mut publisher: Publisher<P>,
) -> TrustEngine<P, B> {
    let mut pending: Vec<CompletedDelegation<P>> = Vec::new();
    let mut acks: Vec<Ack<P>> = Vec::new();
    let mut stats = ShardStats { mailbox_capacity, ..ShardStats::default() };
    'serve: loop {
        let Ok(first) = rx.recv() else {
            // every handle dropped: nothing is queued (recv only errs on
            // empty + disconnected) — flush best-effort, leave the last
            // state published for surviving replicas, and stop
            publisher.force_publish(&mut stats);
            let _ = engine.flush();
            break 'serve;
        };
        let mut next = Some(first);
        let mut stop: Vec<oneshot::Sender<Result<(), TrustError>>> = Vec::new();
        // one drain: the blocking message plus everything already queued
        loop {
            depth.fetch_sub(1, Ordering::Relaxed);
            match next.take() {
                Some(Message::Command(cmd)) => match cmd {
                    Command::Commit { completed, reply } => {
                        pending.push(completed);
                        acks.push(Ack::Commit(reply));
                    }
                    Command::CommitMany { batch, reply } => {
                        let len = batch.len();
                        pending.extend(batch);
                        acks.push(Ack::Many { reply, len });
                    }
                    Command::Complete { request, outcome, reply } => {
                        // activation against current state: for a committed
                        // session the evaluation gates nothing and the fold
                        // depends only on outcome + context, so joining the
                        // batch is exactly sequential semantics
                        match request.activate(&engine).finish(outcome) {
                            Ok(completed) => {
                                pending.push(completed);
                                acks.push(Ack::Complete(reply));
                            }
                            Err(e) => {
                                let _ = reply.send(Err(e));
                            }
                        }
                    }
                    Command::RegisterTask { task, reply } => {
                        engine.register_task(task);
                        let _ = reply.send(());
                    }
                    Command::Flush { reply } => {
                        flush_batch(
                            &mut engine,
                            &mut pending,
                            &mut acks,
                            &betas,
                            &mut stats,
                            &mut publisher,
                        );
                        let _ = reply.send(engine.flush());
                    }
                    Command::Shutdown { reply } => stop.push(reply),
                },
                Some(Message::Query(query)) => {
                    // strict arrival order: queued commits fold before the
                    // query is answered, so awaited writes are always read
                    flush_batch(
                        &mut engine,
                        &mut pending,
                        &mut acks,
                        &betas,
                        &mut stats,
                        &mut publisher,
                    );
                    match query {
                        Query::Evaluate { request, reply } => {
                            let _ = reply.send(request.evaluate(&engine));
                        }
                        Query::Trustworthiness { peer, task, reply } => {
                            let _ = reply.send(engine.trustworthiness(peer, task));
                        }
                        Query::Record { peer, task, reply } => {
                            let _ = reply.send(engine.record(peer, task));
                        }
                        Query::KnownPeers { align, reply } => {
                            // aligned: stand in the rendezvous until every
                            // shard has folded its queue and stopped
                            // mutating, then answer from that global cut
                            if let Some(rv) = align {
                                rv.arrive();
                            }
                            let _ = reply.send((stats.drains, engine.known_peers()));
                        }
                        Query::TaskRecords { task, align, reply } => {
                            if let Some(rv) = align {
                                rv.arrive();
                            }
                            let records = engine
                                .known_peers()
                                .into_iter()
                                .filter_map(|peer| engine.record(peer, task).map(|rec| (peer, rec)))
                                .collect();
                            let _ = reply.send((stats.drains, records));
                        }
                        Query::Stats { reply } => {
                            let _ = reply.send(ShardStats {
                                mailbox_depth: depth.load(Ordering::Relaxed),
                                ..stats
                            });
                        }
                    }
                }
                None => {}
            }
            match rx.try_recv() {
                Ok(msg) => next = Some(msg),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        // the drain's accumulated commit batch: one storage pass, receipts
        // fanned back out per caller
        flush_batch(&mut engine, &mut pending, &mut acks, &betas, &mut stats, &mut publisher);
        stats.drains += 1;
        if !stop.is_empty() {
            // publish whatever the policy still held back: the last
            // published state keeps serving replicas after the actor exits
            publisher.force_publish(&mut stats);
            let flushed = engine.flush();
            for reply in stop {
                let _ = reply.send(flushed.clone());
            }
            break 'serve;
        }
    }
    engine
}

/// Folds the pending commit batch in one storage pass and acks every
/// submitter with its receipt(s).
fn flush_batch<P: Copy + Ord, B: TrustBackend<P>>(
    engine: &mut TrustEngine<P, B>,
    pending: &mut Vec<CompletedDelegation<P>>,
    acks: &mut Vec<Ack<P>>,
    betas: &ForgettingFactors,
    stats: &mut ShardStats,
    publisher: &mut Publisher<P>,
) {
    if pending.is_empty() {
        return;
    }
    let folded = pending.len();
    stats.committed += folded as u64;
    stats.commit_batches += 1;
    stats.largest_commit_batch = stats.largest_commit_batch.max(folded);
    stats.last_commit_batch = folded;
    let receipts = engine.commit_batch_receipts(std::mem::take(pending), betas);
    // ack-after-sync: `commit_batch_receipts` ends with the group-commit
    // barrier, so by this line every frame of the drained batch is covered
    // by one fsync (under FsyncPolicy::Always). The explicit barrier
    // restates the seam — it is free when already clean — and only then do
    // the held receipts go back to their callers: an acked receipt is a
    // durable receipt.
    let _ = engine.commit_barrier();
    // publish-before-ack: each receipt carries the absolute post-fold
    // record, so the replica mirror folds from the receipts alone; with
    // the default policy the snapshot is published here, so an awaited
    // commit is already visible to snapshot reads when its ack lands
    for receipt in &receipts {
        publisher.apply(receipt);
    }
    publisher.folded(stats.drains + 1, stats);
    let mut receipts = receipts.into_iter();
    for ack in acks.drain(..) {
        match ack {
            Ack::Commit(reply) => {
                let _ = reply.send(receipts.next().expect("one receipt per commit"));
            }
            Ack::Complete(reply) => {
                let _ = reply.send(Ok(receipts.next().expect("one receipt per commit")));
            }
            Ack::Many { reply, len } => {
                let _ = reply.send(receipts.by_ref().take(len).collect());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ShardedBackend;
    use crate::context::Context;
    use crate::goal::Goal;
    use crate::record::Observation;
    use crate::store::TrustStore;
    use crate::task::CharacteristicId;

    fn task(id: u32) -> Task {
        Task::uniform(TaskId(id), [CharacteristicId(0)]).unwrap()
    }

    fn committed_request(peer: u32, t: &Task) -> DelegationRequest<u32> {
        DelegationRequest::new(peer, t, Goal::ANY, Context::amicable(t.id())).committed()
    }

    #[test]
    fn session_lifecycle_over_the_wire() {
        let mut engine: TrustStore<u32> = TrustStore::new();
        let t = task(0);
        engine.register_task(t.clone());
        let service = TrustService::spawn(engine, ServiceOptions::default());
        let handle = service.handle();

        block_on(async {
            let request =
                DelegationRequest::new(7, &t, Goal::profitable(), Context::amicable(t.id()))
                    .with_prior(TrustRecord::with_priors(1.0, 1.0, 0.0, 0.0));
            let Decision::Delegate(active) = handle.delegate(request).await.unwrap() else {
                panic!("optimistic prior delegates")
            };
            let completed = active.finish(DelegationOutcome::succeeded(0.9, 0.2)).unwrap();
            let receipt = handle.commit(completed).await.unwrap();
            assert!(receipt.fulfilled);
            assert_eq!(receipt.record.interactions, 1);

            // read-your-write: the awaited commit is visible to queries
            let tw = handle.trustworthiness(7, t.id()).await.unwrap().unwrap();
            assert!(tw.value() > 0.5);
            assert_eq!(handle.known_peers().await.unwrap(), vec![7]);
            assert!(handle.record(9, t.id()).await.unwrap().is_none());
            let snapshot = handle.task_records(t.id()).await.unwrap();
            assert_eq!(snapshot.len(), 1);
            assert_eq!(snapshot[0].0, 7);
            assert_eq!(snapshot[0].1, receipt.record);
        });

        let engine = service.shutdown().unwrap();
        assert_eq!(engine.record_count(), 1);
        assert_eq!(engine.usage_log(7).responsive, 1);
    }

    #[test]
    fn complete_is_one_round_trip_and_validates() {
        let service = TrustService::spawn(TrustStore::<u32>::new(), ServiceOptions::default());
        let handle = service.handle();
        let t = task(0);
        block_on(async {
            let receipt = handle
                .complete(committed_request(3, &t), DelegationOutcome::failed(0.8, 0.3).abusive())
                .await
                .unwrap();
            assert!(!receipt.fulfilled);

            let bad = DelegationOutcome::observed(Observation {
                success_rate: f64::NAN,
                gain: 0.0,
                damage: 0.0,
                cost: 0.0,
            });
            let err = handle.complete(committed_request(3, &t), bad).await.unwrap_err();
            assert!(matches!(err, TrustError::OutOfUnitRange { .. }));
        });
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.record(3, t.id()).unwrap().interactions, 1, "invalid outcome not folded");
        assert_eq!(engine.usage_log(3).abusive, 1);
    }

    #[test]
    fn pipelined_submissions_match_sequential_commits() {
        let t = task(0);
        let betas = ServiceOptions::default().betas;
        let outcomes: Vec<(u32, f64)> =
            (0..200u32).map(|i| (i % 9, (i % 7) as f64 / 6.0)).collect();

        // reference: the same stream folded synchronously
        let mut reference: TrustStore<u32> = TrustStore::new();
        for &(peer, q) in &outcomes {
            let scratch: TrustStore<u32> = TrustStore::new();
            let completed = committed_request(peer, &t)
                .activate(&scratch)
                .finish(DelegationOutcome::succeeded(q, 0.1))
                .unwrap();
            reference.commit(completed, &betas);
        }

        let service = TrustService::spawn(TrustStore::<u32>::new(), ServiceOptions::default());
        let handle = service.handle();
        let scratch: TrustStore<u32> = TrustStore::new();
        let pending: Vec<_> = outcomes
            .iter()
            .map(|&(peer, q)| {
                let completed = committed_request(peer, &t)
                    .activate(&scratch)
                    .finish(DelegationOutcome::succeeded(q, 0.1))
                    .unwrap();
                handle.submit(completed)
            })
            .collect();
        for p in pending {
            block_on(p).unwrap();
        }
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.record_count(), reference.record_count());
        for peer in reference.known_peers() {
            assert_eq!(engine.record(peer, t.id()), reference.record(peer, t.id()));
            assert_eq!(engine.usage_log(peer), reference.usage_log(peer));
        }
    }

    #[test]
    fn concurrent_handles_commit_through_a_sharded_backend() {
        let engine: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        let service = TrustService::spawn(engine, ServiceOptions::default());
        let t = task(0);
        std::thread::scope(|scope| {
            for worker in 0..4u32 {
                let handle = service.handle();
                let t = t.clone();
                scope.spawn(move || {
                    for i in 0..50u32 {
                        let peer = worker * 1000 + i;
                        block_on(handle.complete(
                            committed_request(peer, &t),
                            DelegationOutcome::succeeded(0.8, 0.1),
                        ))
                        .unwrap();
                    }
                });
            }
        });
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.record_count(), 200);
        assert_eq!(engine.known_peers().len(), 200);
    }

    #[test]
    fn requests_after_shutdown_fail_typed() {
        let service = TrustService::spawn(TrustStore::<u32>::new(), ServiceOptions::default());
        let handle = service.handle();
        let spare = handle.clone();
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.record_count(), 0);
        block_on(async {
            assert_eq!(spare.known_peers().await.unwrap_err(), TrustError::ServiceStopped);
            assert_eq!(handle.flush().await.unwrap_err(), TrustError::ServiceStopped);
            let t = task(0);
            let scratch: TrustStore<u32> = TrustStore::new();
            let completed = committed_request(1, &t)
                .activate(&scratch)
                .finish(DelegationOutcome::succeeded(0.5, 0.1))
                .unwrap();
            assert_eq!(spare.commit(completed).await.unwrap_err(), TrustError::ServiceStopped);
        });
    }

    #[test]
    fn dropping_every_handle_stops_the_actor() {
        let service = TrustService::spawn(TrustStore::<u32>::new(), ServiceOptions::default());
        let t = task(0);
        let handle = service.handle();
        block_on(handle.complete(committed_request(2, &t), DelegationOutcome::succeeded(0.9, 0.1)))
            .unwrap();
        drop(handle);
        // TrustService::shutdown still works: its own handle is the last one
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.record(2, t.id()).unwrap().interactions, 1);
    }

    #[test]
    fn register_task_enables_inference_queries() {
        let service = TrustService::spawn(TrustStore::<u32>::new(), ServiceOptions::default());
        let handle = service.handle();
        let gps = task(0);
        let image = Task::uniform(TaskId(1), [CharacteristicId(1)]).unwrap();
        let combined =
            Task::uniform(TaskId(2), [CharacteristicId(0), CharacteristicId(1)]).unwrap();
        block_on(async {
            handle.register_task(gps.clone()).await.unwrap();
            handle.register_task(image.clone()).await.unwrap();
            for t in [&gps, &image] {
                handle
                    .complete(committed_request(5, t), DelegationOutcome::succeeded(1.0, 0.0))
                    .await
                    .unwrap();
            }
            let evaluated = handle
                .evaluate(DelegationRequest::new(
                    5,
                    &combined,
                    Goal::profitable(),
                    Context::amicable(combined.id()),
                ))
                .await
                .unwrap();
            assert_eq!(evaluated.basis(), crate::delegation::EvaluationBasis::Inferred);
            assert!(evaluated.would_delegate());
        });
        service.shutdown().unwrap();
    }
}
