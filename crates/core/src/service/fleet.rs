//! Fault-tolerant trust fleets: one routing handle over N
//! [`RemoteTrustServer`] nodes, built to keep answering while nodes die.
//!
//! The [sharded service](crate::service::sharded) routes peers across
//! actors inside one process; this module lifts the same stable routing
//! rule ([`shard_index`]: std `DefaultHasher` mod N — deterministic
//! across processes) to the wire, across N independently-failing TCP
//! nodes. What changes is not the API but the failure model, and the
//! fleet handle owns all of it:
//!
//! - **Deadlines** — every request carries an absolute deadline
//!   ([`FleetOptions::request_deadline`]); a request that cannot complete
//!   in time resolves to a typed [`TrustError::TimedOut`], never a hang.
//!   This covers the nasty cases: servers that accept but never answer,
//!   proxies that swallow responses, reconnect storms. A connection that
//!   misses a deadline is **dropped** — a transport that accepted a
//!   request and never answered cannot be trusted with the next one, so
//!   the next request reconnects instead of timing out forever.
//! - **Reconnect** — a dead connection is retried with capped exponential
//!   backoff plus deterministic jitter (vendored xoshiro256++ per node).
//!   The first death earns an immediate reconnect; repeated failures back
//!   off to [`FleetOptions::backoff_cap`].
//! - **Idempotent commits** — commits travel as `(session, seq)`-tagged
//!   chunks ([`RemoteTrustServiceHandle::submit_batch_tagged`]) that the
//!   server deduplicates ([`DedupWindow`]): a chunk retried after a
//!   connection loss **replays its receipts instead of folding again**,
//!   so a retried commit can never double-count an observation. Use
//!   [`prepare`](FleetTrustHandle::prepare) /
//!   [`submit_prepared`](FleetTrustHandle::submit_prepared) to keep the
//!   same tags across *caller-level* retries too.
//! - **Graceful degradation** — a down node fails only its own key
//!   range, with a typed [`TrustError::NodeUnavailable`] naming the
//!   address; requests routed to live nodes are untouched. Broadcast
//!   reads ([`known_peers_cut`](FleetTrustHandle::known_peers_cut),
//!   [`task_records_cut`](FleetTrustHandle::task_records_cut)) merge the
//!   live nodes and *report* the missing ones in the returned
//!   [`FleetCut`] instead of failing the whole query.
//!
//! Retry policy per operation, driven by what is safe:
//!
//! | operation | on dead transport |
//! |---|---|
//! | tagged commits (`submit`, `submit_batch`, `submit_prepared`) | reconnect + resend same tag, waiting through backoff, until the deadline — exactly-once via the dedup window |
//! | reads (`evaluate`, `trustworthiness`, `record`, cuts) | reconnect once if possible, else fail fast `NodeUnavailable` — reads are safe to retry but not worth waiting for |
//! | snapshot-freshness cuts ([`Freshness::Snapshot`]) | as reads, but an unreachable node's range is served from the handle's **stale cache** (its last snapshot answer) and stamped in [`FleetCut::stale`] — degraded reads stay typed and total instead of dropping key ranges |
//! | `register_task`, `flush` | retried like commits (idempotent) |
//! | `complete` | **never retried** — it folds server-side without a tag; an ambiguous transport death surfaces as `NodeUnavailable`. Use the tagged commit path when exactness matters. |
//!
//! A node taken down for maintenance can be brought back on a *different*
//! address with [`replace_node`](FleetTrustHandle::replace_node) — the
//! key range is positional, so the mapping survives as long as the
//! address list keeps its order and length. Pair it with
//! [`RemoteTrustServer::bind_with`] (same [`DedupWindow`], after a
//! graceful drain) and commits retried across the restart still replay
//! instead of re-folding.
//!
//! Consistency note: an [`Freshness::Aligned`] fleet cut is aligned *per
//! node* — each node runs its own rendezvous barrier — not across nodes.
//! Per-node epoch vectors come back in [`FleetCut::epochs`] so callers
//! can compare cuts node-wise, exactly like the single-process story.
//!
//! [`RemoteTrustServer`]: crate::service::remote::RemoteTrustServer
//! [`RemoteTrustServer::bind_with`]: crate::service::remote::RemoteTrustServer::bind_with
//! [`DedupWindow`]: crate::service::remote::DedupWindow
//! [`shard_index`]: crate::service::sharded::ShardedTrustServiceHandle::shard_of

use std::collections::HashMap;
use std::future::Future;
use std::hash::Hash;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::task::{Context, Poll, Waker};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::delegation::{
    CompletedDelegation, Decision, DelegationOutcome, DelegationReceipt, DelegationRequest,
    EvaluatedDelegation,
};
use crate::error::TrustError;
use crate::log_backend::LogKey;
use crate::record::TrustRecord;
use crate::service::remote::{wire, RemotePending, RemoteTrustServiceHandle, BATCH_CHUNK};
use crate::service::sharded::{shard_index, Freshness};
use crate::service::ShardStats;
use crate::task::{Task, TaskId};
use crate::tw::Trustworthiness;

/// Tuning for a [`FleetTrustHandle`]. Every field has a sensible default;
/// build with struct-update syntax:
/// `FleetOptions { request_deadline: Duration::from_secs(5), ..FleetOptions::default() }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetOptions {
    /// Absolute budget for one fleet operation, reconnects and retries
    /// included. On expiry the operation resolves to
    /// [`TrustError::TimedOut`].
    pub request_deadline: Duration,
    /// Budget for one TCP connect + banner handshake against one node.
    pub connect_timeout: Duration,
    /// First reconnect backoff step (doubles per consecutive failure).
    pub backoff_base: Duration,
    /// Ceiling on the reconnect backoff.
    pub backoff_cap: Duration,
    /// Seed for the per-node jitter generators — fleets with the same
    /// seed jitter identically, which keeps failure tests reproducible.
    pub seed: u64,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            request_deadline: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(5),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            seed: 0x5107_F1EE7,
        }
    }
}

/// A consistent-per-node answer to a fleet broadcast: the merged value
/// from every **live** node, the per-node epoch vectors, and the nodes
/// that could not answer. See the [module docs](self) for what "aligned"
/// means across a fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCut<T> {
    /// The merged answer from every live node (peers are disjoint across
    /// nodes by routing, so merging is lossless).
    pub value: T,
    /// One epoch vector per node, indexed by node position — the same
    /// vectors a [`Cut`](crate::service::Cut) from that node would carry.
    /// Empty for nodes listed in [`missing`](Self::missing); for nodes in
    /// [`stale`](Self::stale) these are the epochs the cached answer was
    /// taken at, so the caller can see exactly how old its data is.
    pub epochs: Vec<Vec<u64>>,
    /// `(node index, address)` of every node that failed to answer — its
    /// key range is absent from [`value`](Self::value).
    pub missing: Vec<(usize, String)>,
    /// `(node index, address)` of every node whose key range was served
    /// from the fleet handle's **stale cache** — the node was unreachable
    /// (reconnecting, saturated, mid-restart) under
    /// [`Freshness::Snapshot`], so the last snapshot answer it gave was
    /// used instead of failing the range. The staleness is typed, never
    /// silent: the node is listed here and its cached epochs stay in
    /// [`epochs`](Self::epochs). Always empty under
    /// [`Freshness::Relaxed`]/[`Freshness::Aligned`].
    pub stale: Vec<(usize, String)>,
}

impl<T> FleetCut<T> {
    /// Whether every node's key range is covered — live or stale. A stale
    /// range still holds real (older) data; only
    /// [`missing`](Self::missing) ranges are absent from the value.
    pub fn complete(&self) -> bool {
        self.missing.is_empty()
    }

    /// Whether every node answered **live** — no range is missing and
    /// none was served from the stale cache.
    pub fn fully_fresh(&self) -> bool {
        self.missing.is_empty() && self.stale.is_empty()
    }
}

/// One node's health and saturation, from
/// [`FleetTrustHandle::node_stats`].
#[derive(Debug, Clone)]
pub struct NodeStats {
    /// The node's configured address.
    pub addr: String,
    /// Per-shard counters served by the node, or `None` if it was
    /// unreachable when sampled.
    pub shards: Option<Vec<ShardStats>>,
}

impl NodeStats {
    /// Whether the node answered the stats query.
    pub fn reachable(&self) -> bool {
        self.shards.is_some()
    }

    /// The node's worst shard [`saturation`](ShardStats::saturation), or
    /// `None` if unreachable — the single number a fleet dashboard ranks
    /// nodes by.
    pub fn saturation(&self) -> Option<f64> {
        self.shards.as_ref().map(|s| s.iter().map(ShardStats::saturation).fold(0.0, f64::max))
    }
}

/// A routed batch with its idempotency tags already assigned, from
/// [`FleetTrustHandle::prepare`]. Submitting the *same* `StampedBatch`
/// again ([`FleetTrustHandle::submit_prepared`]) reuses the same
/// `(session, seq)` tags, so even caller-level retries — say, after a
/// [`TrustError::TimedOut`] whose fate was unknown — can never fold a
/// session twice.
#[derive(Debug, Clone)]
pub struct StampedBatch<P> {
    len: usize,
    parts: Vec<TaggedPart<P>>,
}

impl<P> StampedBatch<P> {
    /// Sessions in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[derive(Debug, Clone)]
struct TaggedPart<P> {
    node: usize,
    /// The chunk's `CommitManySeq` request tail, encoded exactly once at
    /// [`FleetTrustHandle::prepare`] time (the sessions themselves are
    /// consumed — [`CompletedDelegation`] stays un-clonable). Every retry
    /// resends these identical bytes under the same `(session, seq)` tag.
    tail: Arc<[u8]>,
    /// Positions of the chunk's sessions in the original batch, for
    /// re-assembling receipts in submission order.
    positions: Vec<usize>,
    _peer: std::marker::PhantomData<fn(P) -> P>,
}

struct NodeSlot<P> {
    addr: String,
    conn: Option<RemoteTrustServiceHandle<P>>,
    /// A thread is inside `connect_with` for this node right now.
    connecting: bool,
    /// Consecutive reconnect failures since the last success.
    attempt: u32,
    /// No reconnect before this instant (backoff).
    retry_at: Instant,
    rng: SmallRng,
    /// The node's last successful broadcast answers — what
    /// [`Freshness::Snapshot`] cut reads fall back to while the node is
    /// unreachable (see [`FleetCut::stale`]).
    stale: StaleCache<P>,
}

/// A cached broadcast answer paired with the epoch vector it was taken at.
type Stamped<T> = (Vec<u64>, T);

/// Per-node cache of the last successfully observed broadcast answers,
/// each paired with the epoch vector it was taken at. Bounded: one peer
/// list plus one record table per distinct task ever queried.
struct StaleCache<P> {
    known_peers: Option<Stamped<Vec<P>>>,
    task_records: HashMap<TaskId, Stamped<Vec<(P, TrustRecord)>>>,
}

impl<P> StaleCache<P> {
    fn new() -> Self {
        StaleCache { known_peers: None, task_records: HashMap::new() }
    }
}

/// The fault-tolerant routing handle over a fleet of
/// [`RemoteTrustServer`](crate::service::remote::RemoteTrustServer)
/// nodes. Cloning is cheap; clones share connections, backoff state, and
/// the commit-tag session. See the [module docs](self) for the failure
/// model and retry policy.
#[derive(Debug)]
pub struct FleetTrustHandle<P> {
    nodes: Arc<[Mutex<NodeSlot<P>>]>,
    options: FleetOptions,
    /// This handle's commit-tag session — process-unique, shared by
    /// clones so their seqs never collide.
    session: u64,
    next_seq: Arc<AtomicU64>,
}

impl<P> Clone for FleetTrustHandle<P> {
    fn clone(&self) -> Self {
        FleetTrustHandle {
            nodes: Arc::clone(&self.nodes),
            options: self.options.clone(),
            session: self.session,
            next_seq: Arc::clone(&self.next_seq),
        }
    }
}

impl<P> std::fmt::Debug for NodeSlot<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeSlot")
            .field("addr", &self.addr)
            .field("connected", &self.conn.is_some())
            .field("attempt", &self.attempt)
            .finish()
    }
}

type BoxFut<T> = Pin<Box<dyn Future<Output = Result<T, TrustError>> + Send>>;

/// A chunk's eager first attempt: the in-flight receipts plus the
/// connection that carries them (`None` when the node had no live
/// connection at submit time).
type EagerAttempt<P> =
    Option<(RemotePending<Vec<DelegationReceipt<P>>>, RemoteTrustServiceHandle<P>)>;

impl<P: LogKey + Hash + Send + 'static> FleetTrustHandle<P> {
    /// Connects to every node address with default [`FleetOptions`].
    /// Node order is the routing table — every handle to this fleet must
    /// list the same addresses in the same order.
    ///
    /// Succeeds if **at least one** node is reachable: unreachable nodes
    /// start in backoff and their key ranges answer
    /// [`TrustError::NodeUnavailable`] until they come up. Fails with the
    /// first node's typed connect error only when *no* node answered.
    pub fn connect<A: Into<String>>(
        addrs: impl IntoIterator<Item = A>,
    ) -> Result<Self, TrustError> {
        Self::connect_opts(addrs, FleetOptions::default())
    }

    /// [`connect`](Self::connect) with explicit [`FleetOptions`].
    pub fn connect_opts<A: Into<String>>(
        addrs: impl IntoIterator<Item = A>,
        options: FleetOptions,
    ) -> Result<Self, TrustError> {
        let addrs: Vec<String> = addrs.into_iter().map(Into::into).collect();
        if addrs.is_empty() {
            return Err(TrustError::Io("a fleet needs at least one node address".into()));
        }
        let now = Instant::now();
        let mut first_err = None;
        let mut live = 0usize;
        let slots: Vec<Mutex<NodeSlot<P>>> = addrs
            .into_iter()
            .enumerate()
            .map(|(i, addr)| {
                let conn = match RemoteTrustServiceHandle::connect_with(
                    addr.as_str(),
                    options.connect_timeout,
                ) {
                    Ok(conn) => {
                        live += 1;
                        Some(conn)
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                        None
                    }
                };
                let mut rng =
                    SmallRng::seed_from_u64(options.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
                let attempt = u32::from(conn.is_none());
                let retry_at = if conn.is_some() {
                    now
                } else {
                    now + jittered(options.backoff_base, options.backoff_cap, 0, &mut rng)
                };
                Mutex::new(NodeSlot {
                    addr,
                    conn,
                    connecting: false,
                    attempt,
                    retry_at,
                    rng,
                    stale: StaleCache::new(),
                })
            })
            .collect();
        if live == 0 {
            return Err(first_err.expect("at least one address was tried"));
        }
        Ok(FleetTrustHandle {
            nodes: slots.into(),
            options,
            session: fresh_session(),
            next_seq: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Nodes in the fleet.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node index `peer`'s records live on — the same stable
    /// `DefaultHasher`-mod-N rule the sharded tier uses, computable from
    /// the address list alone.
    pub fn node_of(&self, peer: P) -> usize {
        shard_index(&peer, self.nodes.len())
    }

    /// The configured address of node `index`.
    pub fn node_addr(&self, index: usize) -> String {
        self.nodes[index].lock().expect("fleet node slot").addr.clone()
    }

    /// Points node `index` at a new address — the supervisor's seam for
    /// bringing a restarted node back on a different port. The old
    /// connection (if any) is dropped and the backoff state reset, so the
    /// next request routed there reconnects immediately.
    pub fn replace_node(&self, index: usize, addr: impl Into<String>) {
        let mut slot = self.nodes[index].lock().expect("fleet node slot");
        slot.addr = addr.into();
        slot.conn = None;
        slot.attempt = 0;
        slot.retry_at = Instant::now();
    }

    // ---- commits: the idempotent tagged path --------------------------

    /// Routes and chunks `batch` across the fleet and assigns each chunk
    /// its `(session, seq)` idempotency tag. Submit with
    /// [`submit_prepared`](Self::submit_prepared) — as many times as it
    /// takes.
    pub fn prepare(&self, batch: Vec<CompletedDelegation<P>>) -> StampedBatch<P> {
        let n = self.nodes.len();
        let len = batch.len();
        let mut routed: Vec<(Vec<CompletedDelegation<P>>, Vec<usize>)> =
            (0..n).map(|_| (Vec::new(), Vec::new())).collect();
        for (i, completed) in batch.into_iter().enumerate() {
            let node = shard_index(&completed.trustee(), n);
            routed[node].0.push(completed);
            routed[node].1.push(i);
        }
        let mut parts = Vec::new();
        for (node, (mut chunk, mut positions)) in routed.into_iter().enumerate() {
            while !chunk.is_empty() {
                let split = chunk.len().min(BATCH_CHUNK);
                let rest = chunk.split_off(split);
                let rest_pos = positions.split_off(split);
                let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
                parts.push(TaggedPart {
                    node,
                    tail: wire::commit_many_seq_tail(self.session, seq, &chunk).into(),
                    positions,
                    _peer: std::marker::PhantomData,
                });
                chunk = rest;
                positions = rest_pos;
            }
        }
        StampedBatch { len, parts }
    }

    /// Submits a [`StampedBatch`], resolving to its receipts in original
    /// batch order. The first attempt per chunk goes out **eagerly** on
    /// live connections (pipelining works like the plain remote handle);
    /// chunks on dead nodes reconnect through backoff and resend the same
    /// tag until they succeed or the deadline expires. Because tags are
    /// deduplicated server-side, no amount of retrying — including
    /// calling this again with the same batch — can fold a session twice.
    pub fn submit_prepared(
        &self,
        stamped: &StampedBatch<P>,
    ) -> impl Future<Output = Result<Vec<DelegationReceipt<P>>, TrustError>> {
        let deadline = Instant::now() + self.options.request_deadline;
        // eager first attempts: frames hit the wire before first poll
        let eager: Vec<EagerAttempt<P>> = stamped
            .parts
            .iter()
            .map(|part| {
                self.conn_now(part.node)
                    .map(|conn| (conn.send_tail(&part.tail, wire::decode_receipts::<P>), conn))
            })
            .collect();
        let parts = stamped.parts.clone();
        let total = stamped.len;
        let this = self.clone();
        async move {
            let mut receipts: Vec<Option<DelegationReceipt<P>>> =
                (0..total).map(|_| None).collect();
            for (part, eager) in parts.iter().zip(eager) {
                let got = this.drive_part(part, eager, deadline).await?;
                for (&pos, receipt) in part.positions.iter().zip(got) {
                    receipts[pos] = Some(receipt);
                }
            }
            Ok(receipts.into_iter().map(|r| r.expect("every position filled")).collect())
        }
    }

    /// Prepares and submits `batch` in one call — the common path when no
    /// caller-level retry is needed (the fleet still retries internally
    /// up to the deadline, with full idempotency).
    pub fn submit_batch(
        &self,
        batch: Vec<CompletedDelegation<P>>,
    ) -> impl Future<Output = Result<Vec<DelegationReceipt<P>>, TrustError>> {
        let stamped = self.prepare(batch);
        self.submit_prepared(&stamped)
    }

    /// Commits one finished session through the tagged path.
    pub fn submit(
        &self,
        completed: CompletedDelegation<P>,
    ) -> impl Future<Output = Result<DelegationReceipt<P>, TrustError>> {
        let fut = self.submit_batch(vec![completed]);
        async move { Ok(fut.await?.pop().expect("one receipt per session")) }
    }

    /// Drives one tagged chunk to receipts: eager attempt first, then
    /// reconnect-and-resend (same tag) until success, a final error, or
    /// the deadline.
    async fn drive_part(
        &self,
        part: &TaggedPart<P>,
        eager: EagerAttempt<P>,
        deadline: Instant,
    ) -> Result<Vec<DelegationReceipt<P>>, TrustError> {
        if let Some((pending, conn)) = eager {
            match with_deadline(pending, deadline).await {
                Err(ref e) if transport_failure(e, &conn) => {}
                Err(TrustError::TimedOut) => {
                    self.quarantine(part.node);
                    return Err(TrustError::TimedOut);
                }
                other => return other,
            }
        }
        loop {
            let conn = self.conn_ready(part.node, deadline, true).await?;
            let pending = conn.send_tail(&part.tail, wire::decode_receipts::<P>);
            match with_deadline(pending, deadline).await {
                Err(ref e) if transport_failure(e, &conn) => continue,
                Err(TrustError::TimedOut) => {
                    self.quarantine(part.node);
                    return Err(TrustError::TimedOut);
                }
                other => return other,
            }
        }
    }

    // ---- routed reads and sessions ------------------------------------

    /// Runs the §3.3 evaluation on the trustee's home node.
    pub fn evaluate(
        &self,
        request: DelegationRequest<P>,
    ) -> impl Future<Output = Result<EvaluatedDelegation<P>, TrustError>> {
        let node = shard_index(&request.trustee(), self.nodes.len());
        let this = self.clone();
        async move {
            this.read_op(node, move |conn| {
                let request = request.clone();
                Box::pin(async move { conn.evaluate(request).await })
            })
            .await
        }
    }

    /// [`evaluate`](Self::evaluate) carried through to the §3.4 decision.
    pub fn delegate(
        &self,
        request: DelegationRequest<P>,
    ) -> impl Future<Output = Result<Decision<P>, TrustError>> {
        let fut = self.evaluate(request);
        async move { Ok(fut.await?.into_decision()) }
    }

    /// The whole session in one round trip on the trustee's home node.
    /// **Not retried** on transport death (it folds server-side without
    /// an idempotency tag): an ambiguous failure surfaces as
    /// [`TrustError::NodeUnavailable`]. Prefer
    /// [`evaluate`](Self::evaluate) + [`submit`](Self::submit) when
    /// exactness across failures matters.
    pub fn complete(
        &self,
        request: DelegationRequest<P>,
        outcome: DelegationOutcome,
    ) -> impl Future<Output = Result<DelegationReceipt<P>, TrustError>> {
        let node = shard_index(&request.trustee(), self.nodes.len());
        let this = self.clone();
        async move {
            let deadline = Instant::now() + this.options.request_deadline;
            let conn = this.conn_ready(node, deadline, false).await?;
            match with_deadline(Box::pin(conn.complete(request, outcome)), deadline).await {
                Err(ref e) if transport_failure(e, &conn) => {
                    Err(TrustError::NodeUnavailable { addr: this.node_addr(node) })
                }
                Err(TrustError::TimedOut) => {
                    this.quarantine(node);
                    Err(TrustError::TimedOut)
                }
                other => other,
            }
        }
    }

    /// Eq. 18 trustworthiness toward `(peer, task)`, from `peer`'s home
    /// node ([`Freshness::Relaxed`]).
    pub fn trustworthiness(
        &self,
        peer: P,
        task: TaskId,
    ) -> impl Future<Output = Result<Option<Trustworthiness>, TrustError>> {
        self.trustworthiness_with(peer, task, Freshness::Relaxed)
    }

    /// [`trustworthiness`](Self::trustworthiness) at an explicit
    /// freshness. Under [`Freshness::Snapshot`] the home node answers off
    /// its published replica snapshot without touching the write path —
    /// the read stays fast even when the node's mailboxes are saturated
    /// with commits.
    pub fn trustworthiness_with(
        &self,
        peer: P,
        task: TaskId,
        freshness: Freshness,
    ) -> impl Future<Output = Result<Option<Trustworthiness>, TrustError>> {
        let node = self.node_of(peer);
        let this = self.clone();
        async move {
            this.read_op(node, move |conn| {
                Box::pin(async move { conn.trustworthiness_with(peer, task, freshness).await })
            })
            .await
        }
    }

    /// The record for `(peer, task)`, from `peer`'s home node
    /// ([`Freshness::Relaxed`]).
    pub fn record(
        &self,
        peer: P,
        task: TaskId,
    ) -> impl Future<Output = Result<Option<TrustRecord>, TrustError>> {
        self.record_with(peer, task, Freshness::Relaxed)
    }

    /// [`record`](Self::record) at an explicit freshness.
    pub fn record_with(
        &self,
        peer: P,
        task: TaskId,
        freshness: Freshness,
    ) -> impl Future<Output = Result<Option<TrustRecord>, TrustError>> {
        let node = self.node_of(peer);
        let this = self.clone();
        async move {
            this.read_op(node, move |conn| {
                Box::pin(async move { conn.record_with(peer, task, freshness).await })
            })
            .await
        }
    }

    /// One routed read with the read-path retry policy: if the transport
    /// died, one immediate reconnect is attempted; a node in backoff
    /// fails fast with [`TrustError::NodeUnavailable`].
    async fn read_op<T>(
        &self,
        node: usize,
        op: impl Fn(RemoteTrustServiceHandle<P>) -> BoxFut<T>,
    ) -> Result<T, TrustError> {
        let deadline = Instant::now() + self.options.request_deadline;
        loop {
            let conn = self.conn_ready(node, deadline, false).await?;
            match with_deadline(op(conn.clone()), deadline).await {
                Err(ref e) if transport_failure(e, &conn) => continue,
                Err(TrustError::TimedOut) => {
                    self.quarantine(node);
                    return Err(TrustError::TimedOut);
                }
                other => return other,
            }
        }
    }

    // ---- broadcasts ----------------------------------------------------

    /// Registers `task` on **every** node (idempotent — retried through
    /// reconnects like a commit). Fails with the first node error after
    /// attempting all nodes, so live nodes are registered even when one
    /// is down.
    pub fn register_task(&self, task: Task) -> impl Future<Output = Result<(), TrustError>> {
        let this = self.clone();
        async move {
            this.broadcast_retry(move |conn| {
                let task = task.clone();
                Box::pin(async move { conn.register_task(task).await })
            })
            .await
        }
    }

    /// Flushes every node's served engines to stable storage (idempotent,
    /// retried like a commit).
    pub fn flush(&self) -> impl Future<Output = Result<(), TrustError>> {
        let this = self.clone();
        async move { this.broadcast_retry(|conn| Box::pin(async move { conn.flush().await })).await }
    }

    /// Stops the trust service on every reachable node. A node that
    /// cannot be reached keeps its error ([`TrustError::NodeUnavailable`])
    /// — the caller decides whether an unreachable node still counts as
    /// stopped. The remaining nodes are stopped regardless.
    pub fn shutdown(&self) -> impl Future<Output = Result<(), TrustError>> {
        let this = self.clone();
        async move {
            let deadline = Instant::now() + this.options.request_deadline;
            let mut first_err = None;
            for node in 0..this.nodes.len() {
                let result = match this.conn_ready(node, deadline, false).await {
                    Ok(conn) => with_deadline(Box::pin(conn.shutdown()), deadline).await,
                    Err(e) => Err(e),
                };
                if let Err(e) = result {
                    first_err.get_or_insert(e);
                }
            }
            match first_err {
                None => Ok(()),
                Some(e) => Err(e),
            }
        }
    }

    async fn broadcast_retry(
        &self,
        op: impl Fn(RemoteTrustServiceHandle<P>) -> BoxFut<()>,
    ) -> Result<(), TrustError> {
        let deadline = Instant::now() + self.options.request_deadline;
        let mut first_err = None;
        for node in 0..self.nodes.len() {
            let result = loop {
                match self.conn_ready(node, deadline, true).await {
                    Ok(conn) => match with_deadline(op(conn.clone()), deadline).await {
                        Err(ref e) if transport_failure(e, &conn) => continue,
                        Err(TrustError::TimedOut) => {
                            self.quarantine(node);
                            break Err(TrustError::TimedOut);
                        }
                        other => break other,
                    },
                    Err(e) => break Err(e),
                }
            };
            if let Err(e) = result {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Peers with at least one record anywhere in the fleet, ascending,
    /// merged from every **live** node ([`Freshness::Relaxed`]; down
    /// nodes' key ranges are simply absent — take
    /// [`known_peers_cut`](Self::known_peers_cut) to see which).
    pub fn known_peers(&self) -> impl Future<Output = Result<Vec<P>, TrustError>> {
        let fut = self.known_peers_cut(Freshness::Relaxed);
        async move { Ok(fut.await?.value) }
    }

    /// The fleet-wide peer list as a [`FleetCut`]: merged live values,
    /// per-node epoch vectors, and the missing nodes. Fails only when
    /// **no** node answered. Under [`Freshness::Snapshot`] a node that is
    /// unreachable (reconnecting, saturated) is served from the handle's
    /// stale cache when possible and stamped in [`FleetCut::stale`].
    pub fn known_peers_cut(
        &self,
        freshness: Freshness,
    ) -> impl Future<Output = Result<FleetCut<Vec<P>>, TrustError>> {
        let this = self.clone();
        let snapshot = matches!(freshness, Freshness::Snapshot { .. });
        async move {
            let cut = this
                .fleet_cut(
                    move |conn| {
                        Box::pin(async move {
                            let cut = conn.known_peers_cut(freshness).await?;
                            Ok((cut.epochs, cut.value))
                        })
                    },
                    |fleet, node, epochs, peers: &Vec<P>| {
                        let mut slot = fleet.nodes[node].lock().expect("fleet node slot");
                        slot.stale.known_peers = Some((epochs.to_vec(), peers.clone()));
                    },
                    |fleet, node| {
                        if !snapshot {
                            return None;
                        }
                        fleet.nodes[node].lock().expect("fleet node slot").stale.known_peers.clone()
                    },
                )
                .await?;
            let mut cut = FleetCut {
                value: cut.value.into_iter().flatten().collect::<Vec<P>>(),
                epochs: cut.epochs,
                missing: cut.missing,
                stale: cut.stale,
            };
            cut.value.sort_unstable();
            Ok(cut)
        }
    }

    /// Every `(peer, record)` pair held for `task`, ascending by peer,
    /// merged from every live node.
    pub fn task_records(
        &self,
        task: TaskId,
    ) -> impl Future<Output = Result<Vec<(P, TrustRecord)>, TrustError>> {
        let fut = self.task_records_cut(task, Freshness::Relaxed);
        async move { Ok(fut.await?.value) }
    }

    /// The fleet-wide record table for `task` as a [`FleetCut`]. Under
    /// [`Freshness::Snapshot`], unreachable nodes fall back to the stale
    /// cache like [`known_peers_cut`](Self::known_peers_cut).
    pub fn task_records_cut(
        &self,
        task: TaskId,
        freshness: Freshness,
    ) -> impl Future<Output = Result<FleetCut<Vec<(P, TrustRecord)>>, TrustError>> {
        let this = self.clone();
        let snapshot = matches!(freshness, Freshness::Snapshot { .. });
        async move {
            let cut = this
                .fleet_cut(
                    move |conn| {
                        Box::pin(async move {
                            let cut = conn.task_records_cut(task, freshness).await?;
                            Ok((cut.epochs, cut.value))
                        })
                    },
                    |fleet, node, epochs, records: &Vec<(P, TrustRecord)>| {
                        let mut slot = fleet.nodes[node].lock().expect("fleet node slot");
                        slot.stale.task_records.insert(task, (epochs.to_vec(), records.clone()));
                    },
                    |fleet, node| {
                        if !snapshot {
                            return None;
                        }
                        let slot = fleet.nodes[node].lock().expect("fleet node slot");
                        slot.stale.task_records.get(&task).cloned()
                    },
                )
                .await?;
            let mut cut = FleetCut {
                value: cut.value.into_iter().flatten().collect::<Vec<(P, TrustRecord)>>(),
                epochs: cut.epochs,
                missing: cut.missing,
                stale: cut.stale,
            };
            cut.value.sort_unstable_by_key(|(peer, _)| *peer);
            Ok(cut)
        }
    }

    /// One broadcast read over all nodes: live answers collected
    /// per-node, failures recorded as missing. Errors out only when every
    /// node failed (with the first node's error).
    ///
    /// `remember` stores each live answer in the node's stale cache;
    /// `recall` is consulted when a node fails — a hit serves the node's
    /// range stale-but-typed ([`FleetCut::stale`]) instead of dropping it.
    /// Relaxed/Aligned cuts pass a no-op `recall`, so only
    /// [`Freshness::Snapshot`] — the mode whose contract already admits
    /// bounded staleness — ever answers from the cache.
    async fn fleet_cut<T>(
        &self,
        op: impl Fn(RemoteTrustServiceHandle<P>) -> BoxFut<(Vec<u64>, T)>,
        remember: impl Fn(&self::FleetTrustHandle<P>, usize, &[u64], &T),
        recall: impl Fn(&self::FleetTrustHandle<P>, usize) -> Option<(Vec<u64>, T)>,
    ) -> Result<FleetCut<Vec<T>>, TrustError> {
        let n = self.nodes.len();
        let deadline = Instant::now() + self.options.request_deadline;
        let mut epochs = vec![Vec::new(); n];
        let mut value = Vec::new();
        let mut missing = Vec::new();
        let mut stale = Vec::new();
        let mut first_err = None;
        for (node, epoch_slot) in epochs.iter_mut().enumerate() {
            let result = loop {
                match self.conn_ready(node, deadline, false).await {
                    Ok(conn) => match with_deadline(op(conn.clone()), deadline).await {
                        Err(ref e) if transport_failure(e, &conn) => continue,
                        Err(TrustError::TimedOut) => {
                            self.quarantine(node);
                            break Err(TrustError::TimedOut);
                        }
                        other => break other,
                    },
                    Err(e) => break Err(e),
                }
            };
            match result {
                Ok((node_epochs, node_value)) => {
                    remember(self, node, &node_epochs, &node_value);
                    *epoch_slot = node_epochs;
                    value.push(node_value);
                }
                Err(e) => match recall(self, node) {
                    Some((cached_epochs, cached_value)) => {
                        *epoch_slot = cached_epochs;
                        value.push(cached_value);
                        stale.push((node, self.node_addr(node)));
                    }
                    None => {
                        first_err.get_or_insert(e);
                        missing.push((node, self.node_addr(node)));
                    }
                },
            }
        }
        if missing.len() == n {
            return Err(first_err.expect("every node failed"));
        }
        Ok(FleetCut { value, epochs, missing, stale })
    }

    /// Health and saturation per node: reachable nodes report their
    /// served [`ShardStats`], unreachable ones report `None`. Never fails
    /// — an all-dead fleet is a list of unreachable nodes, which is the
    /// answer.
    pub fn node_stats(&self) -> impl Future<Output = Result<Vec<NodeStats>, TrustError>> {
        let this = self.clone();
        async move {
            let mut out = Vec::with_capacity(this.nodes.len());
            for node in 0..this.nodes.len() {
                let stats = this
                    .read_op(node, |conn| Box::pin(async move { conn.shard_stats().await }))
                    .await
                    .ok();
                out.push(NodeStats { addr: this.node_addr(node), shards: stats });
            }
            Ok(out)
        }
    }

    // ---- connection management -----------------------------------------

    /// A live connection to `node` right now, or `None` — never blocks,
    /// never connects. Dead connections are cleared (clearing opens the
    /// immediate-reconnect window for whoever calls
    /// [`conn_ready`](Self::conn_ready) next).
    fn conn_now(&self, node: usize) -> Option<RemoteTrustServiceHandle<P>> {
        let mut slot = self.nodes[node].lock().expect("fleet node slot");
        match &slot.conn {
            Some(conn) if !conn.transport_closed() => Some(conn.clone()),
            Some(_) => {
                slot.conn = None;
                slot.retry_at = Instant::now();
                None
            }
            None => None,
        }
    }

    /// Drops `node`'s current connection after a deadline miss: a
    /// transport that accepted a request but never answered cannot be
    /// trusted with the next one. No backoff penalty — the node itself
    /// may be healthy behind one bad connection, so the next request
    /// reconnects immediately.
    fn quarantine(&self, node: usize) {
        let mut slot = self.nodes[node].lock().expect("fleet node slot");
        slot.conn = None;
        slot.retry_at = Instant::now();
    }

    /// A live connection to `node`, reconnecting if allowed. With `wait`,
    /// sleeps through backoff windows (bounded by `deadline`); without,
    /// fails fast with [`TrustError::NodeUnavailable`] whenever a
    /// connection is not immediately obtainable.
    async fn conn_ready(
        &self,
        node: usize,
        deadline: Instant,
        wait: bool,
    ) -> Result<RemoteTrustServiceHandle<P>, TrustError> {
        enum Next<P> {
            Use(RemoteTrustServiceHandle<P>),
            Connect(String),
            Backoff(Instant),
            Busy,
        }
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(TrustError::TimedOut);
            }
            let next = {
                let mut slot = self.nodes[node].lock().expect("fleet node slot");
                match &slot.conn {
                    Some(conn) if !conn.transport_closed() => Next::Use(conn.clone()),
                    maybe_dead => {
                        if maybe_dead.is_some() {
                            // transport died since last look: clear it and
                            // allow an immediate reconnect
                            slot.conn = None;
                            slot.retry_at = now;
                        }
                        if slot.connecting {
                            Next::Busy
                        } else if now >= slot.retry_at {
                            slot.connecting = true;
                            Next::Connect(slot.addr.clone())
                        } else {
                            Next::Backoff(slot.retry_at)
                        }
                    }
                }
            };
            match next {
                Next::Use(conn) => return Ok(conn),
                Next::Connect(addr) => {
                    let budget = self
                        .options
                        .connect_timeout
                        .min(deadline.saturating_duration_since(Instant::now()));
                    let result = RemoteTrustServiceHandle::connect_with(addr.as_str(), budget);
                    let mut slot = self.nodes[node].lock().expect("fleet node slot");
                    slot.connecting = false;
                    match result {
                        Ok(conn) => {
                            slot.attempt = 0;
                            slot.conn = Some(conn.clone());
                            return Ok(conn);
                        }
                        Err(_) => {
                            let delay = jittered(
                                self.options.backoff_base,
                                self.options.backoff_cap,
                                slot.attempt,
                                &mut slot.rng,
                            );
                            slot.attempt = slot.attempt.saturating_add(1);
                            slot.retry_at = Instant::now() + delay;
                            if !wait {
                                return Err(TrustError::NodeUnavailable { addr });
                            }
                        }
                    }
                }
                Next::Backoff(retry_at) => {
                    if !wait {
                        return Err(TrustError::NodeUnavailable { addr: self.node_addr(node) });
                    }
                    sleep_until(retry_at.min(deadline)).await;
                }
                Next::Busy => {
                    if !wait {
                        return Err(TrustError::NodeUnavailable { addr: self.node_addr(node) });
                    }
                    // another clone is mid-connect; check back shortly
                    sleep_until((Instant::now() + Duration::from_millis(2)).min(deadline)).await;
                }
            }
        }
    }
}

/// Whether `e` means "the connection is gone" (retry on a fresh one)
/// rather than "the service answered with an error" (final). The closed
/// transport flag is what disambiguates a dead socket's synthesized
/// `ServiceStopped` from a healthy server reporting a genuinely stopped
/// service.
fn transport_failure<P: LogKey + Send + 'static>(
    e: &TrustError,
    conn: &RemoteTrustServiceHandle<P>,
) -> bool {
    matches!(e, TrustError::ServiceStopped | TrustError::Io(_) | TrustError::Corrupt { .. })
        && conn.transport_closed()
}

/// Capped exponential backoff with multiplicative jitter in `[0.5, 1.0]`
/// — the decorrelation that stops a fleet's clients from reconnecting in
/// lockstep.
fn jittered(base: Duration, cap: Duration, attempt: u32, rng: &mut SmallRng) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(16));
    let capped = exp.min(cap);
    capped.mul_f64(rng.gen_range(0.5..=1.0))
}

/// A process-unique commit-tag session id: per-process random (std
/// `RandomState`) mixed with a global counter, so concurrent fleet
/// handles — in this process or another — occupy disjoint tag spaces.
fn fresh_session() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let per_process = RandomState::new().build_hasher().finish();
    per_process ^ COUNTER.fetch_add(1, Ordering::Relaxed).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

// ---- deadlines ---------------------------------------------------------

/// The shared timer driving [`sleep_until`] and [`with_deadline`]: a lazy
/// singleton thread parked on a condvar until the earliest registered
/// wake-up. The vendored executor's `Parker` has no timed park, so
/// deadlines need exactly one real clock-waiter in the process — this is
/// it.
struct Timer {
    queue: Mutex<Vec<(Instant, Waker)>>,
    cv: Condvar,
}

fn timer() -> &'static Timer {
    static TIMER: OnceLock<&'static Timer> = OnceLock::new();
    TIMER.get_or_init(|| {
        let timer: &'static Timer =
            Box::leak(Box::new(Timer { queue: Mutex::new(Vec::new()), cv: Condvar::new() }));
        thread::Builder::new()
            .name("siot-fleet-timer".into())
            .spawn(move || timer_loop(timer))
            .expect("spawn fleet timer thread");
        timer
    })
}

fn timer_loop(timer: &'static Timer) {
    let mut queue = timer.queue.lock().expect("fleet timer queue");
    loop {
        let now = Instant::now();
        let mut due = Vec::new();
        let mut i = 0;
        while i < queue.len() {
            if queue[i].0 <= now {
                due.push(queue.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
        if !due.is_empty() {
            // wake without holding the lock: wakers may re-register
            drop(queue);
            for waker in due {
                waker.wake();
            }
            queue = timer.queue.lock().expect("fleet timer queue");
            continue;
        }
        queue = match queue.iter().map(|(at, _)| *at).min() {
            Some(earliest) => {
                let wait = earliest.saturating_duration_since(now);
                timer.cv.wait_timeout(queue, wait).expect("fleet timer queue").0
            }
            None => timer.cv.wait(queue).expect("fleet timer queue"),
        };
    }
}

/// Resolves at `at` (immediately if already past).
fn sleep_until(at: Instant) -> Sleep {
    Sleep { at }
}

struct Sleep {
    at: Instant,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.at {
            return Poll::Ready(());
        }
        let timer = timer();
        timer.queue.lock().expect("fleet timer queue").push((self.at, cx.waker().clone()));
        timer.cv.notify_one();
        Poll::Pending
    }
}

/// Races `fut` against the absolute `deadline`: the result if it resolves
/// in time, typed [`TrustError::TimedOut`] otherwise. The loser is
/// dropped — for a [`RemotePending`] that means the response, when it
/// eventually arrives, is discarded by the reader.
async fn with_deadline<T, F>(mut fut: F, deadline: Instant) -> Result<T, TrustError>
where
    F: Future<Output = Result<T, TrustError>> + Unpin,
{
    let mut sleep = sleep_until(deadline);
    std::future::poll_fn(move |cx| match Pin::new(&mut fut).poll(cx) {
        Poll::Ready(result) => Poll::Ready(result),
        Poll::Pending => match Pin::new(&mut sleep).poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(TrustError::TimedOut)),
            Poll::Pending => Poll::Pending,
        },
    })
    .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use futures::executor::block_on;

    #[test]
    fn sleep_until_fires() {
        let start = Instant::now();
        block_on(sleep_until(start + Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(20));
        // an already-past instant resolves without touching the timer
        block_on(sleep_until(start));
    }

    #[test]
    fn with_deadline_times_out_typed() {
        struct Never;
        impl Future for Never {
            type Output = Result<(), TrustError>;
            fn poll(self: Pin<&mut Self>, _: &mut Context<'_>) -> Poll<Self::Output> {
                Poll::Pending
            }
        }
        let start = Instant::now();
        let result = block_on(with_deadline(Never, start + Duration::from_millis(25)));
        assert_eq!(result, Err(TrustError::TimedOut));
        assert!(start.elapsed() >= Duration::from_millis(25));

        let quick = Box::pin(async { Ok::<_, TrustError>(7u32) });
        assert_eq!(block_on(with_deadline(quick, Instant::now() + Duration::from_secs(5))), Ok(7));
    }

    #[test]
    fn jittered_backoff_grows_and_caps() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_secs(1);
        let mut rng = SmallRng::seed_from_u64(9);
        for attempt in 0..20 {
            let d = jittered(base, cap, attempt, &mut rng);
            let full = base.saturating_mul(1u32 << attempt.min(16)).min(cap);
            assert!(d <= full, "jitter never exceeds the full step");
            assert!(d >= full.mul_f64(0.5), "jitter keeps at least half the step");
            assert!(d <= cap, "never beyond the cap");
        }
    }

    #[test]
    fn sessions_are_unique() {
        let a = fresh_session();
        let b = fresh_session();
        assert_ne!(a, b);
    }

    #[test]
    fn fleet_cut_completeness() {
        let full: FleetCut<Vec<u64>> = FleetCut {
            value: vec![1, 2],
            epochs: vec![vec![3], vec![4]],
            missing: Vec::new(),
            stale: Vec::new(),
        };
        assert!(full.complete());
        assert!(full.fully_fresh());
        let partial: FleetCut<Vec<u64>> = FleetCut {
            value: vec![1],
            epochs: vec![vec![3], Vec::new()],
            missing: vec![(1, "127.0.0.1:1".into())],
            stale: Vec::new(),
        };
        assert!(!partial.complete());
        // a stale-served range still covers the key space, but the cut is
        // no longer fully fresh
        let cached: FleetCut<Vec<u64>> = FleetCut {
            value: vec![1, 2],
            epochs: vec![vec![3], vec![2]],
            missing: Vec::new(),
            stale: vec![(1, "127.0.0.1:1".into())],
        };
        assert!(cached.complete());
        assert!(!cached.fully_fresh());
    }

    #[test]
    fn node_stats_saturation_is_worst_shard() {
        let shard = |depth, cap| ShardStats {
            mailbox_depth: depth,
            mailbox_capacity: cap,
            drains: 0,
            commit_batches: 0,
            committed: 0,
            largest_commit_batch: 0,
            last_commit_batch: 0,
            published_epoch: 0,
        };
        let stats = NodeStats {
            addr: "127.0.0.1:7477".into(),
            shards: Some(vec![shard(1, 10), shard(8, 10)]),
        };
        assert!(stats.reachable());
        assert!((stats.saturation().expect("reachable") - 0.8).abs() < 1e-12);
        let down = NodeStats { addr: "127.0.0.1:7478".into(), shards: None };
        assert!(!down.reachable());
        assert_eq!(down.saturation(), None);
    }
}
