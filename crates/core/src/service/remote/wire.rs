//! The wire codec: every request and response the remote tier speaks,
//! serialized into [`framing`](crate::framing) payloads.
//!
//! All reals travel as their IEEE-754 bit patterns (`f64::to_bits`, LE) so
//! a value that round-trips through the wire compares **bit-identical** to
//! the original — the same discipline the durable log uses, and what lets
//! the equivalence proptests pin remote commits against in-process folds.
//! Peers travel through [`LogKey`]'s lossless `u64` embedding.
//!
//! Decoding never trusts the peer: every read is bounds-checked, every
//! enum byte matched exhaustively, every domain value re-validated through
//! the same constructors local callers use ([`EnvIndicator::new`],
//! [`Observation::validate`], the non-renormalizing task rebuild). A
//! malformed payload is a typed [`TrustError`], never a panic.

use crate::context::Context;
use crate::delegation::{
    CompletedDelegation, DeclineReason, DelegationOutcome, DelegationReceipt, DelegationRequest,
    EvaluatedDelegation, EvaluationBasis, Referral, ResourceUse,
};
use crate::environment::EnvIndicator;
use crate::error::TrustError;
use crate::goal::Goal;
use crate::log_backend::LogKey;
use crate::record::{Observation, TrustRecord};
use crate::service::sharded::Freshness;
use crate::service::{Cut, ShardStats};
use crate::task::{CharacteristicId, Task, TaskId};
use crate::transitivity::TransitivityGates;
use crate::tw::Trustworthiness;

/// Wire protocol version this build speaks. Bumped on any frame-layout
/// change; mismatched ends fail the handshake with
/// [`TrustError::UnsupportedFormat`].
///
/// v2: peer-targeted reads carry a [`Freshness`], `Freshness::Snapshot`
/// travels with its staleness bound, `ShardStats` gained
/// `published_epoch`, and the vectored [`Request::QueryMany`] opcode
/// batches homogeneous reads into one frame.
pub const WIRE_VERSION: u8 = 2;

/// Bytes of the connection banner each end sends first.
pub const BANNER_LEN: usize = 8;

/// Frames above this payload size are rejected as garbage before their
/// length prefix can drive an allocation. Generous: a vectored commit
/// chunk tops out well under it (the client chunks batches).
pub const MAX_WIRE_FRAME: u32 = 1 << 24;

/// The banner each end writes on connect: magic, protocol version, two
/// reserved zero bytes.
pub fn banner() -> [u8; BANNER_LEN] {
    [b'S', b'I', b'O', b'T', b'W', WIRE_VERSION, 0, 0]
}

/// Validates a received banner.
pub fn check_banner(received: &[u8; BANNER_LEN]) -> Result<(), TrustError> {
    if &received[..5] != b"SIOTW" || received[6] != 0 || received[7] != 0 {
        return Err(TrustError::Corrupt { what: "wire banner", offset: 0 });
    }
    if received[5] != WIRE_VERSION {
        return Err(TrustError::UnsupportedFormat { found: received[5], expected: WIRE_VERSION });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

const OP_COMMIT: u8 = 1;
const OP_COMMIT_MANY: u8 = 2;
const OP_COMPLETE: u8 = 3;
const OP_REGISTER_TASK: u8 = 4;
const OP_FLUSH: u8 = 5;
const OP_SHUTDOWN: u8 = 6;
const OP_EVALUATE: u8 = 7;
const OP_TRUSTWORTHINESS: u8 = 8;
const OP_RECORD: u8 = 9;
const OP_KNOWN_PEERS: u8 = 10;
const OP_TASK_RECORDS: u8 = 11;
const OP_SHARD_STATS: u8 = 12;
const OP_COMMIT_MANY_SEQ: u8 = 13;
const OP_QUERY_MANY: u8 = 14;

/// One decoded request — the wire form of the service API. Mirrors the
/// actor's `Command`/`Query` split, flattened into opcodes.
pub enum Request<P> {
    /// Fold one finished session.
    Commit(CompletedDelegation<P>),
    /// Fold a vectored batch of finished sessions.
    CommitMany(Vec<CompletedDelegation<P>>),
    /// Activate + validate + fold a whole session in one round trip.
    Complete(DelegationRequest<P>, DelegationOutcome),
    /// Register (or replace) a task definition.
    RegisterTask(Task),
    /// Push engine state down to stable storage.
    Flush,
    /// Stop the served trust service (the transport stays up).
    Shutdown,
    /// Run the §3.3 evaluation server-side.
    Evaluate(DelegationRequest<P>),
    /// Eq. 18 trustworthiness toward `(peer, task)`, at the requested
    /// freshness ([`Freshness::Snapshot`] is answered on the connection's
    /// reader thread, without dispatching into the actor).
    Trustworthiness(P, TaskId, Freshness),
    /// The raw record for `(peer, task)`, at the requested freshness.
    Record(P, TaskId, Freshness),
    /// Epoch-stamped peers broadcast, at the requested freshness.
    KnownPeers(Freshness),
    /// Epoch-stamped per-task records broadcast.
    TaskRecords(TaskId, Freshness),
    /// Per-shard saturation counters.
    ShardStats,
    /// [`CommitMany`](Request::CommitMany) stamped with a client session
    /// and sequence id, the fleet tier's idempotent-replay path: the
    /// server folds a given `(session, seq)` at most once and replays the
    /// cached receipts to retries (see
    /// [`DedupWindow`](super::DedupWindow)).
    CommitManySeq {
        /// The committing client's session id (stable across reconnects).
        session: u64,
        /// The batch's sequence id within the session.
        seq: u64,
        /// The finished sessions to fold.
        batch: Vec<CompletedDelegation<P>>,
    },
    /// A vectored batch of homogeneous peer-targeted reads in one frame —
    /// the read mirror of [`CommitMany`](Request::CommitMany). The
    /// response is one vector of per-item answers in request order.
    QueryMany {
        /// What every item asks for.
        kind: QueryKind,
        /// The freshness every item is answered at.
        freshness: Freshness,
        /// The `(peer, task)` pairs to read.
        items: Vec<(P, TaskId)>,
    },
}

/// The homogeneous read a [`Request::QueryMany`] batch performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Eq. 18 trustworthiness per item.
    Trustworthiness,
    /// The raw record per item.
    Record,
}

/// Serializes `request` (prefixed by `req_id` and its opcode) into `out`.
pub fn encode_request<P: LogKey>(out: &mut Vec<u8>, req_id: u64, request: &Request<P>) {
    out.extend_from_slice(&req_id.to_le_bytes());
    match request {
        Request::Commit(completed) => {
            out.push(OP_COMMIT);
            put_completed(out, completed);
        }
        Request::CommitMany(batch) => {
            out.push(OP_COMMIT_MANY);
            out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
            for completed in batch {
                put_completed(out, completed);
            }
        }
        Request::Complete(request, outcome) => {
            out.push(OP_COMPLETE);
            put_request(out, request);
            put_observation(out, &outcome.observation);
            out.push(resource_use_code(outcome.resource_use));
        }
        Request::RegisterTask(task) => {
            out.push(OP_REGISTER_TASK);
            put_task(out, task);
        }
        Request::Flush => out.push(OP_FLUSH),
        Request::Shutdown => out.push(OP_SHUTDOWN),
        Request::Evaluate(request) => {
            out.push(OP_EVALUATE);
            put_request(out, request);
        }
        Request::Trustworthiness(peer, task, freshness) => {
            out.push(OP_TRUSTWORTHINESS);
            out.extend_from_slice(&peer.to_log_u64().to_le_bytes());
            out.extend_from_slice(&task.0.to_le_bytes());
            put_freshness(out, *freshness);
        }
        Request::Record(peer, task, freshness) => {
            out.push(OP_RECORD);
            out.extend_from_slice(&peer.to_log_u64().to_le_bytes());
            out.extend_from_slice(&task.0.to_le_bytes());
            put_freshness(out, *freshness);
        }
        Request::KnownPeers(freshness) => {
            out.push(OP_KNOWN_PEERS);
            put_freshness(out, *freshness);
        }
        Request::TaskRecords(task, freshness) => {
            out.push(OP_TASK_RECORDS);
            out.extend_from_slice(&task.0.to_le_bytes());
            put_freshness(out, *freshness);
        }
        Request::ShardStats => out.push(OP_SHARD_STATS),
        Request::CommitManySeq { session, seq, batch } => {
            out.push(OP_COMMIT_MANY_SEQ);
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
            for completed in batch {
                put_completed(out, completed);
            }
        }
        Request::QueryMany { kind, freshness, items } => {
            out.push(OP_QUERY_MANY);
            out.push(query_kind_code(*kind));
            put_freshness(out, *freshness);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for (peer, task) in items {
                out.extend_from_slice(&peer.to_log_u64().to_le_bytes());
                out.extend_from_slice(&task.0.to_le_bytes());
            }
        }
    }
}

/// Pre-encodes the request *tail* (opcode onward — everything after the
/// request id) of a `CommitManySeq`. The fleet tier encodes each tagged
/// chunk exactly once, **consuming** the sessions (keeping
/// [`CompletedDelegation`] un-clonable), and resends the identical bytes
/// on every retry of the tag.
pub(crate) fn commit_many_seq_tail<P: LogKey>(
    session: u64,
    seq: u64,
    batch: &[CompletedDelegation<P>],
) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(OP_COMMIT_MANY_SEQ);
    out.extend_from_slice(&session.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for completed in batch {
        put_completed(&mut out, completed);
    }
    out
}

/// How a request payload failed to decode.
pub enum RequestError {
    /// The payload was too short to even carry a request id: nothing to
    /// address an error response to, so the connection must close.
    Unaddressable,
    /// The id was readable but the rest was not: the server responds to
    /// that id with the typed error and keeps serving the connection.
    Addressed(u64, TrustError),
}

/// Decodes a request payload into `(req_id, request)`.
pub fn decode_request<P: LogKey>(payload: &[u8]) -> Result<(u64, Request<P>), RequestError> {
    if payload.len() < 9 {
        return Err(RequestError::Unaddressable);
    }
    let req_id = u64::from_le_bytes(payload[..8].try_into().expect("length checked"));
    let mut r = Reader::new(&payload[8..], "wire request");
    let request = decode_request_body(&mut r).map_err(|e| RequestError::Addressed(req_id, e))?;
    r.finish().map_err(|e| RequestError::Addressed(req_id, e))?;
    Ok((req_id, request))
}

fn decode_request_body<P: LogKey>(r: &mut Reader<'_>) -> Result<Request<P>, TrustError> {
    Ok(match r.u8()? {
        OP_COMMIT => Request::Commit(take_completed(r)?),
        OP_COMMIT_MANY => {
            let n = r.u32()? as usize;
            // each session is ≥ 89 bytes: a count the remaining bytes
            // cannot possibly hold is rejected before it sizes a Vec
            if n > r.remaining() {
                return Err(corrupt_req());
            }
            let mut batch = Vec::with_capacity(n);
            for _ in 0..n {
                batch.push(take_completed(r)?);
            }
            Request::CommitMany(batch)
        }
        OP_COMPLETE => {
            let request = take_request(r)?;
            let observation = take_observation(r)?;
            let resource_use = take_resource_use(r)?;
            Request::Complete(request, DelegationOutcome { observation, resource_use })
        }
        OP_REGISTER_TASK => Request::RegisterTask(take_task(r)?),
        OP_FLUSH => Request::Flush,
        OP_SHUTDOWN => Request::Shutdown,
        OP_EVALUATE => Request::Evaluate(take_request(r)?),
        OP_TRUSTWORTHINESS => {
            Request::Trustworthiness(take_peer(r)?, take_task_id(r)?, take_freshness(r)?)
        }
        OP_RECORD => Request::Record(take_peer(r)?, take_task_id(r)?, take_freshness(r)?),
        OP_KNOWN_PEERS => Request::KnownPeers(take_freshness(r)?),
        OP_TASK_RECORDS => Request::TaskRecords(take_task_id(r)?, take_freshness(r)?),
        OP_SHARD_STATS => Request::ShardStats,
        OP_COMMIT_MANY_SEQ => {
            let session = r.u64()?;
            let seq = r.u64()?;
            let n = r.u32()? as usize;
            if n > r.remaining() {
                return Err(corrupt_req());
            }
            let mut batch = Vec::with_capacity(n);
            for _ in 0..n {
                batch.push(take_completed(r)?);
            }
            Request::CommitManySeq { session, seq, batch }
        }
        OP_QUERY_MANY => {
            let kind = take_query_kind(r)?;
            let freshness = take_freshness(r)?;
            let n = r.u32()? as usize;
            // each item is 12 bytes: a count the remaining bytes cannot
            // possibly hold is rejected before it sizes a Vec
            if n > r.remaining() {
                return Err(corrupt_req());
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push((take_peer(r)?, take_task_id(r)?));
            }
            Request::QueryMany { kind, freshness, items }
        }
        _ => return Err(corrupt_req()),
    })
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Builds a success response payload: `req_id | status 0 | body`.
pub fn ok_payload(req_id: u64, body: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&req_id.to_le_bytes());
    out.push(0);
    body(&mut out);
    out
}

/// Builds an error response payload: `req_id | status 1 | error`.
pub fn err_payload(req_id: u64, err: &TrustError) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&req_id.to_le_bytes());
    out.extend_from_slice(&err_body(err));
    out
}

/// The `status 1 | error` tail of an error response — also what the client
/// synthesizes locally to fail every in-flight future when its transport
/// dies on a *typed* condition (a corrupt response stream).
pub fn err_body(err: &TrustError) -> Vec<u8> {
    let mut out = vec![1u8];
    put_error(&mut out, err);
    out
}

/// Decodes a `status | body` response tail into the ok-body, or the typed
/// error the server reported.
pub fn split_status(tail: &[u8]) -> Result<&[u8], TrustError> {
    match tail.first() {
        Some(0) => Ok(&tail[1..]),
        Some(1) => Err(take_error(&mut Reader::new(&tail[1..], "wire response"))?),
        _ => Err(corrupt_resp()),
    }
}

// Body codecs — the server encodes with `put_*`, the client decodes with
// the matching `decode_*` (each a `fn` pointer the client's future holds).

/// Encodes one receipt.
pub fn put_receipt<P: LogKey>(out: &mut Vec<u8>, receipt: &DelegationReceipt<P>) {
    out.extend_from_slice(&receipt.trustee.to_log_u64().to_le_bytes());
    out.extend_from_slice(&receipt.task.0.to_le_bytes());
    put_record(out, &receipt.record);
    put_f64(out, receipt.trustworthiness.value());
    out.push(receipt.fulfilled as u8);
}

/// Decodes one receipt body.
pub fn decode_receipt<P: LogKey>(body: &[u8]) -> Result<DelegationReceipt<P>, TrustError> {
    let mut r = Reader::new(body, "wire response");
    let receipt = take_receipt(&mut r)?;
    r.finish()?;
    Ok(receipt)
}

fn take_receipt<P: LogKey>(r: &mut Reader<'_>) -> Result<DelegationReceipt<P>, TrustError> {
    Ok(DelegationReceipt {
        trustee: take_peer(r)?,
        task: take_task_id(r)?,
        record: take_record(r)?,
        trustworthiness: Trustworthiness::new(r.f64()?),
        fulfilled: r.bool()?,
    })
}

/// Encodes a receipt vector.
pub fn put_receipts<P: LogKey>(out: &mut Vec<u8>, receipts: &[DelegationReceipt<P>]) {
    out.extend_from_slice(&(receipts.len() as u32).to_le_bytes());
    for receipt in receipts {
        put_receipt(out, receipt);
    }
}

/// Decodes a receipt-vector body.
pub fn decode_receipts<P: LogKey>(body: &[u8]) -> Result<Vec<DelegationReceipt<P>>, TrustError> {
    let mut r = Reader::new(body, "wire response");
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(corrupt_resp());
    }
    let mut receipts = Vec::with_capacity(n);
    for _ in 0..n {
        receipts.push(take_receipt(&mut r)?);
    }
    r.finish()?;
    Ok(receipts)
}

/// Encodes an evaluated session.
pub fn put_evaluated<P: LogKey>(out: &mut Vec<u8>, ev: &EvaluatedDelegation<P>) {
    out.extend_from_slice(&ev.trustee.to_log_u64().to_le_bytes());
    out.extend_from_slice(&ev.task.0.to_le_bytes());
    put_goal(out, &ev.goal);
    put_context(out, &ev.context);
    put_record(out, &ev.expectation);
    put_f64(out, ev.trustworthiness.value());
    out.push(match ev.basis {
        EvaluationBasis::Direct => 0,
        EvaluationBasis::Inferred => 1,
        EvaluationBasis::Referred => 2,
        EvaluationBasis::Prior => 3,
        EvaluationBasis::NoInformation => 4,
    });
    out.push(match ev.verdict {
        Ok(()) => 0,
        Err(reason) => 1 + decline_code(reason),
    });
}

/// Decodes an evaluated-session body — the client rebuilds the same
/// `EvaluatedDelegation` a local handle would have returned, so
/// `into_decision` works identically on either side of the wire.
pub fn decode_evaluated<P: LogKey>(body: &[u8]) -> Result<EvaluatedDelegation<P>, TrustError> {
    let mut r = Reader::new(body, "wire response");
    let trustee = take_peer(&mut r)?;
    let task = take_task_id(&mut r)?;
    let goal = take_goal(&mut r)?;
    let context = take_context(&mut r)?;
    let expectation = take_record(&mut r)?;
    let trustworthiness = Trustworthiness::new(r.f64()?);
    let basis = match r.u8()? {
        0 => EvaluationBasis::Direct,
        1 => EvaluationBasis::Inferred,
        2 => EvaluationBasis::Referred,
        3 => EvaluationBasis::Prior,
        4 => EvaluationBasis::NoInformation,
        _ => return Err(corrupt_resp()),
    };
    let verdict = match r.u8()? {
        0 => Ok(()),
        code => Err(take_decline(code - 1)?),
    };
    r.finish()?;
    Ok(EvaluatedDelegation {
        trustee,
        task,
        goal,
        context,
        expectation,
        trustworthiness,
        basis,
        verdict,
    })
}

/// Encodes an optional trustworthiness.
pub fn put_opt_tw(out: &mut Vec<u8>, tw: &Option<Trustworthiness>) {
    match tw {
        None => out.push(0),
        Some(tw) => {
            out.push(1);
            put_f64(out, tw.value());
        }
    }
}

/// Decodes an optional-trustworthiness body.
pub fn decode_opt_tw(body: &[u8]) -> Result<Option<Trustworthiness>, TrustError> {
    let mut r = Reader::new(body, "wire response");
    let tw = match r.u8()? {
        0 => None,
        1 => Some(Trustworthiness::new(r.f64()?)),
        _ => return Err(corrupt_resp()),
    };
    r.finish()?;
    Ok(tw)
}

/// Encodes an optional record.
pub fn put_opt_record(out: &mut Vec<u8>, rec: &Option<TrustRecord>) {
    match rec {
        None => out.push(0),
        Some(rec) => {
            out.push(1);
            put_record(out, rec);
        }
    }
}

/// Decodes an optional-record body.
pub fn decode_opt_record(body: &[u8]) -> Result<Option<TrustRecord>, TrustError> {
    let mut r = Reader::new(body, "wire response");
    let rec = match r.u8()? {
        0 => None,
        1 => Some(take_record(&mut r)?),
        _ => return Err(corrupt_resp()),
    };
    r.finish()?;
    Ok(rec)
}

/// Encodes a [`Request::QueryMany`] answer vector of optional
/// trustworthiness values, in request order.
pub fn put_opt_tws(out: &mut Vec<u8>, tws: &[Option<Trustworthiness>]) {
    out.extend_from_slice(&(tws.len() as u32).to_le_bytes());
    for tw in tws {
        put_opt_tw(out, tw);
    }
}

/// Decodes a vectored optional-trustworthiness body.
pub fn decode_opt_tws(body: &[u8]) -> Result<Vec<Option<Trustworthiness>>, TrustError> {
    let mut r = Reader::new(body, "wire response");
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(corrupt_resp());
    }
    let mut tws = Vec::with_capacity(n);
    for _ in 0..n {
        tws.push(match r.u8()? {
            0 => None,
            1 => Some(Trustworthiness::new(r.f64()?)),
            _ => return Err(corrupt_resp()),
        });
    }
    r.finish()?;
    Ok(tws)
}

/// Encodes a [`Request::QueryMany`] answer vector of optional records, in
/// request order.
pub fn put_opt_records(out: &mut Vec<u8>, recs: &[Option<TrustRecord>]) {
    out.extend_from_slice(&(recs.len() as u32).to_le_bytes());
    for rec in recs {
        put_opt_record(out, rec);
    }
}

/// Decodes a vectored optional-record body.
pub fn decode_opt_records(body: &[u8]) -> Result<Vec<Option<TrustRecord>>, TrustError> {
    let mut r = Reader::new(body, "wire response");
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(corrupt_resp());
    }
    let mut recs = Vec::with_capacity(n);
    for _ in 0..n {
        recs.push(match r.u8()? {
            0 => None,
            1 => Some(take_record(&mut r)?),
            _ => return Err(corrupt_resp()),
        });
    }
    r.finish()?;
    Ok(recs)
}

/// Encodes an epoch-stamped peers cut.
pub fn put_peers_cut<P: LogKey>(out: &mut Vec<u8>, cut: &Cut<Vec<P>>) {
    put_epochs(out, &cut.epochs);
    out.extend_from_slice(&(cut.value.len() as u32).to_le_bytes());
    for peer in &cut.value {
        out.extend_from_slice(&peer.to_log_u64().to_le_bytes());
    }
}

/// Decodes a peers-cut body.
pub fn decode_peers_cut<P: LogKey>(body: &[u8]) -> Result<Cut<Vec<P>>, TrustError> {
    let mut r = Reader::new(body, "wire response");
    let epochs = take_epochs(&mut r)?;
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(corrupt_resp());
    }
    let mut peers = Vec::with_capacity(n);
    for _ in 0..n {
        peers.push(take_peer(&mut r)?);
    }
    r.finish()?;
    Ok(Cut { epochs, value: peers })
}

/// Encodes an epoch-stamped task-records cut.
pub fn put_records_cut<P: LogKey>(out: &mut Vec<u8>, cut: &Cut<Vec<(P, TrustRecord)>>) {
    put_epochs(out, &cut.epochs);
    out.extend_from_slice(&(cut.value.len() as u32).to_le_bytes());
    for (peer, rec) in &cut.value {
        out.extend_from_slice(&peer.to_log_u64().to_le_bytes());
        put_record(out, rec);
    }
}

/// Decodes a task-records-cut body.
pub fn decode_records_cut<P: LogKey>(
    body: &[u8],
) -> Result<Cut<Vec<(P, TrustRecord)>>, TrustError> {
    let mut r = Reader::new(body, "wire response");
    let epochs = take_epochs(&mut r)?;
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(corrupt_resp());
    }
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push((take_peer(&mut r)?, take_record(&mut r)?));
    }
    r.finish()?;
    Ok(Cut { epochs, value: records })
}

/// Encodes per-shard stats.
pub fn put_stats(out: &mut Vec<u8>, stats: &[ShardStats]) {
    out.extend_from_slice(&(stats.len() as u32).to_le_bytes());
    for s in stats {
        for v in [
            s.mailbox_depth as u64,
            s.mailbox_capacity as u64,
            s.drains,
            s.commit_batches,
            s.committed,
            s.largest_commit_batch as u64,
            s.last_commit_batch as u64,
            s.published_epoch,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Decodes a shard-stats body.
pub fn decode_stats(body: &[u8]) -> Result<Vec<ShardStats>, TrustError> {
    let mut r = Reader::new(body, "wire response");
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(corrupt_resp());
    }
    let mut stats = Vec::with_capacity(n);
    for _ in 0..n {
        stats.push(ShardStats {
            mailbox_depth: r.u64()? as usize,
            mailbox_capacity: r.u64()? as usize,
            drains: r.u64()?,
            commit_batches: r.u64()?,
            committed: r.u64()?,
            largest_commit_batch: r.u64()? as usize,
            last_commit_batch: r.u64()? as usize,
            published_epoch: r.u64()?,
        });
    }
    r.finish()?;
    Ok(stats)
}

/// Decodes an empty (unit) body.
pub fn decode_unit(body: &[u8]) -> Result<(), TrustError> {
    if body.is_empty() {
        Ok(())
    } else {
        Err(corrupt_resp())
    }
}

// ---------------------------------------------------------------------------
// TrustError codec
// ---------------------------------------------------------------------------

/// The `&'static str` payloads a [`TrustError`] can carry, interned so
/// errors survive the wire with their original strings. An unknown string
/// (a newer peer) degrades to `"remote"` rather than failing the decode.
const STATIC_WHATS: &[&str] = &[
    "success_rate",
    "gain",
    "damage",
    "cost",
    "log header",
    "snapshot header",
    "log frame checksum",
    "snapshot frame",
    "wire frame length",
    "wire frame checksum",
    "wire frame after failure",
    "wire banner",
    "wire request",
    "wire response",
    "wire task characteristics",
    "remote",
];

fn intern(s: &str) -> &'static str {
    STATIC_WHATS.iter().find(|&&k| k == s).copied().unwrap_or("remote")
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_error(out: &mut Vec<u8>, err: &TrustError) {
    match err {
        TrustError::OutOfUnitRange { what, value } => {
            out.push(0);
            put_str(out, what);
            put_f64(out, *value);
        }
        TrustError::BadEnvironment(e) => {
            out.push(1);
            put_f64(out, *e);
        }
        TrustError::EmptyTask => out.push(2),
        TrustError::NonPositiveWeight(w) => {
            out.push(3);
            put_f64(out, *w);
        }
        TrustError::UncoveredCharacteristics { missing } => {
            out.push(4);
            out.extend_from_slice(&(*missing as u64).to_le_bytes());
        }
        TrustError::WorkerPanicked => out.push(5),
        TrustError::Corrupt { what, offset } => {
            out.push(6);
            put_str(out, what);
            out.extend_from_slice(&offset.to_le_bytes());
        }
        TrustError::UnsupportedFormat { found, expected } => {
            out.push(7);
            out.push(*found);
            out.push(*expected);
        }
        TrustError::Io(msg) => {
            out.push(8);
            put_str(out, msg);
        }
        TrustError::ServiceStopped => out.push(9),
        TrustError::TimedOut => out.push(10),
        TrustError::NodeUnavailable { addr } => {
            out.push(11);
            put_str(out, addr);
        }
    }
}

fn take_str(r: &mut Reader<'_>) -> Result<String, TrustError> {
    let n = r.u32()? as usize;
    let bytes = r.take(n)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| r.corrupt())
}

fn take_error(r: &mut Reader<'_>) -> Result<TrustError, TrustError> {
    Ok(match r.u8()? {
        0 => TrustError::OutOfUnitRange { what: intern(&take_str(r)?), value: r.f64()? },
        1 => TrustError::BadEnvironment(r.f64()?),
        2 => TrustError::EmptyTask,
        3 => TrustError::NonPositiveWeight(r.f64()?),
        4 => TrustError::UncoveredCharacteristics { missing: r.u64()? as usize },
        5 => TrustError::WorkerPanicked,
        6 => TrustError::Corrupt { what: intern(&take_str(r)?), offset: r.u64()? },
        7 => TrustError::UnsupportedFormat { found: r.u8()?, expected: r.u8()? },
        8 => TrustError::Io(take_str(r)?),
        9 => TrustError::ServiceStopped,
        10 => TrustError::TimedOut,
        11 => TrustError::NodeUnavailable { addr: take_str(r)? },
        _ => return Err(corrupt_resp()),
    })
}

// ---------------------------------------------------------------------------
// Domain value codecs
// ---------------------------------------------------------------------------

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_record(out: &mut Vec<u8>, rec: &TrustRecord) {
    for v in [rec.s_hat, rec.g_hat, rec.d_hat, rec.c_hat] {
        put_f64(out, v);
    }
    out.extend_from_slice(&rec.interactions.to_le_bytes());
}

fn take_record(r: &mut Reader<'_>) -> Result<TrustRecord, TrustError> {
    Ok(TrustRecord {
        s_hat: r.f64()?,
        g_hat: r.f64()?,
        d_hat: r.f64()?,
        c_hat: r.f64()?,
        interactions: r.u64()?,
    })
}

fn put_goal(out: &mut Vec<u8>, goal: &Goal) {
    for v in [goal.min_success, goal.min_gain, goal.max_damage, goal.max_cost] {
        put_f64(out, v);
    }
}

fn take_goal(r: &mut Reader<'_>) -> Result<Goal, TrustError> {
    Ok(Goal { min_success: r.f64()?, min_gain: r.f64()?, max_damage: r.f64()?, max_cost: r.f64()? })
}

fn put_context(out: &mut Vec<u8>, context: &Context) {
    out.extend_from_slice(&context.task.0.to_le_bytes());
    put_f64(out, context.environment.value());
}

fn take_context(r: &mut Reader<'_>) -> Result<Context, TrustError> {
    let task = take_task_id(r)?;
    // re-validated through the same constructor local callers use; `new`
    // (not `saturating`) so a valid environment round-trips bit-exactly
    let environment = EnvIndicator::new(r.f64()?)?;
    Ok(Context::new(task, environment))
}

fn put_observation(out: &mut Vec<u8>, obs: &Observation) {
    for v in [obs.success_rate, obs.gain, obs.damage, obs.cost] {
        put_f64(out, v);
    }
}

fn take_observation(r: &mut Reader<'_>) -> Result<Observation, TrustError> {
    let obs =
        Observation { success_rate: r.f64()?, gain: r.f64()?, damage: r.f64()?, cost: r.f64()? };
    obs.validate()?;
    Ok(obs)
}

fn put_task(out: &mut Vec<u8>, task: &Task) {
    out.extend_from_slice(&task.id().0.to_le_bytes());
    let cs = task.characteristics();
    out.extend_from_slice(&(cs.len() as u32).to_le_bytes());
    for &(c, w) in cs {
        out.extend_from_slice(&c.0.to_le_bytes());
        put_f64(out, w);
    }
}

fn take_task(r: &mut Reader<'_>) -> Result<Task, TrustError> {
    let id = take_task_id(r)?;
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(r.corrupt());
    }
    let mut cs = Vec::with_capacity(n);
    for _ in 0..n {
        let c = CharacteristicId(r.u32()?);
        cs.push((c, r.f64()?));
    }
    // weights are already normalized (they came off a real Task): rebuild
    // without renormalizing so the decode is bit-identical
    Task::from_normalized(id, cs)
}

fn put_completed<P: LogKey>(out: &mut Vec<u8>, completed: &CompletedDelegation<P>) {
    out.extend_from_slice(&completed.trustee.to_log_u64().to_le_bytes());
    out.extend_from_slice(&completed.task.0.to_le_bytes());
    put_goal(out, &completed.goal);
    put_context(out, &completed.context);
    put_observation(out, &completed.observation);
    out.push(resource_use_code(completed.resource_use));
}

fn take_completed<P: LogKey>(r: &mut Reader<'_>) -> Result<CompletedDelegation<P>, TrustError> {
    Ok(CompletedDelegation {
        trustee: take_peer(r)?,
        task: take_task_id(r)?,
        goal: take_goal(r)?,
        context: take_context(r)?,
        observation: take_observation(r)?,
        resource_use: take_resource_use(r)?,
    })
}

fn put_request<P: LogKey>(out: &mut Vec<u8>, request: &DelegationRequest<P>) {
    out.extend_from_slice(&request.trustee.to_log_u64().to_le_bytes());
    put_task(out, &request.task);
    put_goal(out, &request.goal);
    put_context(out, &request.context);
    put_f64(out, request.gates.omega1);
    put_f64(out, request.gates.omega2);
    out.extend_from_slice(&(request.referrals.len() as u32).to_le_bytes());
    for referral in &request.referrals {
        let links = referral.links();
        out.extend_from_slice(&(links.len() as u32).to_le_bytes());
        for &v in links {
            put_f64(out, v);
        }
    }
    match &request.prior {
        None => out.push(0),
        Some(rec) => {
            out.push(1);
            put_record(out, rec);
        }
    }
    out.push(request.committed as u8);
}

fn take_request<P: LogKey>(r: &mut Reader<'_>) -> Result<DelegationRequest<P>, TrustError> {
    let trustee = take_peer(r)?;
    let task = take_task(r)?;
    let goal = take_goal(r)?;
    let context = take_context(r)?;
    let gates = TransitivityGates { omega1: r.f64()?, omega2: r.f64()? };
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(r.corrupt());
    }
    let mut referrals = Vec::with_capacity(n);
    for _ in 0..n {
        let links = r.u32()? as usize;
        if links > r.remaining() {
            return Err(r.corrupt());
        }
        let mut path = Vec::with_capacity(links);
        for _ in 0..links {
            path.push(r.f64()?);
        }
        referrals.push(Referral::new(path));
    }
    let prior = match r.u8()? {
        0 => None,
        1 => Some(take_record(r)?),
        _ => return Err(r.corrupt()),
    };
    let committed = r.bool()?;
    Ok(DelegationRequest { trustee, task, goal, context, gates, referrals, prior, committed })
}

fn put_epochs(out: &mut Vec<u8>, epochs: &[u64]) {
    out.extend_from_slice(&(epochs.len() as u32).to_le_bytes());
    for &e in epochs {
        out.extend_from_slice(&e.to_le_bytes());
    }
}

fn take_epochs(r: &mut Reader<'_>) -> Result<Vec<u64>, TrustError> {
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(r.corrupt());
    }
    let mut epochs = Vec::with_capacity(n);
    for _ in 0..n {
        epochs.push(r.u64()?);
    }
    Ok(epochs)
}

fn take_peer<P: LogKey>(r: &mut Reader<'_>) -> Result<P, TrustError> {
    Ok(P::from_log_u64(r.u64()?))
}

fn take_task_id(r: &mut Reader<'_>) -> Result<TaskId, TrustError> {
    Ok(TaskId(r.u32()?))
}

fn put_freshness(out: &mut Vec<u8>, freshness: Freshness) {
    match freshness {
        Freshness::Relaxed => out.push(0),
        Freshness::Aligned => out.push(1),
        Freshness::Snapshot { max_epoch_lag } => {
            out.push(2);
            out.extend_from_slice(&max_epoch_lag.to_le_bytes());
        }
    }
}

fn take_freshness(r: &mut Reader<'_>) -> Result<Freshness, TrustError> {
    match r.u8()? {
        0 => Ok(Freshness::Relaxed),
        1 => Ok(Freshness::Aligned),
        2 => Ok(Freshness::Snapshot { max_epoch_lag: r.u64()? }),
        _ => Err(r.corrupt()),
    }
}

fn query_kind_code(kind: QueryKind) -> u8 {
    match kind {
        QueryKind::Trustworthiness => 0,
        QueryKind::Record => 1,
    }
}

fn take_query_kind(r: &mut Reader<'_>) -> Result<QueryKind, TrustError> {
    match r.u8()? {
        0 => Ok(QueryKind::Trustworthiness),
        1 => Ok(QueryKind::Record),
        _ => Err(r.corrupt()),
    }
}

fn resource_use_code(ru: ResourceUse) -> u8 {
    match ru {
        ResourceUse::Responsive => 0,
        ResourceUse::Abusive => 1,
    }
}

fn take_resource_use(r: &mut Reader<'_>) -> Result<ResourceUse, TrustError> {
    match r.u8()? {
        0 => Ok(ResourceUse::Responsive),
        1 => Ok(ResourceUse::Abusive),
        _ => Err(r.corrupt()),
    }
}

fn decline_code(reason: DeclineReason) -> u8 {
    match reason {
        DeclineReason::NoTrustInformation => 0,
        DeclineReason::ReferralsGated => 1,
        DeclineReason::GoalMisaligned => 2,
        DeclineReason::Unprofitable => 3,
    }
}

fn take_decline(code: u8) -> Result<DeclineReason, TrustError> {
    match code {
        0 => Ok(DeclineReason::NoTrustInformation),
        1 => Ok(DeclineReason::ReferralsGated),
        2 => Ok(DeclineReason::GoalMisaligned),
        3 => Ok(DeclineReason::Unprofitable),
        _ => Err(corrupt_resp()),
    }
}

fn corrupt_req() -> TrustError {
    TrustError::Corrupt { what: "wire request", offset: 0 }
}

fn corrupt_resp() -> TrustError {
    TrustError::Corrupt { what: "wire response", offset: 0 }
}

/// A bounds-checked little-endian cursor: every read either succeeds or is
/// the typed corrupt error for its side of the conversation.
struct Reader<'a> {
    data: &'a [u8],
    at: usize,
    what: &'static str,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8], what: &'static str) -> Self {
        Reader { data, at: 0, what }
    }

    fn corrupt(&self) -> TrustError {
        TrustError::Corrupt { what: self.what, offset: self.at as u64 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TrustError> {
        if self.remaining() < n {
            return Err(self.corrupt());
        }
        let bytes = &self.data[self.at..self.at + n];
        self.at += n;
        Ok(bytes)
    }

    fn u8(&mut self) -> Result<u8, TrustError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, TrustError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(self.corrupt()),
        }
    }

    fn u32(&mut self) -> Result<u32, TrustError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes taken")))
    }

    fn u64(&mut self) -> Result<u64, TrustError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes taken")))
    }

    fn f64(&mut self) -> Result<f64, TrustError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Trailing bytes after a complete decode are corruption too — a
    /// well-formed peer writes exactly the body and nothing else.
    fn finish(self) -> Result<(), TrustError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(self.corrupt())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_completed(peer: u32) -> CompletedDelegation<u32> {
        CompletedDelegation {
            trustee: peer,
            task: TaskId(3),
            goal: Goal::ANY,
            context: Context::amicable(TaskId(3)),
            observation: Observation { success_rate: 0.375, gain: 0.1, damage: 0.0, cost: 0.0625 },
            resource_use: ResourceUse::Abusive,
        }
    }

    fn roundtrip_request(req: &Request<u32>) -> Request<u32> {
        let mut out = Vec::new();
        encode_request(&mut out, 42, req);
        let (id, decoded) = decode_request::<u32>(&out).unwrap_or_else(|_| panic!("decodes"));
        assert_eq!(id, 42);
        decoded
    }

    #[test]
    fn commit_round_trips_bit_identical() {
        let original = sample_completed(9);
        let Request::Commit(decoded) = roundtrip_request(&Request::Commit(sample_completed(9)))
        else {
            panic!("wrong variant")
        };
        assert_eq!(decoded.trustee, original.trustee);
        assert_eq!(decoded.task, original.task);
        assert_eq!(decoded.observation.success_rate.to_bits(), 0.375f64.to_bits());
        assert_eq!(
            decoded.context.environment.value().to_bits(),
            original.context.environment.value().to_bits()
        );
        assert_eq!(decoded.resource_use, ResourceUse::Abusive);
    }

    #[test]
    fn delegation_request_round_trips_without_renormalizing() {
        let task =
            Task::new(TaskId(1), [(CharacteristicId(2), 0.7), (CharacteristicId(5), 0.2)]).unwrap();
        let original: DelegationRequest<u32> =
            DelegationRequest::new(11, &task, Goal::profitable(), Context::amicable(task.id()))
                .with_referral(Referral::new([0.9, 0.8]))
                .with_prior(TrustRecord::with_priors(1.0, 1.0, 0.0, 0.0));
        let mut out = Vec::new();
        encode_request(&mut out, 7, &Request::Evaluate(original.clone()));
        let (_, decoded) = decode_request::<u32>(&out).unwrap_or_else(|_| panic!("decodes"));
        let Request::Evaluate(decoded) = decoded else { panic!("wrong variant") };
        // weights survive bit-identically: a double normalization would
        // perturb the low bits of 0.7/0.9
        for (a, b) in original.task.characteristics().iter().zip(decoded.task.characteristics()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        assert_eq!(decoded.referrals, original.referrals);
        assert_eq!(decoded.prior, original.prior);
    }

    #[test]
    fn errors_round_trip_with_interned_strings() {
        let cases = [
            TrustError::OutOfUnitRange { what: "success_rate", value: 1.5 },
            TrustError::BadEnvironment(-0.25),
            TrustError::EmptyTask,
            TrustError::NonPositiveWeight(0.0),
            TrustError::UncoveredCharacteristics { missing: 3 },
            TrustError::WorkerPanicked,
            TrustError::Corrupt { what: "log frame checksum", offset: 99 },
            TrustError::UnsupportedFormat { found: 9, expected: 1 },
            TrustError::Io("disk on fire".into()),
            TrustError::ServiceStopped,
            TrustError::TimedOut,
            TrustError::NodeUnavailable { addr: "10.0.0.7:4000".into() },
        ];
        for err in cases {
            let payload = err_payload(5, &err);
            assert_eq!(&payload[..8], &5u64.to_le_bytes());
            let decoded = split_status(&payload[8..]).unwrap_err();
            assert_eq!(decoded, err);
        }
        // unknown &'static str degrades to "remote" instead of failing
        let exotic = TrustError::Corrupt { what: "wire session", offset: 1 };
        let payload = err_payload(0, &exotic);
        assert_eq!(
            split_status(&payload[8..]).unwrap_err(),
            TrustError::Corrupt { what: "remote", offset: 1 }
        );
    }

    #[test]
    fn malformed_requests_are_typed_not_panics() {
        // unaddressable: shorter than a request id
        assert!(matches!(decode_request::<u32>(&[1, 2, 3]), Err(RequestError::Unaddressable)));
        // unknown opcode: addressed to the id it carried
        let mut out = Vec::new();
        out.extend_from_slice(&77u64.to_le_bytes());
        out.push(0xEE);
        assert!(matches!(
            decode_request::<u32>(&out),
            Err(RequestError::Addressed(77, TrustError::Corrupt { .. }))
        ));
        // truncated body
        let mut out = Vec::new();
        encode_request(&mut out, 8, &Request::Commit(sample_completed(1)));
        out.truncate(out.len() - 5);
        assert!(matches!(decode_request::<u32>(&out), Err(RequestError::Addressed(8, _))));
        // trailing garbage after a complete body
        let mut out = Vec::new();
        encode_request(&mut out, 9, &Request::<u32>::Flush);
        out.push(0);
        assert!(matches!(decode_request::<u32>(&out), Err(RequestError::Addressed(9, _))));
        // a CommitMany count that lies about the remaining bytes must not
        // drive a huge allocation
        let mut out = Vec::new();
        out.extend_from_slice(&1u64.to_le_bytes());
        out.push(2); // OP_COMMIT_MANY
        out.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_request::<u32>(&out), Err(RequestError::Addressed(1, _))));
        // NaN observation: rejected by the same validation local callers get
        let mut ok = Vec::new();
        encode_request(&mut ok, 2, &Request::Commit(sample_completed(1)));
        let sr_at = 8 + 1 + 8 + 4 + 32 + 12; // id|op|trustee|task|goal|context
        ok[sr_at..sr_at + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            decode_request::<u32>(&ok),
            Err(RequestError::Addressed(2, TrustError::OutOfUnitRange { .. }))
        ));
    }

    #[test]
    fn tagged_commits_round_trip() {
        let original = Request::CommitManySeq {
            session: 0xDEAD_BEEF_CAFE,
            seq: 41,
            batch: vec![sample_completed(3), sample_completed(8)],
        };
        let Request::CommitManySeq { session, seq, batch } = roundtrip_request(&original) else {
            panic!("wrong variant")
        };
        assert_eq!(session, 0xDEAD_BEEF_CAFE);
        assert_eq!(seq, 41);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].trustee, 3);
        assert_eq!(batch[1].trustee, 8);
        assert_eq!(batch[0].observation.success_rate.to_bits(), 0.375f64.to_bits());
        // a tagged count that lies about the remaining bytes is rejected
        // before it can size an allocation, like the untagged path
        let mut out = Vec::new();
        out.extend_from_slice(&4u64.to_le_bytes());
        out.push(13); // OP_COMMIT_MANY_SEQ
        out.extend_from_slice(&[0u8; 16]); // session | seq
        out.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_request::<u32>(&out), Err(RequestError::Addressed(4, _))));
    }

    #[test]
    fn response_bodies_round_trip() {
        let receipt = DelegationReceipt::<u32> {
            trustee: 4,
            task: TaskId(2),
            record: TrustRecord::with_priors(0.8, 0.5, 0.1, 0.2),
            trustworthiness: Trustworthiness::new(0.625),
            fulfilled: true,
        };
        let mut body = Vec::new();
        put_receipts(&mut body, std::slice::from_ref(&receipt));
        let decoded = decode_receipts::<u32>(&body).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].record, receipt.record);
        assert_eq!(decoded[0].trustworthiness.value().to_bits(), 0.625f64.to_bits());

        let cut = Cut { epochs: vec![3, 5], value: vec![1u32, 9, 200] };
        let mut body = Vec::new();
        put_peers_cut(&mut body, &cut);
        assert_eq!(decode_peers_cut::<u32>(&body).unwrap(), cut);

        let stats = vec![ShardStats {
            mailbox_depth: 2,
            mailbox_capacity: 1024,
            drains: 7,
            commit_batches: 3,
            committed: 40,
            largest_commit_batch: 16,
            last_commit_batch: 4,
            published_epoch: 6,
        }];
        let mut body = Vec::new();
        put_stats(&mut body, &stats);
        assert_eq!(decode_stats(&body).unwrap(), stats);

        let ev: EvaluatedDelegation<u32> = EvaluatedDelegation {
            trustee: 6,
            task: TaskId(0),
            goal: Goal::profitable(),
            context: Context::amicable(TaskId(0)),
            expectation: TrustRecord::with_priors(0.9, 1.0, 0.0, 0.0),
            trustworthiness: Trustworthiness::new(0.9),
            basis: EvaluationBasis::Direct,
            verdict: Err(DeclineReason::Unprofitable),
        };
        let mut body = Vec::new();
        put_evaluated(&mut body, &ev);
        let decoded = decode_evaluated::<u32>(&body).unwrap();
        assert_eq!(decoded.basis(), EvaluationBasis::Direct);
        assert_eq!(decoded.verdict, Err(DeclineReason::Unprofitable));
        assert_eq!(decoded.expectation(), &ev.expectation);
    }
}
