//! The calling side: [`RemoteTrustServiceHandle`] mirrors the local
//! service handle API over one TCP connection.
//!
//! Every method sends its request frame **eagerly** (on the method call,
//! not the first poll) tagged with a fresh request id, registers a oneshot
//! for the response, and returns a plain `std` future — so callers
//! pipeline exactly like they do against a local handle: submit a window
//! of completions first, await the receipts after. One background reader
//! thread pairs response frames back to their oneshots by id; responses
//! may arrive in any order, which is what makes the pipelining free of
//! head-of-line blocking.
//!
//! # Failure model
//!
//! Everything is a typed [`TrustError`], never a hang:
//!
//! - a *request-level* failure reported by the server (validation,
//!   stopped service) resolves just that future to the decoded error;
//! - a **corrupt response stream** fails every in-flight future with the
//!   decode error, then closes the connection;
//! - a **dead connection** (server gone, sockets closed) resolves every
//!   in-flight future — and every later call — to
//!   [`TrustError::ServiceStopped`].
//!
//! Dropping the last clone of a handle closes the connection.

use std::collections::HashMap;
use std::future::Future;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::task::{Context, Poll};
use std::thread;
use std::time::{Duration, Instant};

use futures::channel::oneshot;

use super::wire::{self, QueryKind, Request};
use crate::delegation::{
    CompletedDelegation, Decision, DelegationOutcome, DelegationReceipt, DelegationRequest,
    EvaluatedDelegation,
};
use crate::error::TrustError;
use crate::framing;
use crate::log_backend::LogKey;
use crate::record::TrustRecord;
use crate::service::sharded::Freshness;
use crate::service::{Cut, ShardStats};
use crate::task::{Task, TaskId};
use crate::tw::Trustworthiness;

/// Sessions per `CommitMany` frame: large enough that framing overhead
/// vanishes, small enough that one frame stays far under
/// the wire's frame-size cap and the server can interleave
/// other clients between chunks. The fleet tier chunks its tagged commits
/// at the same size.
pub const BATCH_CHUNK: usize = 65_536;

/// Default bound on [`RemoteTrustServiceHandle::connect`]: TCP connect
/// plus the banner handshake must finish within it, or the attempt fails
/// with a typed [`TrustError::TimedOut`] instead of hanging forever on a
/// black-holed address.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

struct WriteHalf {
    stream: TcpStream,
    /// Once set, no request will ever be written again; checked *after*
    /// registering in the pending map so a concurrent close can never
    /// strand a future (see [`ClientInner::send`]).
    closed: bool,
}

struct ClientInner {
    next_id: AtomicU64,
    writer: Mutex<WriteHalf>,
    pending: Mutex<HashMap<u64, oneshot::Sender<Vec<u8>>>>,
}

impl Drop for ClientInner {
    fn drop(&mut self) {
        // unblocks the reader thread (which holds only a Weak to us)
        let writer = self.writer.get_mut().expect("writer half");
        let _ = writer.stream.shutdown(Shutdown::Both);
    }
}

/// A connected client handle to a [`RemoteTrustServer`]. Mirrors the
/// local [`TrustServiceHandle`]/[`ShardedTrustServiceHandle`] API; see
/// the [module docs](crate::service::remote) for pipelining and failure semantics.
///
/// Cloning is cheap and clones share the connection (and its request-id
/// space) — hand clones to as many threads as you like.
///
/// [`RemoteTrustServer`]: super::RemoteTrustServer
/// [`TrustServiceHandle`]: crate::service::TrustServiceHandle
/// [`ShardedTrustServiceHandle`]: crate::service::ShardedTrustServiceHandle
#[derive(Debug)]
pub struct RemoteTrustServiceHandle<P> {
    inner: Arc<ClientInner>,
    _peer: std::marker::PhantomData<fn(P) -> P>,
}

impl<P> Clone for RemoteTrustServiceHandle<P> {
    fn clone(&self) -> Self {
        RemoteTrustServiceHandle { inner: Arc::clone(&self.inner), _peer: std::marker::PhantomData }
    }
}

impl std::fmt::Debug for ClientInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientInner").finish_non_exhaustive()
    }
}

impl<P: LogKey + Send + 'static> RemoteTrustServiceHandle<P> {
    /// Connects to a [`RemoteTrustServer`](super::RemoteTrustServer) and
    /// performs the banner handshake, both bounded by
    /// [`DEFAULT_CONNECT_TIMEOUT`]. Fails typed on a version mismatch
    /// ([`TrustError::UnsupportedFormat`]), a non-SIOT peer
    /// ([`TrustError::Corrupt`]), or a peer that accepts the connection but
    /// never answers the banner ([`TrustError::TimedOut`] — a black-holed
    /// address can no longer hang the caller forever).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, TrustError> {
        Self::connect_with(addr, DEFAULT_CONNECT_TIMEOUT)
    }

    /// [`connect`](Self::connect) with an explicit bound on the whole
    /// attempt (TCP connect + banner exchange).
    pub fn connect_with(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Self, TrustError> {
        let deadline = Instant::now() + timeout;
        // resolve first: connect_timeout needs concrete addresses. Try
        // each, splitting what remains of the budget evenly across them.
        let addrs: Vec<_> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(TrustError::Io("address resolved to nothing".into()));
        }
        let mut stream = None;
        let mut last_err = TrustError::TimedOut;
        for (i, a) in addrs.iter().enumerate() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(TrustError::TimedOut);
            }
            let budget = remaining / (addrs.len() - i) as u32;
            match TcpStream::connect_timeout(a, budget.max(Duration::from_millis(1))) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = timeout_as_typed(e),
            }
        }
        let Some(mut stream) = stream else { return Err(last_err) };
        let _ = stream.set_nodelay(true);
        // the banner exchange runs under socket deadlines so a peer that
        // accepts but never speaks cannot wedge the caller
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(TrustError::TimedOut);
        }
        stream.set_write_timeout(Some(remaining))?;
        stream.set_read_timeout(Some(remaining))?;
        let handshake = (|| -> std::io::Result<[u8; wire::BANNER_LEN]> {
            stream.write_all(&wire::banner())?;
            let mut banner = [0u8; wire::BANNER_LEN];
            stream.read_exact(&mut banner)?;
            Ok(banner)
        })();
        let banner = handshake.map_err(timeout_as_typed)?;
        wire::check_banner(&banner)?;
        // steady state reads/writes block indefinitely again: per-request
        // deadlines are the fleet tier's job, not the socket's
        stream.set_read_timeout(None)?;
        stream.set_write_timeout(None)?;
        let reader_stream = stream.try_clone()?;
        let inner = Arc::new(ClientInner {
            next_id: AtomicU64::new(0),
            writer: Mutex::new(WriteHalf { stream, closed: false }),
            pending: Mutex::new(HashMap::new()),
        });
        let weak = Arc::downgrade(&inner);
        thread::Builder::new()
            .name("siot-remote-client-rx".into())
            .spawn(move || reader_loop(reader_stream, weak))
            .map_err(|e| TrustError::Io(e.to_string()))?;
        Ok(RemoteTrustServiceHandle { inner, _peer: std::marker::PhantomData })
    }

    /// Whether this handle's connection is closed (reader saw EOF/corrupt
    /// stream, or a write failed). Once true, every call fails with
    /// [`TrustError::ServiceStopped`] — the signal the fleet tier uses to
    /// distinguish a *dead transport* (reconnect and retry) from a
    /// healthy server reporting a genuinely stopped service (final).
    pub fn transport_closed(&self) -> bool {
        self.inner.writer.lock().expect("writer half").closed
    }

    /// Eagerly submits one `(session, seq)`-tagged batch — the fleet
    /// tier's idempotent commit path. A server that already folded this
    /// tag replays the cached receipts instead of folding again, so
    /// resending the identical call after a connection loss can never
    /// double-count (see [`DedupWindow`](super::DedupWindow)). The batch
    /// must fit one frame — callers chunk at [`BATCH_CHUNK`] sessions.
    pub fn submit_batch_tagged(
        &self,
        session: u64,
        seq: u64,
        batch: Vec<CompletedDelegation<P>>,
    ) -> RemotePending<Vec<DelegationReceipt<P>>> {
        self.send(Request::CommitManySeq { session, seq, batch }, wire::decode_receipts::<P>)
    }

    /// Encodes and writes one request frame, returning the future of its
    /// decoded response.
    fn send<T>(&self, request: Request<P>, decode: DecodeFn<T>) -> RemotePending<T> {
        let req_id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let mut frame = Vec::new();
        let start = framing::begin_frame(&mut frame);
        wire::encode_request(&mut frame, req_id, &request);
        framing::end_frame(&mut frame, start);
        self.send_frame(req_id, frame, decode)
    }

    /// [`send`](Self::send) from a pre-encoded request tail (opcode
    /// onward) — the fleet's resend path: the same bytes that failed go
    /// back out verbatim under a fresh request id.
    pub(crate) fn send_tail<T>(&self, tail: &[u8], decode: DecodeFn<T>) -> RemotePending<T> {
        let req_id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let mut frame = Vec::new();
        let start = framing::begin_frame(&mut frame);
        frame.extend_from_slice(&req_id.to_le_bytes());
        frame.extend_from_slice(tail);
        framing::end_frame(&mut frame, start);
        self.send_frame(req_id, frame, decode)
    }

    /// Writes one fully-framed request eagerly and registers its oneshot.
    fn send_frame<T>(&self, req_id: u64, frame: Vec<u8>, decode: DecodeFn<T>) -> RemotePending<T> {
        let (tx, rx) = oneshot::channel();
        self.inner.pending.lock().expect("pending map").insert(req_id, tx);
        let mut writer = self.inner.writer.lock().expect("writer half");
        if writer.closed {
            // the reader already drained (or is draining) the pending map
            // under this same closed flag; our entry may or may not have
            // been caught — remove it ourselves and fail locally
            drop(writer);
            self.inner.pending.lock().expect("pending map").remove(&req_id);
            return RemotePending::failed(TrustError::ServiceStopped);
        }
        if let Err(e) = writer.stream.write_all(&frame) {
            writer.closed = true;
            let _ = writer.stream.shutdown(Shutdown::Both);
            drop(writer);
            self.inner.pending.lock().expect("pending map").remove(&req_id);
            return RemotePending::failed(e.into());
        }
        drop(writer);
        RemotePending::waiting(rx, decode)
    }

    /// Eagerly submits one finished session; mirrors
    /// [`TrustServiceHandle::submit`](crate::service::TrustServiceHandle::submit).
    pub fn submit(&self, completed: CompletedDelegation<P>) -> RemotePending<DelegationReceipt<P>> {
        self.send(Request::Commit(completed), wire::decode_receipt::<P>)
    }

    /// Eagerly submits a batch of finished sessions and returns the future
    /// of their receipts in batch order. Large batches are split into
    /// frames of `BATCH_CHUNK` sessions, all written before this
    /// returns, so the server folds them as one pipelined stream. An empty
    /// batch resolves immediately without a round trip.
    pub fn submit_batch(
        &self,
        mut batch: Vec<CompletedDelegation<P>>,
    ) -> impl Future<Output = Result<Vec<DelegationReceipt<P>>, TrustError>> {
        let mut parts = Vec::new();
        while !batch.is_empty() {
            let rest = batch.split_off(batch.len().min(BATCH_CHUNK));
            parts.push(self.send(Request::CommitMany(batch), wire::decode_receipts::<P>));
            batch = rest;
        }
        async move {
            let mut receipts = Vec::new();
            for part in parts {
                receipts.extend(part.await?);
            }
            Ok(receipts)
        }
    }

    /// Commits one finished session and resolves to its receipt.
    pub async fn commit(
        &self,
        completed: CompletedDelegation<P>,
    ) -> Result<DelegationReceipt<P>, TrustError> {
        self.submit(completed).await
    }

    /// Runs the §3.3 evaluation server-side and resolves to the evaluated
    /// session — the same `EvaluatedDelegation` a local handle returns, so
    /// `into_decision` works identically.
    pub async fn evaluate(
        &self,
        request: DelegationRequest<P>,
    ) -> Result<EvaluatedDelegation<P>, TrustError> {
        self.send(Request::Evaluate(request), wire::decode_evaluated::<P>).await
    }

    /// [`evaluate`](Self::evaluate) carried through to the §3.4 decision,
    /// made locally from the wire evaluation.
    pub async fn delegate(&self, request: DelegationRequest<P>) -> Result<Decision<P>, TrustError> {
        Ok(self.evaluate(request).await?.into_decision())
    }

    /// The whole committed session in one round trip: activation,
    /// validation, and the batched fold all happen server-side.
    pub async fn complete(
        &self,
        request: DelegationRequest<P>,
        outcome: DelegationOutcome,
    ) -> Result<DelegationReceipt<P>, TrustError> {
        self.send(Request::Complete(request, outcome), wire::decode_receipt::<P>).await
    }

    /// Registers (or replaces) a task definition in the served engine.
    pub async fn register_task(&self, task: Task) -> Result<(), TrustError> {
        self.send(Request::RegisterTask(task), wire::decode_unit).await
    }

    /// Eq. 18 trustworthiness toward `(peer, task)` —
    /// [`Freshness::Relaxed`].
    pub async fn trustworthiness(
        &self,
        peer: P,
        task: TaskId,
    ) -> Result<Option<Trustworthiness>, TrustError> {
        self.trustworthiness_with(peer, task, Freshness::Relaxed).await
    }

    /// [`trustworthiness`](Self::trustworthiness) at an explicit
    /// freshness. Under [`Freshness::Snapshot`] a fresh-enough server
    /// answers straight off the published replica snapshot — the reply
    /// never waits behind the write path at all.
    pub async fn trustworthiness_with(
        &self,
        peer: P,
        task: TaskId,
        freshness: Freshness,
    ) -> Result<Option<Trustworthiness>, TrustError> {
        self.send(Request::Trustworthiness(peer, task, freshness), wire::decode_opt_tw).await
    }

    /// The record for `(peer, task)`, if any interaction happened —
    /// [`Freshness::Relaxed`].
    pub async fn record(&self, peer: P, task: TaskId) -> Result<Option<TrustRecord>, TrustError> {
        self.record_with(peer, task, Freshness::Relaxed).await
    }

    /// [`record`](Self::record) at an explicit freshness.
    pub async fn record_with(
        &self,
        peer: P,
        task: TaskId,
        freshness: Freshness,
    ) -> Result<Option<TrustRecord>, TrustError> {
        self.send(Request::Record(peer, task, freshness), wire::decode_opt_record).await
    }

    /// Many trustworthiness lookups in bulk: the whole batch rides
    /// `QueryMany` frames of up to [`BATCH_CHUNK`] items (all written
    /// before this returns, like [`submit_batch`](Self::submit_batch)),
    /// and resolves to one answer per item in batch order. The
    /// homogeneous-read mirror of `CommitMany` — one frame instead of
    /// thousands of per-item round trips. An empty batch resolves
    /// immediately without a round trip.
    pub fn trustworthiness_many(
        &self,
        mut items: Vec<(P, TaskId)>,
        freshness: Freshness,
    ) -> impl Future<Output = Result<Vec<Option<Trustworthiness>>, TrustError>> {
        let mut parts = Vec::new();
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(BATCH_CHUNK));
            parts.push(self.send(
                Request::QueryMany { kind: QueryKind::Trustworthiness, freshness, items },
                wire::decode_opt_tws,
            ));
            items = rest;
        }
        async move {
            let mut answers = Vec::new();
            for part in parts {
                answers.extend(part.await?);
            }
            Ok(answers)
        }
    }

    /// Many record lookups in bulk; see
    /// [`trustworthiness_many`](Self::trustworthiness_many).
    pub fn record_many(
        &self,
        mut items: Vec<(P, TaskId)>,
        freshness: Freshness,
    ) -> impl Future<Output = Result<Vec<Option<TrustRecord>>, TrustError>> {
        let mut parts = Vec::new();
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(BATCH_CHUNK));
            parts.push(self.send(
                Request::QueryMany { kind: QueryKind::Record, freshness, items },
                wire::decode_opt_records,
            ));
            items = rest;
        }
        async move {
            let mut answers = Vec::new();
            for part in parts {
                answers.extend(part.await?);
            }
            Ok(answers)
        }
    }

    /// Peers with at least one record, ascending —
    /// [`Freshness::Relaxed`], value only.
    pub async fn known_peers(&self) -> Result<Vec<P>, TrustError> {
        Ok(self.known_peers_cut(Freshness::Relaxed).await?.value)
    }

    /// [`known_peers`](Self::known_peers) at an explicit freshness.
    pub async fn known_peers_with(&self, freshness: Freshness) -> Result<Vec<P>, TrustError> {
        Ok(self.known_peers_cut(freshness).await?.value)
    }

    /// The epoch-stamped cut behind [`known_peers`](Self::known_peers).
    /// Under [`Freshness::Aligned`] the server runs its rendezvous
    /// barrier, so the epoch vector names one global instant of the fleet
    /// — the cross-process consistency token.
    pub async fn known_peers_cut(&self, freshness: Freshness) -> Result<Cut<Vec<P>>, TrustError> {
        self.send(Request::KnownPeers(freshness), wire::decode_peers_cut::<P>).await
    }

    /// Every `(peer, record)` pair held for `task`, ascending by peer.
    pub async fn task_records(&self, task: TaskId) -> Result<Vec<(P, TrustRecord)>, TrustError> {
        Ok(self.task_records_cut(task, Freshness::Relaxed).await?.value)
    }

    /// [`task_records`](Self::task_records) at an explicit freshness.
    pub async fn task_records_with(
        &self,
        task: TaskId,
        freshness: Freshness,
    ) -> Result<Vec<(P, TrustRecord)>, TrustError> {
        Ok(self.task_records_cut(task, freshness).await?.value)
    }

    /// The epoch-stamped cut behind [`task_records`](Self::task_records).
    pub async fn task_records_cut(
        &self,
        task: TaskId,
        freshness: Freshness,
    ) -> Result<Cut<Vec<(P, TrustRecord)>>, TrustError> {
        self.send(Request::TaskRecords(task, freshness), wire::decode_records_cut::<P>).await
    }

    /// Saturation counters, one entry per served shard (a single-actor
    /// endpoint reports one).
    pub async fn shard_stats(&self) -> Result<Vec<ShardStats>, TrustError> {
        self.send(Request::ShardStats, wire::decode_stats).await
    }

    /// Pushes served engine state down to stable storage.
    pub async fn flush(&self) -> Result<(), TrustError> {
        self.send(Request::Flush, wire::decode_unit).await
    }

    /// Stops the **served trust service** (drain, flush, exit — same
    /// guarantees as a local shutdown). The transport stays up: later
    /// requests are answered with typed [`TrustError::ServiceStopped`]
    /// errors. Idempotent across clients.
    pub async fn shutdown(&self) -> Result<(), TrustError> {
        self.send(Request::Shutdown, wire::decode_unit).await
    }
}

/// A connect/handshake I/O failure whose kind says "the clock ran out"
/// becomes the typed [`TrustError::TimedOut`]; anything else stays an
/// [`TrustError::Io`].
fn timeout_as_typed(e: std::io::Error) -> TrustError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => TrustError::TimedOut,
        _ => e.into(),
    }
}

fn reader_loop(mut stream: TcpStream, client: Weak<ClientInner>) {
    let mut decoder = framing::StreamDecoder::new(wire::MAX_WIRE_FRAME);
    let mut buf = vec![0u8; 64 * 1024];
    // None: clean EOF (server closed) → pending futures fail ServiceStopped.
    // Some(err): the response stream itself is sick → pending futures get
    // the typed decode error.
    let failure: Option<TrustError> = 'read: loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break None,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break None,
        };
        decoder.extend(&buf[..n]);
        loop {
            // split id and body straight out of the stream buffer — the
            // single copy made is the owned body handed to the waiter
            let split = decoder.next_payload_with(|payload| {
                if payload.len() < 9 {
                    return None;
                }
                let req_id = u64::from_le_bytes(payload[..8].try_into().expect("length checked"));
                Some((req_id, payload[8..].to_vec()))
            });
            match split {
                Ok(Some(Some((req_id, body)))) => {
                    let Some(client) = client.upgrade() else { return };
                    let sender = client.pending.lock().expect("pending map").remove(&req_id);
                    if let Some(sender) = sender {
                        let _ = sender.send(body);
                    }
                }
                Ok(Some(None)) => {
                    break 'read Some(TrustError::Corrupt { what: "wire response", offset: 0 });
                }
                Ok(None) => break,
                Err(err) => break 'read Some(err),
            }
        }
    };
    let Some(client) = client.upgrade() else { return };
    // order matters: set closed under the writer lock *first*, so any
    // send() that slips its entry into the pending map afterwards will see
    // the flag and fail itself — nothing can be stranded un-resolved
    {
        let mut writer = client.writer.lock().expect("writer half");
        writer.closed = true;
        let _ = writer.stream.shutdown(Shutdown::Both);
    }
    let drained: Vec<oneshot::Sender<Vec<u8>>> = {
        let mut pending = client.pending.lock().expect("pending map");
        pending.drain().map(|(_, tx)| tx).collect()
    };
    match failure {
        // synthesize an error response for every in-flight future: they
        // resolve to the typed error, not a mystery hang
        Some(err) => {
            let body = wire::err_body(&err);
            for tx in drained {
                let _ = tx.send(body.clone());
            }
        }
        // dropping the senders cancels the oneshots; RemotePending maps
        // cancellation to ServiceStopped
        None => drop(drained),
    }
}

pub(crate) type DecodeFn<T> = fn(&[u8]) -> Result<T, TrustError>;

enum RemoteState<T> {
    Waiting(oneshot::Receiver<Vec<u8>>, DecodeFn<T>),
    Failed(Option<TrustError>),
}

/// The future of one remote response. Plain `std`, `Unpin`; drive it with
/// [`block_on`](crate::service::block_on) or any executor. Dropping it
/// abandons the response (the reader discards unclaimed ids).
pub struct RemotePending<T> {
    state: RemoteState<T>,
}

impl<T> RemotePending<T> {
    fn waiting(rx: oneshot::Receiver<Vec<u8>>, decode: DecodeFn<T>) -> Self {
        RemotePending { state: RemoteState::Waiting(rx, decode) }
    }

    fn failed(err: TrustError) -> Self {
        RemotePending { state: RemoteState::Failed(Some(err)) }
    }
}

impl<T> std::fmt::Debug for RemotePending<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemotePending").finish_non_exhaustive()
    }
}

impl<T> Unpin for RemotePending<T> {}

impl<T> Future for RemotePending<T> {
    type Output = Result<T, TrustError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match &mut self.get_mut().state {
            RemoteState::Waiting(rx, decode) => Pin::new(rx).poll(cx).map(|r| match r {
                Ok(tail) => decode(wire::split_status(&tail)?),
                Err(oneshot::Canceled) => Err(TrustError::ServiceStopped),
            }),
            RemoteState::Failed(err) => {
                Poll::Ready(Err(err.take().expect("a resolved RemotePending is not re-polled")))
            }
        }
    }
}
