//! The serving side: a TCP listener that exposes a running trust service
//! — single-actor or sharded — to remote [`RemoteTrustServiceHandle`]s.
//!
//! # Threading model
//!
//! One **accept** thread owns the listener. Each accepted connection gets
//! two threads:
//!
//! - a **reader** that performs the banner handshake, then feeds bytes
//!   through a [`StreamDecoder`], decodes each request, and dispatches it
//!   *immediately* through the service's eager send seams — so requests
//!   enter the actor mailboxes in the exact order this connection sent
//!   them, and a full mailbox blocks the reader, which stops reading the
//!   socket, which is TCP backpressure all the way to the client;
//! - a **writer** that multiplexes the in-flight reply futures of its
//!   connection with a shared [`Parker`] waker and writes each response
//!   frame as its future completes — *completion* order, not request
//!   order, which is what lets a cheap query overtake a slow flush on the
//!   same connection. Request ids pair responses back up client-side.
//!
//! # Failure containment
//!
//! A connection is a failure domain: a client that disconnects mid-batch
//! (or sends garbage) tears down its two threads and nothing else —
//! commits already in the mailboxes fold normally, their receipts resolve
//! into futures the dying writer simply drops, and every other connection
//! keeps being served. Framing-level violations (bad banner, corrupt
//! frame) close the connection; *request-level* decode errors (unknown
//! opcode, malformed body) are answered with the typed error on the id
//! they arrived under and the connection keeps serving.
//!
//! Stopping the **served trust service** does not stop the transport: a
//! stopped service answers every subsequent request with a typed
//! [`TrustError::ServiceStopped`] response. Stopping the **server**
//! closes the sockets, which clients surface as `ServiceStopped` on all
//! their in-flight futures.

use std::collections::VecDeque;
use std::future::Future;
use std::hash::Hash;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};
use std::thread::{self, JoinHandle};

use futures::executor::Parker;

use super::client::DEFAULT_CONNECT_TIMEOUT;
use super::dedup::{Claim, DedupWindow, TaggedCommit};
use super::wire::{self, QueryKind, Request, RequestError};
use crate::error::TrustError;
use crate::framing::{self, StreamDecoder};
use crate::log_backend::LogKey;
use crate::service::sharded::{FanOut, ShardedTrustServiceHandle};
use crate::service::{Command, Cut, Freshness, Message, Pending, Query, TrustServiceHandle};
use crate::task::TaskId;

/// The service a [`RemoteTrustServer`] fronts: one actor or a sharded
/// fleet, behind one uniform wire surface. Both handle types convert
/// [`Into`] this, so `RemoteTrustServer::bind(addr, handle)` works with
/// either.
#[derive(Debug)]
pub enum ServiceEndpoint<P> {
    /// A single [`TrustService`](crate::service::TrustService) actor.
    Single(TrustServiceHandle<P>),
    /// A [`ShardedTrustService`](crate::service::ShardedTrustService)
    /// fleet — commits route by trustee, broadcasts fan out, and the
    /// epoch vectors in cut replies carry one entry per shard.
    Sharded(ShardedTrustServiceHandle<P>),
}

impl<P> Clone for ServiceEndpoint<P> {
    fn clone(&self) -> Self {
        match self {
            ServiceEndpoint::Single(h) => ServiceEndpoint::Single(h.clone()),
            ServiceEndpoint::Sharded(h) => ServiceEndpoint::Sharded(h.clone()),
        }
    }
}

impl<P> From<TrustServiceHandle<P>> for ServiceEndpoint<P> {
    fn from(handle: TrustServiceHandle<P>) -> Self {
        ServiceEndpoint::Single(handle)
    }
}

impl<P> From<ShardedTrustServiceHandle<P>> for ServiceEndpoint<P> {
    fn from(handle: ShardedTrustServiceHandle<P>) -> Self {
        ServiceEndpoint::Sharded(handle)
    }
}

/// A reply future being driven by a connection's writer thread; resolves
/// to the fully-encoded response payload.
type RespFuture = Pin<Box<dyn Future<Output = Vec<u8>> + Send>>;

/// State shared between a connection's reader and writer threads.
struct Conn {
    /// Dispatched reply futures the writer has not yet adopted.
    queue: Mutex<VecDeque<RespFuture>>,
    /// Wakes the writer: new work queued, an in-flight future ready, or
    /// the reader announcing the connection is closing.
    parker: Parker,
    /// Set by the reader on EOF/error: the writer flushes what it has and
    /// exits.
    closing: AtomicBool,
}

#[derive(Debug)]
struct ConnHandle {
    stream: TcpStream,
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
}

/// A TCP server exposing a trust service to remote clients. See the
/// [module docs](crate::service::remote) for the threading and failure model.
#[derive(Debug)]
pub struct RemoteTrustServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<ConnHandle>>>,
    window: DedupWindow,
}

impl RemoteTrustServer {
    /// Binds `addr` (use port 0 for an ephemeral port — read it back with
    /// [`local_addr`](Self::local_addr)) and starts serving `endpoint`.
    /// Accepts any number of concurrent connections until
    /// [`shutdown`](Self::shutdown) or drop. Tagged commits dedup against
    /// a fresh [`DedupWindow`]; to carry one across a node restart, use
    /// [`bind_with`](Self::bind_with).
    pub fn bind<P, A>(addr: A, endpoint: impl Into<ServiceEndpoint<P>>) -> Result<Self, TrustError>
    where
        P: LogKey + Hash + Send + Sync + 'static,
        A: ToSocketAddrs,
    {
        Self::bind_with(addr, endpoint, DedupWindow::new())
    }

    /// [`bind`](Self::bind), but dedup tagged commits against a caller-
    /// supplied [`DedupWindow`]. A supervisor that restarts a node's
    /// server (after a graceful service drain) passes the previous
    /// window here, so commits retried from before the restart replay
    /// their receipts instead of folding twice.
    pub fn bind_with<P, A>(
        addr: A,
        endpoint: impl Into<ServiceEndpoint<P>>,
        window: DedupWindow,
    ) -> Result<Self, TrustError>
    where
        P: LogKey + Hash + Send + Sync + 'static,
        A: ToSocketAddrs,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let endpoint = endpoint.into();
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept = thread::Builder::new()
            .name("siot-remote-accept".into())
            .spawn({
                let stop = Arc::clone(&stop);
                let conns = Arc::clone(&conns);
                let window = window.clone();
                move || accept_loop(listener, endpoint, stop, conns, window)
            })
            .map_err(|e| TrustError::Io(e.to_string()))?;
        Ok(RemoteTrustServer { addr, stop, accept: Some(accept), conns, window })
    }

    /// The address the server is actually listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The [`DedupWindow`] tagged commits are deduplicated against. Clone
    /// it before [`shutdown`](Self::shutdown) to hand the same window to a
    /// replacement server via [`bind_with`](Self::bind_with).
    pub fn dedup_window(&self) -> DedupWindow {
        self.window.clone()
    }

    /// Stops accepting, closes every live connection, and joins all
    /// transport threads. The served trust service itself is untouched —
    /// it keeps running for local handles (stop it through its own
    /// `shutdown`). Clients see their in-flight futures resolve to
    /// [`TrustError::ServiceStopped`].
    pub fn shutdown(mut self) {
        self.stop_transport();
    }

    fn stop_transport(&mut self) {
        let Some(accept) = self.accept.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        // the accept thread is parked in accept(2); a throwaway connection
        // is the portable way to run it through its stop check
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        let conns = std::mem::take(&mut *self.conns.lock().expect("connection registry"));
        for conn in conns {
            let _ = conn.stream.shutdown(Shutdown::Both);
            let _ = conn.reader.join();
            let _ = conn.writer.join();
        }
    }
}

impl Drop for RemoteTrustServer {
    fn drop(&mut self) {
        self.stop_transport();
    }
}

fn accept_loop<P: LogKey + Hash + Send + Sync + 'static>(
    listener: TcpListener,
    endpoint: ServiceEndpoint<P>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<ConnHandle>>>,
    window: DedupWindow,
) {
    for incoming in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = incoming else { continue };
        if let Ok(handle) = spawn_connection(stream, endpoint.clone(), window.clone()) {
            conns.lock().expect("connection registry").push(handle);
        }
    }
}

fn spawn_connection<P: LogKey + Hash + Send + Sync + 'static>(
    stream: TcpStream,
    endpoint: ServiceEndpoint<P>,
    window: DedupWindow,
) -> std::io::Result<ConnHandle> {
    let _ = stream.set_nodelay(true);
    let conn = Arc::new(Conn {
        queue: Mutex::new(VecDeque::new()),
        parker: Parker::new(),
        closing: AtomicBool::new(false),
    });
    let reader_stream = stream.try_clone()?;
    let writer_stream = stream.try_clone()?;
    let reader = thread::Builder::new().name("siot-remote-rx".into()).spawn({
        let conn = Arc::clone(&conn);
        move || reader_loop(reader_stream, endpoint, conn, window)
    })?;
    let writer = thread::Builder::new()
        .name("siot-remote-tx".into())
        .spawn(move || writer_loop(writer_stream, conn))?;
    Ok(ConnHandle { stream, reader, writer })
}

fn reader_loop<P: LogKey + Hash + Send + Sync + 'static>(
    mut stream: TcpStream,
    endpoint: ServiceEndpoint<P>,
    conn: Arc<Conn>,
    window: DedupWindow,
) {
    // the handshake runs under a socket deadline: a client that connects
    // and then black-holes (never sends its banner) must not pin this
    // reader thread forever
    let handshake = (|| -> Result<(), TrustError> {
        stream.set_write_timeout(Some(DEFAULT_CONNECT_TIMEOUT))?;
        stream.set_read_timeout(Some(DEFAULT_CONNECT_TIMEOUT))?;
        stream.write_all(&wire::banner())?;
        let mut banner = [0u8; wire::BANNER_LEN];
        stream.read_exact(&mut banner)?;
        stream.set_write_timeout(None)?;
        stream.set_read_timeout(None)?;
        wire::check_banner(&banner)
    })();
    if handshake.is_ok() {
        serve(&mut stream, &endpoint, &conn, &window);
    }
    // hand the connection to the writer for its final flush; stop reading
    // but leave the write half open until the writer is done with it
    conn.closing.store(true, Ordering::SeqCst);
    conn.parker.unpark();
    let _ = stream.shutdown(Shutdown::Read);
}

fn serve<P: LogKey + Hash + Send + Sync + 'static>(
    stream: &mut TcpStream,
    endpoint: &ServiceEndpoint<P>,
    conn: &Conn,
    window: &DedupWindow,
) {
    let mut decoder = StreamDecoder::new(wire::MAX_WIRE_FRAME);
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        decoder.extend(&buf[..n]);
        loop {
            // decode straight out of the stream buffer — no payload copy
            match decoder.next_payload_with(wire::decode_request::<P>) {
                Ok(Some(Ok((req_id, request)))) => {
                    enqueue(conn, dispatch(endpoint, window, req_id, request));
                }
                Ok(Some(Err(RequestError::Addressed(req_id, err)))) => {
                    // the request was garbage but its id was readable:
                    // answer it with the typed error and keep serving
                    let payload = wire::err_payload(req_id, &err);
                    enqueue(conn, Box::pin(std::future::ready(payload)));
                }
                Ok(Some(Err(RequestError::Unaddressable))) => return,
                Ok(None) => break,
                // framing violation (oversized length, bad checksum):
                // nothing downstream of this byte can be trusted
                Err(_) => return,
            }
        }
    }
}

fn enqueue(conn: &Conn, fut: RespFuture) {
    conn.queue.lock().expect("conn queue").push_back(fut);
    conn.parker.unpark();
}

fn writer_loop(mut stream: TcpStream, conn: Arc<Conn>) {
    let waker = conn.parker.waker();
    let mut cx = Context::from_waker(&waker);
    let mut inflight: Vec<RespFuture> = Vec::new();
    let mut out = Vec::new();
    loop {
        inflight.extend(conn.queue.lock().expect("conn queue").drain(..));
        let mut i = 0;
        while i < inflight.len() {
            match inflight[i].as_mut().poll(&mut cx) {
                Poll::Ready(payload) => {
                    let start = framing::begin_frame(&mut out);
                    out.extend_from_slice(&payload);
                    framing::end_frame(&mut out, start);
                    drop(inflight.swap_remove(i));
                }
                Poll::Pending => i += 1,
            }
        }
        if !out.is_empty() {
            if stream.write_all(&out).is_err() {
                break;
            }
            out.clear();
        }
        if conn.closing.load(Ordering::SeqCst)
            && inflight.is_empty()
            && conn.queue.lock().expect("conn queue").is_empty()
        {
            break;
        }
        // level-triggered: anything that happened since the last poll pass
        // (enqueue, future completion, closing) left the token deposited,
        // so this returns immediately rather than losing the wakeup
        conn.parker.park();
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Sends `request` into the endpoint **now** (the eager seams — ordering
/// into the mailboxes matches wire arrival order) and returns the future
/// of its encoded response.
fn dispatch<P: LogKey + Hash + Send + Sync + 'static>(
    endpoint: &ServiceEndpoint<P>,
    window: &DedupWindow,
    req_id: u64,
    request: Request<P>,
) -> RespFuture {
    // tagged commits go through the dedup window regardless of endpoint
    // shape: a retried (session, seq) replays its receipts, never re-folds
    let request = match request {
        Request::CommitManySeq { session, seq, batch } => {
            return dispatch_tagged(endpoint, window, req_id, session, seq, batch);
        }
        other => other,
    };
    match endpoint {
        ServiceEndpoint::Single(h) => match request {
            Request::Commit(completed) => {
                respond(req_id, h.submit(completed), |out, r| wire::put_receipt(out, r))
            }
            Request::CommitMany(batch) => {
                respond(req_id, h.submit_batch(batch), |out, r| wire::put_receipts(out, r))
            }
            Request::Complete(request, outcome) => {
                let p = h.request(|reply| {
                    Message::Command(Command::Complete { request, outcome, reply })
                });
                respond(req_id, async move { p.await? }, |out, r| wire::put_receipt(out, r))
            }
            Request::RegisterTask(task) => {
                let p = h.request(|reply| Message::Command(Command::RegisterTask { task, reply }));
                respond(req_id, p, |_, ()| {})
            }
            Request::Flush => {
                let p = h.request(|reply| Message::Command(Command::Flush { reply }));
                respond(req_id, async move { p.await? }, |_, ()| {})
            }
            Request::Shutdown => {
                let p = h.request(|reply| Message::Command(Command::Shutdown { reply }));
                respond(req_id, tolerate_stopped(p), |_, ()| {})
            }
            Request::Evaluate(request) => {
                let p = h.request(|reply| Message::Query(Query::Evaluate { request, reply }));
                respond(req_id, p, |out, ev| wire::put_evaluated(out, ev))
            }
            // `_round_with` answers `Freshness::Snapshot` hits right here on
            // the reader thread — a ready future, no actor dispatch at all
            Request::Trustworthiness(peer, task, freshness) => respond(
                req_id,
                h.trustworthiness_round_with(peer, task, freshness),
                wire::put_opt_tw,
            ),
            Request::Record(peer, task, freshness) => {
                respond(req_id, h.record_round_with(peer, task, freshness), wire::put_opt_record)
            }
            // a single actor is one shard: every mailbox reply is trivially a
            // consistent cut, so Aligned needs no barrier here; Snapshot is
            // served straight off the published replica
            Request::KnownPeers(freshness) => {
                let p = h.known_peers_round_with(freshness);
                respond(
                    req_id,
                    async move {
                        let (epoch, peers) = p.await?;
                        Ok(Cut { epochs: vec![epoch], value: peers })
                    },
                    |out, cut| wire::put_peers_cut(out, cut),
                )
            }
            Request::TaskRecords(task, freshness) => {
                let p = h.task_records_round_with(task, freshness);
                respond(
                    req_id,
                    async move {
                        let (epoch, records) = p.await?;
                        Ok(Cut { epochs: vec![epoch], value: records })
                    },
                    |out, cut| wire::put_records_cut(out, cut),
                )
            }
            Request::QueryMany { kind, freshness, items } => {
                query_many_single(h, req_id, kind, freshness, items)
            }
            Request::ShardStats => {
                let p = h.stats_in();
                respond(req_id, async move { Ok(vec![p.await?]) }, |out, s| wire::put_stats(out, s))
            }
            Request::CommitManySeq { .. } => unreachable!("routed to dispatch_tagged above"),
        },
        ServiceEndpoint::Sharded(h) => match request {
            Request::Commit(completed) => {
                respond(req_id, h.submit(completed), |out, r| wire::put_receipt(out, r))
            }
            Request::CommitMany(batch) => {
                respond(req_id, h.submit_batch(batch), |out, r| wire::put_receipts(out, r))
            }
            Request::Complete(request, outcome) => {
                let p = h.complete_round(request, outcome);
                respond(req_id, async move { p.await? }, |out, r| wire::put_receipt(out, r))
            }
            Request::RegisterTask(task) => {
                let fan = h.register_task_round(task);
                respond(
                    req_id,
                    async move {
                        fan.await?;
                        Ok(())
                    },
                    |_, ()| {},
                )
            }
            Request::Flush => {
                let fan = h.flush_round();
                respond(
                    req_id,
                    async move {
                        for result in fan.await? {
                            result?;
                        }
                        Ok(())
                    },
                    |_, ()| {},
                )
            }
            Request::Shutdown => {
                let rounds = h.shutdown_round();
                respond(
                    req_id,
                    async move {
                        for p in rounds {
                            tolerate_stopped(p).await?;
                        }
                        Ok(())
                    },
                    |_, ()| {},
                )
            }
            Request::Evaluate(request) => {
                respond(req_id, h.evaluate_round(request), |out, ev| wire::put_evaluated(out, ev))
            }
            Request::Trustworthiness(peer, task, freshness) => respond(
                req_id,
                h.trustworthiness_round_with(peer, task, freshness),
                wire::put_opt_tw,
            ),
            Request::Record(peer, task, freshness) => {
                respond(req_id, h.record_round_with(peer, task, freshness), wire::put_opt_record)
            }
            Request::QueryMany { kind, freshness, items } => {
                query_many_sharded(h, req_id, kind, freshness, items)
            }
            Request::KnownPeers(freshness) => {
                respond(req_id, h.known_peers_round(freshness), |out, cut| {
                    wire::put_peers_cut(out, cut)
                })
            }
            Request::TaskRecords(task, freshness) => {
                respond(req_id, h.task_records_round(task, freshness), |out, cut| {
                    wire::put_records_cut(out, cut)
                })
            }
            Request::ShardStats => {
                respond(req_id, h.stats_round(), |out, s| wire::put_stats(out, s))
            }
            Request::CommitManySeq { .. } => unreachable!("routed to dispatch_tagged above"),
        },
    }
}

/// Dispatches a `(session, seq)`-tagged commit through the [`DedupWindow`]:
/// a fresh tag folds (and caches its receipts), a duplicate of an
/// in-flight tag waits for the owner's result, a duplicate of a completed
/// tag replays the cached receipt bytes — the batch folds **at most once**
/// no matter how many times the client resends it.
fn dispatch_tagged<P: LogKey + Hash + Send + Sync + 'static>(
    endpoint: &ServiceEndpoint<P>,
    window: &DedupWindow,
    req_id: u64,
    session: u64,
    seq: u64,
    batch: Vec<crate::delegation::CompletedDelegation<P>>,
) -> RespFuture {
    match window.claim(session, seq) {
        Claim::Mine => {
            // the fold is dispatched NOW (eager seam, wire order): even if
            // this connection dies before the receipts resolve, the
            // window's orphan driver finishes collecting them, so the tag
            // always becomes replayable
            let fold: Pin<Box<dyn Future<Output = Result<Vec<u8>, TrustError>> + Send>> =
                match endpoint {
                    ServiceEndpoint::Single(h) => {
                        let p = h.submit_batch(batch);
                        Box::pin(async move {
                            let receipts = p.await?;
                            let mut body = Vec::new();
                            wire::put_receipts(&mut body, &receipts);
                            Ok(body)
                        })
                    }
                    ServiceEndpoint::Sharded(h) => {
                        let p = h.submit_batch(batch);
                        Box::pin(async move {
                            let receipts = p.await?;
                            let mut body = Vec::new();
                            wire::put_receipts(&mut body, &receipts);
                            Ok(body)
                        })
                    }
                };
            Box::pin(TaggedCommit {
                req_id,
                window: window.clone(),
                session,
                seq,
                inner: Some(fold),
            })
        }
        Claim::Replay(body) => Box::pin(std::future::ready(wire::ok_payload(req_id, |out| {
            out.extend_from_slice(&body)
        }))),
        Claim::Wait(rx) => Box::pin(async move {
            match rx.await {
                Ok(Ok(body)) => wire::ok_payload(req_id, |out| out.extend_from_slice(&body)),
                Ok(Err(err)) => wire::err_payload(req_id, &err),
                // the owner's window clone vanished without fulfilling —
                // only possible if the window itself is being torn down
                Err(_) => wire::err_payload(req_id, &TrustError::ServiceStopped),
            }
        }),
        Claim::Evicted => Box::pin(std::future::ready(wire::err_payload(
            req_id,
            &TrustError::Io(
                "receipts for replayed tagged commit were evicted from the dedup window".into(),
            ),
        ))),
    }
}

/// Wraps a service-call future into the response payload: the ok body on
/// success, the typed wire error otherwise.
/// Dispatches a [`Request::QueryMany`] batch against a single-actor
/// endpoint: every item is routed through the eager `_round_with` seam on
/// this (reader) thread, so snapshot-fresh reads resolve without touching
/// the actor mailbox, and the rest land in wire arrival order.
fn query_many_single<P: LogKey + Hash + Send + Sync + 'static>(
    h: &TrustServiceHandle<P>,
    req_id: u64,
    kind: QueryKind,
    freshness: Freshness,
    items: Vec<(P, TaskId)>,
) -> RespFuture {
    match kind {
        QueryKind::Trustworthiness => {
            let pending: Vec<Pending<_>> = items
                .into_iter()
                .map(|(peer, task)| h.trustworthiness_round_with(peer, task, freshness))
                .collect();
            respond(req_id, FanOut::new(pending, None), |out, tws| wire::put_opt_tws(out, tws))
        }
        QueryKind::Record => {
            let pending: Vec<Pending<_>> = items
                .into_iter()
                .map(|(peer, task)| h.record_round_with(peer, task, freshness))
                .collect();
            respond(req_id, FanOut::new(pending, None), |out, recs| {
                wire::put_opt_records(out, recs)
            })
        }
    }
}

/// Sharded twin of [`query_many_single`]: each item routes to its owning
/// shard's seam, so one frame can mix snapshot hits (ready immediately)
/// with mailbox fall-throughs across different shards.
fn query_many_sharded<P: LogKey + Hash + Send + Sync + 'static>(
    h: &ShardedTrustServiceHandle<P>,
    req_id: u64,
    kind: QueryKind,
    freshness: Freshness,
    items: Vec<(P, TaskId)>,
) -> RespFuture {
    match kind {
        QueryKind::Trustworthiness => {
            let pending: Vec<Pending<_>> = items
                .into_iter()
                .map(|(peer, task)| h.trustworthiness_round_with(peer, task, freshness))
                .collect();
            respond(req_id, FanOut::new(pending, None), |out, tws| wire::put_opt_tws(out, tws))
        }
        QueryKind::Record => {
            let pending: Vec<Pending<_>> = items
                .into_iter()
                .map(|(peer, task)| h.record_round_with(peer, task, freshness))
                .collect();
            respond(req_id, FanOut::new(pending, None), |out, recs| {
                wire::put_opt_records(out, recs)
            })
        }
    }
}

fn respond<T, F, E>(req_id: u64, fut: F, enc: E) -> RespFuture
where
    T: Send + 'static,
    F: Future<Output = Result<T, TrustError>> + Send + 'static,
    E: FnOnce(&mut Vec<u8>, &T) + Send + 'static,
{
    Box::pin(async move {
        match fut.await {
            Ok(value) => wire::ok_payload(req_id, |out| enc(out, &value)),
            Err(err) => wire::err_payload(req_id, &err),
        }
    })
}

/// A stop request against an already-stopped service is success, not an
/// error — remote `shutdown` stays idempotent across many clients, like
/// the sharded tier's own.
async fn tolerate_stopped(
    p: impl Future<Output = Result<Result<(), TrustError>, TrustError>>,
) -> Result<(), TrustError> {
    match p.await {
        Ok(Ok(())) | Err(TrustError::ServiceStopped) => Ok(()),
        Ok(Err(e)) | Err(e) => Err(e),
    }
}
