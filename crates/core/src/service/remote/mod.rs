//! Federated trust over the wire: a TCP transport that exposes any
//! running [`TrustService`] or [`ShardedTrustService`] to other
//! processes, and a client handle that mirrors the local API.
//!
//! The paper's trust engine is a per-trustor state machine; federating a
//! fleet means many IoT processes feeding observations into (and reading
//! evaluations out of) one trustor's engine. This module is that seam:
//!
//! - [`RemoteTrustServer`] — binds a listener and serves a
//!   [`ServiceEndpoint`] (either service tier) to any number of
//!   connections;
//! - [`RemoteTrustServiceHandle`] — connects, then speaks the same
//!   `submit`/`evaluate`/`commit`/`known_peers`/… vocabulary as a local
//!   handle, over plain `std` futures with full pipelining;
//! - the wire protocol — length-prefixed CRC-32 frames (the same
//!   [`framing`](crate::framing) the durable log uses) carrying
//!   request-id-tagged payloads, every real as its IEEE-754 bits so
//!   values round-trip **bit-identical**.
//!
//! # Consistency across the wire
//!
//! [`Freshness`](crate::service::Freshness) extends across processes via
//! an explicit epoch scheme: each shard's actor stamps replies with its
//! drain count, and cut-shaped replies ([`Cut`](crate::service::Cut))
//! carry the per-shard epoch vector. A
//! [`Freshness::Aligned`](crate::service::Freshness::Aligned) request
//! runs the server-side rendezvous barrier, so the vector a remote caller
//! receives names one global instant of the fleet — the same guarantee a
//! local aligned broadcast gets, now observable (and comparable) from
//! another process.
//!
//! # Quick start
//!
//! ```no_run
//! use siot_core::prelude::*;
//! use siot_core::service::block_on;
//!
//! // process A: serve a sharded fleet
//! let service: ShardedTrustService<u64> =
//!     ShardedTrustService::spawn_sharded(4, ServiceOptions::default(), |_| TrustStore::new());
//! let server = RemoteTrustServer::bind("127.0.0.1:7477", service.handle())?;
//!
//! // process B: connect and use it like a local handle
//! let remote: RemoteTrustServiceHandle<u64> = RemoteTrustServiceHandle::connect("127.0.0.1:7477")?;
//! let peers = block_on(remote.known_peers())?;
//! # drop((server, service, peers));
//! # Ok::<(), siot_core::error::TrustError>(())
//! ```
//!
//! [`TrustService`]: crate::service::TrustService
//! [`ShardedTrustService`]: crate::service::ShardedTrustService

mod client;
mod dedup;
mod server;
pub(crate) mod wire;

pub use client::{RemotePending, RemoteTrustServiceHandle, BATCH_CHUNK, DEFAULT_CONNECT_TIMEOUT};
pub use dedup::{DedupWindow, DEFAULT_DEDUP_BUDGET};
pub use server::{RemoteTrustServer, ServiceEndpoint};
