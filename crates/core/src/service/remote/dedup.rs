//! Server-side idempotency for the fleet tier's tagged commits.
//!
//! A fleet client stamps every commit chunk with a `(session, seq)` tag
//! and resends the **identical** frame after a connection loss, because it
//! cannot know whether the lost connection died before or after the server
//! folded the chunk. The [`DedupWindow`] is what makes that resend safe:
//! each tag folds **at most once** per window, and retries of an
//! already-folded tag get the cached receipt bytes *replayed* — never a
//! second fold, so no observation is ever double-counted.
//!
//! Three cases per claimed tag:
//!
//! - **fresh** — the caller owns the fold; on completion the encoded
//!   receipts are cached for replay and any duplicate arrivals are
//!   notified;
//! - **in flight** — a concurrent duplicate (the client retried while the
//!   original still sat in a mailbox) waits for the owner's result instead
//!   of folding again;
//! - **done** — the cached receipts are replayed as-is.
//!
//! A fold that *fails* is not cached: the typed error is reported to every
//! waiter and the tag is released, so a retry against a recovered service
//! folds normally (a failed request was not accepted, so nothing can be
//! double-counted).
//!
//! The cache is bounded by bytes, evicting oldest-completed entries first;
//! an evicted tag still refuses to re-fold (the seq is remembered), it
//! just can no longer replay receipts — retries of it get a typed error.
//! The window only needs to be deeper than the client's in-flight
//! pipeline, which is a handful of chunks.
//!
//! The window lives as long as the handle you hold, independent of any
//! server: a supervisor that restarts a node's [`RemoteTrustServer`]
//! (after a **graceful** service drain) passes the same window to
//! [`RemoteTrustServer::bind_with`] and in-flight retries from before the
//! restart still replay instead of re-folding. Persisting the window so
//! exactness also survives a hard process crash is future work (see
//! ROADMAP).
//!
//! [`RemoteTrustServer`]: super::RemoteTrustServer
//! [`RemoteTrustServer::bind_with`]: super::RemoteTrustServer::bind_with

use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::{mpsc, Arc, Mutex, Weak};
use std::task::{Context, Poll};
use std::thread;

use futures::channel::oneshot;
use futures::executor::block_on;

use super::wire;
use crate::error::TrustError;

/// Default cap on cached receipt bytes per window — deep enough for many
/// full-size commit chunks, far deeper than any bounded client pipeline.
pub const DEFAULT_DEDUP_BUDGET: usize = 32 << 20;

/// Completed entries kept even when over the byte budget, so tiny budgets
/// cannot evict what a normally-pipelined client might still retry.
const MIN_KEEP: usize = 8;

/// A claim on a `(session, seq)` tag — see the [module docs](self).
pub(crate) enum Claim {
    /// First arrival: the caller folds, then must `fulfill`.
    Mine,
    /// Already folded: replay these receipt bytes.
    Replay(Vec<u8>),
    /// Folding right now on another connection: await the owner's result.
    Wait(oneshot::Receiver<Result<Vec<u8>, TrustError>>),
    /// Folded, but the receipts were evicted from the cache.
    Evicted,
}

enum Slot {
    InFlight(Vec<oneshot::Sender<Result<Vec<u8>, TrustError>>>),
    Done(Vec<u8>),
}

#[derive(Default)]
struct Session {
    slots: HashMap<u64, Slot>,
    /// Seqs that folded but whose receipt bytes were evicted: still
    /// refused a re-fold.
    evicted: std::collections::BTreeSet<u64>,
}

struct Inner {
    sessions: HashMap<u64, Session>,
    /// Completion order of cached entries, for byte-budget eviction.
    order: VecDeque<(u64, u64)>,
    cached_bytes: usize,
    budget: usize,
    /// Lazily-started driver for folds orphaned by a dying connection.
    orphans: Option<mpsc::Sender<Orphan>>,
}

type BodyFuture = Pin<Box<dyn Future<Output = Result<Vec<u8>, TrustError>> + Send>>;

struct Orphan {
    session: u64,
    seq: u64,
    fut: BodyFuture,
}

/// The per-endpoint dedup state behind a [`RemoteTrustServer`]'s tagged
/// commits. Cloning shares the window; see the module docs above for
/// what it guarantees and how to carry it across a node restart.
///
/// [`RemoteTrustServer`]: super::RemoteTrustServer
#[derive(Clone)]
pub struct DedupWindow {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for DedupWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("dedup window");
        f.debug_struct("DedupWindow")
            .field("sessions", &inner.sessions.len())
            .field("cached_bytes", &inner.cached_bytes)
            .finish()
    }
}

impl Default for DedupWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl DedupWindow {
    /// A fresh window with the [default byte budget](DEFAULT_DEDUP_BUDGET).
    pub fn new() -> Self {
        Self::with_budget(DEFAULT_DEDUP_BUDGET)
    }

    /// A fresh window capping cached receipt bytes at `budget` (the most
    /// recent `MIN_KEEP` completions are retained regardless).
    pub fn with_budget(budget: usize) -> Self {
        DedupWindow {
            inner: Arc::new(Mutex::new(Inner {
                sessions: HashMap::new(),
                order: VecDeque::new(),
                cached_bytes: 0,
                budget,
                orphans: None,
            })),
        }
    }

    /// Receipt bytes currently cached for replay.
    pub fn cached_bytes(&self) -> usize {
        self.inner.lock().expect("dedup window").cached_bytes
    }

    pub(crate) fn claim(&self, session: u64, seq: u64) -> Claim {
        let mut inner = self.inner.lock().expect("dedup window");
        let entry = inner.sessions.entry(session).or_default();
        if entry.evicted.contains(&seq) {
            return Claim::Evicted;
        }
        match entry.slots.get_mut(&seq) {
            Some(Slot::Done(body)) => Claim::Replay(body.clone()),
            Some(Slot::InFlight(waiters)) => {
                let (tx, rx) = oneshot::channel();
                waiters.push(tx);
                Claim::Wait(rx)
            }
            None => {
                entry.slots.insert(seq, Slot::InFlight(Vec::new()));
                Claim::Mine
            }
        }
    }

    /// Resolves a [`Claim::Mine`]: caches a success for replay (then
    /// evicts over-budget entries), releases the tag on failure, and
    /// notifies concurrent duplicates either way.
    pub(crate) fn fulfill(&self, session: u64, seq: u64, result: &Result<Vec<u8>, TrustError>) {
        fulfill_locked(&self.inner, session, seq, result);
    }

    /// Hands a claimed-but-unfinished fold to the orphan driver thread:
    /// called when a connection dies while its tagged commit is mid-fold.
    /// The fold was already dispatched into the service's mailboxes, so it
    /// *will* complete — someone has to collect the receipts and fulfill
    /// the tag, or a retry of it would wait forever.
    pub(crate) fn orphan(&self, session: u64, seq: u64, fut: BodyFuture) {
        let mut inner = self.inner.lock().expect("dedup window");
        if inner.orphans.is_none() {
            let (tx, rx) = mpsc::channel::<Orphan>();
            let weak = Arc::downgrade(&self.inner);
            // ignore spawn failure: the send below will error and the tag
            // is released immediately instead
            let spawned = thread::Builder::new()
                .name("siot-remote-dedup".into())
                .spawn(move || orphan_driver(rx, weak))
                .is_ok();
            if spawned {
                inner.orphans = Some(tx);
            }
        }
        let sent = match &inner.orphans {
            Some(tx) => tx.send(Orphan { session, seq, fut }).is_ok(),
            None => false,
        };
        if !sent {
            // no driver: release the tag so a retry can fold again (the
            // in-flight fold's receipts are lost, matching a plain
            // connection-death on the untagged path)
            drop(inner);
            fulfill_locked(&self.inner, session, seq, &Err(TrustError::ServiceStopped));
        }
    }
}

fn fulfill_locked(
    inner: &Mutex<Inner>,
    session: u64,
    seq: u64,
    result: &Result<Vec<u8>, TrustError>,
) {
    let mut inner = inner.lock().expect("dedup window");
    let Some(entry) = inner.sessions.get_mut(&session) else { return };
    let waiters = match entry.slots.remove(&seq) {
        Some(Slot::InFlight(waiters)) => waiters,
        // a Done entry is never fulfilled twice; a missing one was evicted
        Some(done) => {
            entry.slots.insert(seq, done);
            return;
        }
        None => return,
    };
    for tx in waiters {
        let _ = tx.send(result.clone());
    }
    if let Ok(body) = result {
        entry.slots.insert(seq, Slot::Done(body.clone()));
        inner.cached_bytes += body.len();
        inner.order.push_back((session, seq));
        while inner.cached_bytes > inner.budget && inner.order.len() > MIN_KEEP {
            let Some((s, q)) = inner.order.pop_front() else { break };
            let Some(entry) = inner.sessions.get_mut(&s) else { continue };
            if let Some(Slot::Done(body)) = entry.slots.remove(&q) {
                inner.cached_bytes -= body.len();
                // the seq stays refused: evicting receipts must never
                // re-open the door to a double fold
                inner.sessions.get_mut(&s).expect("session present").evicted.insert(q);
            }
        }
    }
    // a failed fold releases the tag: nothing was accepted, retries fold
}

fn orphan_driver(rx: mpsc::Receiver<Orphan>, inner: Weak<Mutex<Inner>>) {
    // exits when every window clone is gone (sender disconnects)
    while let Ok(Orphan { session, seq, fut }) = rx.recv() {
        let result = block_on(fut);
        let Some(inner) = inner.upgrade() else { return };
        fulfill_locked(&inner, session, seq, &result);
    }
}

/// The reply future of a freshly-claimed ([`Claim::Mine`]) tagged commit:
/// drives the fold, fulfills the window on completion, and — if its
/// connection dies first — hands the unfinished fold to the window's
/// orphan driver so the tag still resolves for retries.
pub(crate) struct TaggedCommit {
    pub(crate) req_id: u64,
    pub(crate) window: DedupWindow,
    pub(crate) session: u64,
    pub(crate) seq: u64,
    pub(crate) inner: Option<BodyFuture>,
}

impl Future for TaggedCommit {
    type Output = Vec<u8>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let fut = this.inner.as_mut().expect("a resolved TaggedCommit is not re-polled");
        let result = match fut.as_mut().poll(cx) {
            Poll::Ready(result) => result,
            Poll::Pending => return Poll::Pending,
        };
        this.inner = None;
        this.window.fulfill(this.session, this.seq, &result);
        Poll::Ready(match result {
            Ok(body) => wire::ok_payload(this.req_id, |out| out.extend_from_slice(&body)),
            Err(err) => wire::err_payload(this.req_id, &err),
        })
    }
}

impl Drop for TaggedCommit {
    fn drop(&mut self) {
        if let Some(fut) = self.inner.take() {
            self.window.orphan(self.session, self.seq, fut);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_claim_owns_then_replays() {
        let window = DedupWindow::new();
        assert!(matches!(window.claim(1, 0), Claim::Mine));
        window.fulfill(1, 0, &Ok(vec![1, 2, 3]));
        match window.claim(1, 0) {
            Claim::Replay(body) => assert_eq!(body, vec![1, 2, 3]),
            _ => panic!("expected replay"),
        }
        assert_eq!(window.cached_bytes(), 3);
    }

    #[test]
    fn concurrent_duplicate_waits_for_owner() {
        let window = DedupWindow::new();
        assert!(matches!(window.claim(7, 4), Claim::Mine));
        let Claim::Wait(rx) = window.claim(7, 4) else { panic!("expected wait") };
        window.fulfill(7, 4, &Ok(vec![9]));
        assert_eq!(block_on(rx).expect("owner fulfilled"), Ok(vec![9]));
    }

    #[test]
    fn failed_fold_releases_the_tag() {
        let window = DedupWindow::new();
        assert!(matches!(window.claim(2, 2), Claim::Mine));
        let Claim::Wait(rx) = window.claim(2, 2) else { panic!("expected wait") };
        window.fulfill(2, 2, &Err(TrustError::ServiceStopped));
        assert_eq!(block_on(rx).expect("owner fulfilled"), Err(TrustError::ServiceStopped));
        // the tag folds again on retry — nothing was accepted
        assert!(matches!(window.claim(2, 2), Claim::Mine));
    }

    #[test]
    fn eviction_keeps_refusing_refolds() {
        let window = DedupWindow::with_budget(4);
        // MIN_KEEP entries always survive; push past it
        for seq in 0..(MIN_KEEP as u64 + 4) {
            assert!(matches!(window.claim(1, seq), Claim::Mine));
            window.fulfill(1, seq, &Ok(vec![0u8; 3]));
        }
        // the oldest entries lost their bodies but still refuse to re-fold
        assert!(matches!(window.claim(1, 0), Claim::Evicted));
        // the newest replays
        let last = MIN_KEEP as u64 + 3;
        assert!(matches!(window.claim(1, last), Claim::Replay(_)));
        assert!(window.cached_bytes() <= 3 * (MIN_KEEP + 1));
    }

    #[test]
    fn orphaned_folds_still_fulfill() {
        let window = DedupWindow::new();
        assert!(matches!(window.claim(3, 1), Claim::Mine));
        let Claim::Wait(rx) = window.claim(3, 1) else { panic!("expected wait") };
        window.orphan(3, 1, Box::pin(async { Ok(vec![5, 5]) }));
        assert_eq!(block_on(rx).expect("driver fulfilled"), Ok(vec![5, 5]));
        match window.claim(3, 1) {
            Claim::Replay(body) => assert_eq!(body, vec![5, 5]),
            _ => panic!("expected replay after orphan fulfill"),
        }
    }
}
