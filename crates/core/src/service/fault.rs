//! Deterministic fault injection for the wire tier — a TCP proxy that
//! breaks connections *on purpose*, the same way every run.
//!
//! Robustness claims are only as good as the failures they were tested
//! against, and real networks fail in inconvenient, unreproducible ways.
//! This module makes the failures reproducible: a [`FaultProxy`] sits
//! between a [`RemoteTrustServiceHandle`] (or a whole
//! [fleet](crate::service::fleet)) and its [`RemoteTrustServer`], and
//! applies one scripted [`Fault`] per accepted connection, drawn in order
//! from a [`FaultPlan`]. Seed the plan (vendored xoshiro256++, fully
//! deterministic) and the *same* connections break in the *same* ways on
//! every run — a failing fault sweep is a failing seed you can replay.
//!
//! The faults are transport-shaped, matching what TCP actually does to
//! you:
//!
//! - [`Fault::BlackHole`] — accepts, then never forwards a byte: the
//!   connect succeeds but the banner never arrives (a firewalled or hung
//!   host), exercising handshake deadlines;
//! - [`Fault::CloseAfterFrames`] — forwards N request frames then closes
//!   both sides at a frame boundary (a clean mid-conversation crash);
//! - [`Fault::TruncateFrame`] — forwards N frames *plus part of the
//!   next*, then closes: the classic torn write;
//! - [`Fault::Delay`] — forwards everything, slowly (congestion);
//! - [`Fault::DropResponses`] — requests flow, responses vanish after the
//!   handshake: the server does the work but the client never hears back,
//!   exercising per-request deadlines and idempotent retry;
//! - [`Fault::None`] — a healthy connection, so reconnects can succeed
//!   and recovery paths actually run. Once a plan is exhausted, further
//!   connections are healthy too.
//!
//! Frame boundaries are found with the shared [`FrameScanner`] over the
//! same CRC-framed stream the real protocol uses (the 8-byte banner
//! preamble is passed through un-scanned), so "after 3 frames" means the
//! same byte offset the server would have parsed.
//!
//! [`RemoteTrustServiceHandle`]: crate::service::remote::RemoteTrustServiceHandle
//! [`RemoteTrustServer`]: crate::service::remote::RemoteTrustServer

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::framing::FrameScanner;
use crate::service::remote::wire;

/// What one proxied connection does to the traffic crossing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Healthy pass-through.
    None,
    /// Accept the client, forward nothing, ever — in either direction.
    /// The client's connect succeeds but no banner arrives.
    BlackHole,
    /// Forward this many complete request frames (banner excluded), then
    /// close both sides at the frame boundary.
    CloseAfterFrames(usize),
    /// Forward this many complete request frames, then *part* of the next
    /// frame, then close — a torn write.
    TruncateFrame(usize),
    /// Forward everything, sleeping this long before each chunk.
    Delay(Duration),
    /// Forward requests normally; after the server's banner, discard
    /// every response byte. Work happens, acknowledgements vanish.
    DropResponses,
}

/// A scripted sequence of [`Fault`]s, one per accepted connection in
/// accept order. Connections beyond the end of the script are healthy.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Every connection healthy — a transparent proxy.
    pub fn pass_through() -> Self {
        FaultPlan { faults: Vec::new() }
    }

    /// Exactly this script, in accept order.
    pub fn script(faults: Vec<Fault>) -> Self {
        FaultPlan { faults }
    }

    /// `len` faults drawn deterministically from `seed`, mixing every
    /// fault kind (healthy connections included, so recovery can
    /// eventually succeed). Same seed, same plan, same run.
    pub fn seeded(seed: u64, len: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let faults = (0..len)
            .map(|_| match rng.gen_range(0u32..6) {
                0 => Fault::None,
                1 => Fault::BlackHole,
                2 => Fault::CloseAfterFrames(rng.gen_range(1usize..=8)),
                3 => Fault::TruncateFrame(rng.gen_range(0usize..=4)),
                4 => Fault::Delay(Duration::from_millis(rng.gen_range(1u64..=15))),
                _ => Fault::DropResponses,
            })
            .collect();
        FaultPlan { faults }
    }

    /// The scripted faults, in accept order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    fn fault_for(&self, conn_index: usize) -> Fault {
        self.faults.get(conn_index).cloned().unwrap_or(Fault::None)
    }
}

struct ProxyConn {
    client: TcpStream,
    upstream: Option<TcpStream>,
    pumps: Vec<JoinHandle<()>>,
}

/// The fault-injecting TCP proxy. See the [module docs](self).
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<ProxyConn>>>,
}

impl std::fmt::Debug for ProxyConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProxyConn").finish_non_exhaustive()
    }
}

impl FaultProxy {
    /// Listens on an ephemeral loopback port, forwarding connections to
    /// `upstream` through `plan`'s faults. Read the proxied address back
    /// with [`local_addr`](Self::local_addr) and point clients at it.
    pub fn start(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept = thread::Builder::new().name("siot-fault-accept".into()).spawn({
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            move || accept_loop(listener, upstream, plan, stop, conns)
        })?;
        Ok(FaultProxy { addr, stop, accept: Some(accept), conns })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Closes the listener and every proxied connection, joining all pump
    /// threads.
    pub fn shutdown(mut self) {
        self.stop_all();
    }

    fn stop_all(&mut self) {
        let Some(accept) = self.accept.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        let conns = std::mem::take(&mut *self.conns.lock().expect("proxy registry"));
        for conn in conns {
            let _ = conn.client.shutdown(Shutdown::Both);
            if let Some(upstream) = &conn.upstream {
                let _ = upstream.shutdown(Shutdown::Both);
            }
            for pump in conn.pumps {
                let _ = pump.join();
            }
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop_all();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: FaultPlan,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<ProxyConn>>>,
) {
    let mut index = 0usize;
    for incoming in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(client) = incoming else { continue };
        let fault = plan.fault_for(index);
        index += 1;
        if let Ok(conn) = spawn_proxied(client, upstream, fault) {
            conns.lock().expect("proxy registry").push(conn);
        }
    }
}

fn spawn_proxied(
    client: TcpStream,
    upstream: SocketAddr,
    fault: Fault,
) -> std::io::Result<ProxyConn> {
    let _ = client.set_nodelay(true);
    if fault == Fault::BlackHole {
        // hold the socket open and swallow everything the client sends;
        // the proxy's shutdown unblocks the read via Shutdown::Both
        let rx = client.try_clone()?;
        let pump =
            thread::Builder::new().name("siot-fault-sink".into()).spawn(move || swallow(rx))?;
        return Ok(ProxyConn { client, upstream: None, pumps: vec![pump] });
    }
    let server = TcpStream::connect(upstream)?;
    let _ = server.set_nodelay(true);
    let (c2s_budget, delay, drop_responses) = match &fault {
        Fault::CloseAfterFrames(n) => (Some(FrameBudget::closing_after(*n, None)), None, false),
        Fault::TruncateFrame(n) => {
            // leak half a header past the boundary: enough bytes that the
            // server starts a frame it can never finish
            (Some(FrameBudget::closing_after(*n, Some(3))), None, false)
        }
        Fault::Delay(d) => (None, Some(*d), false),
        Fault::DropResponses => (None, None, true),
        Fault::None => (None, None, false),
        Fault::BlackHole => unreachable!("handled above"),
    };
    let mut pumps = Vec::new();
    // client -> server carries requests: frame-counting faults apply here
    pumps.push(spawn_pump(
        "siot-fault-c2s",
        client.try_clone()?,
        server.try_clone()?,
        c2s_budget,
        delay,
        None,
    )?);
    // server -> client carries responses: DropResponses passes only the
    // 8-byte banner preamble, then discards
    let s2c_pass = if drop_responses { Some(wire::BANNER_LEN) } else { None };
    pumps.push(spawn_pump(
        "siot-fault-s2c",
        server.try_clone()?,
        client.try_clone()?,
        None,
        delay,
        s2c_pass,
    )?);
    Ok(ProxyConn { client, upstream: Some(server), pumps })
}

fn swallow(mut rx: TcpStream) {
    let mut buf = [0u8; 4096];
    while matches!(rx.read(&mut buf), Ok(n) if n > 0) {}
}

/// Forwards bytes `rx` → `tx`, applying at most one shaping rule, and
/// closes both directions when forwarding ends for any reason.
fn spawn_pump(
    name: &str,
    rx: TcpStream,
    tx: TcpStream,
    mut budget: Option<FrameBudget>,
    delay: Option<Duration>,
    pass_only: Option<usize>,
) -> std::io::Result<JoinHandle<()>> {
    thread::Builder::new().name(name.into()).spawn(move || {
        let mut rx = rx;
        let mut tx = tx;
        let mut buf = vec![0u8; 64 * 1024];
        let mut passed = 0usize;
        loop {
            let n = match rx.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            if let Some(d) = delay {
                thread::sleep(d);
            }
            let chunk = &buf[..n];
            let forward = match (&mut budget, pass_only) {
                (Some(budget), _) => &chunk[..budget.admit(chunk)],
                (None, Some(limit)) => {
                    let take = limit.saturating_sub(passed).min(chunk.len());
                    &chunk[..take]
                }
                (None, None) => chunk,
            };
            passed += forward.len();
            if !forward.is_empty() && tx.write_all(forward).is_err() {
                break;
            }
            if budget.as_ref().is_some_and(|b| b.exhausted) {
                break;
            }
        }
        // a pump ending is a connection-level event: tear down both sides
        // so the peer threads unblock too
        let _ = rx.shutdown(Shutdown::Both);
        let _ = tx.shutdown(Shutdown::Both);
    })
}

/// Admits the banner preamble plus a fixed number of complete frames
/// (optionally a few torn bytes more), then reports exhaustion.
struct FrameBudget {
    preamble: usize,
    frames_left: usize,
    torn_bytes: Option<usize>,
    scanner: FrameScanner,
    exhausted: bool,
}

impl FrameBudget {
    fn closing_after(frames: usize, torn_bytes: Option<usize>) -> Self {
        FrameBudget {
            preamble: wire::BANNER_LEN,
            frames_left: frames,
            torn_bytes,
            scanner: FrameScanner::new(),
            exhausted: false,
        }
    }

    /// How many leading bytes of `chunk` to forward; flips `exhausted`
    /// once the close point falls inside (or at the end of) this chunk.
    fn admit(&mut self, chunk: &[u8]) -> usize {
        if self.exhausted {
            return 0;
        }
        let pre = self.preamble.min(chunk.len());
        self.preamble -= pre;
        let body = &chunk[pre..];
        for end in self.scanner.advance(body) {
            if self.frames_left > 0 {
                self.frames_left -= 1;
                if self.frames_left == 0 {
                    self.exhausted = true;
                    let torn = self.torn_bytes.unwrap_or(0).min(body.len() - end);
                    return pre + end + torn;
                }
            }
        }
        // frames_left == 0 from the start: close before any frame passes
        if self.frames_left == 0 && !body.is_empty() {
            self.exhausted = true;
            let torn = self.torn_bytes.unwrap_or(0).min(body.len());
            return pre + torn;
        }
        pre + body.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        let start = framing::begin_frame(&mut out);
        out.extend_from_slice(payload);
        framing::end_frame(&mut out, start);
        out
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(7, 32);
        let b = FaultPlan::seeded(7, 32);
        assert_eq!(a.faults(), b.faults());
        let c = FaultPlan::seeded(8, 32);
        assert_ne!(a.faults(), c.faults());
        // a long enough seeded plan mixes several kinds
        let kinds: std::collections::HashSet<_> =
            a.faults().iter().map(std::mem::discriminant).collect();
        assert!(kinds.len() >= 4, "seeded plan uses {} fault kinds", kinds.len());
    }

    #[test]
    fn exhausted_plans_go_healthy() {
        let plan = FaultPlan::script(vec![Fault::BlackHole]);
        assert_eq!(plan.fault_for(0), Fault::BlackHole);
        assert_eq!(plan.fault_for(1), Fault::None);
        assert_eq!(plan.fault_for(99), Fault::None);
    }

    #[test]
    fn frame_budget_admits_exactly_n_frames() {
        let mut stream = vec![0xAAu8; wire::BANNER_LEN];
        let f1 = frame(b"first");
        let f2 = frame(b"second-frame");
        let f3 = frame(b"third");
        stream.extend_from_slice(&f1);
        stream.extend_from_slice(&f2);
        stream.extend_from_slice(&f3);

        // clean close after 2 frames, regardless of chunking
        for chunk_size in [1usize, 3, 7, stream.len()] {
            let mut budget = FrameBudget::closing_after(2, None);
            let mut admitted = 0usize;
            for chunk in stream.chunks(chunk_size) {
                admitted += budget.admit(chunk);
                if budget.exhausted {
                    break;
                }
            }
            assert_eq!(admitted, wire::BANNER_LEN + f1.len() + f2.len(), "chunk size {chunk_size}");
        }

        // torn close leaks a few extra bytes of the third frame
        let mut budget = FrameBudget::closing_after(2, Some(3));
        let admitted = budget.admit(&stream);
        assert_eq!(admitted, wire::BANNER_LEN + f1.len() + f2.len() + 3);
        assert!(budget.exhausted);
    }

    #[test]
    fn proxy_passes_bytes_through() {
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = upstream.local_addr().expect("upstream addr");
        let echo = thread::spawn(move || {
            let (mut conn, _) = upstream.accept().expect("accept");
            let mut buf = [0u8; 64];
            loop {
                match conn.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if conn.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
        });
        let proxy = FaultProxy::start(upstream_addr, FaultPlan::pass_through()).expect("proxy");
        let mut client = TcpStream::connect(proxy.local_addr()).expect("connect");
        client.write_all(b"ping-through-proxy").expect("write");
        let mut got = [0u8; 18];
        client.read_exact(&mut got).expect("read");
        assert_eq!(&got, b"ping-through-proxy");
        drop(client);
        proxy.shutdown();
        echo.join().expect("echo thread");
    }

    #[test]
    fn black_hole_never_answers() {
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = upstream.local_addr().expect("upstream addr");
        let proxy = FaultProxy::start(upstream_addr, FaultPlan::script(vec![Fault::BlackHole]))
            .expect("proxy");
        let mut client = TcpStream::connect(proxy.local_addr()).expect("connect");
        client.set_read_timeout(Some(Duration::from_millis(100))).expect("read timeout");
        client.write_all(b"anyone there?").expect("write");
        let mut buf = [0u8; 8];
        let err = client.read(&mut buf).expect_err("black hole must not answer");
        assert!(matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ));
        // and the upstream never saw a connection at all
        upstream.set_nonblocking(true).expect("nonblocking");
        assert!(upstream.accept().is_err(), "upstream must stay untouched");
        proxy.shutdown();
    }
}
