//! The sharded service tier: N independent trust actors behind one
//! routing handle.
//!
//! A single [`TrustService`] actor serializes every commit through one
//! mailbox — correct, but a bottleneck once many requesters report
//! concurrently. [`ShardedTrustService::spawn_sharded`] partitions the
//! engine instead: N actor threads, each owning its **own**
//! [`TrustEngine`] over its own backend (durable ones included — see
//! [`TrustEngine::open_shard`] for per-shard journal directories), with
//! peers assigned to shards by a stable hash of the trustee.
//!
//! ```text
//!                                ┌── shard 0: actor + TrustEngine ──┐
//! ShardedTrustServiceHandle ─────┼── shard 1: actor + TrustEngine ──┤
//!   route(peer) = H(peer) mod N  ├── shard 2: actor + TrustEngine ──┤
//!   (Clone + Send)               └── shard 3: actor + TrustEngine ──┘
//! ```
//!
//! ## Routing rule
//!
//! Every operation that names a trustee — [`evaluate`], [`commit`],
//! [`submit`], [`submit_batch`], [`complete`], [`trustworthiness`],
//! [`record`] — is **peer-targeted**: it goes to exactly the shard that
//! owns `hash(peer) % N` and never crosses shards. The hash is the std
//! `DefaultHasher` with its fixed default keys (the same choice as the
//! in-memory [`ShardedBackend`](crate::backend::ShardedBackend)), so the
//! peer→shard layout is deterministic across runs and across processes —
//! which is what lets a durable deployment reopen each shard's directory
//! and find every peer exactly where it left it. Reopen with the **same
//! shard count**: records do not migrate.
//!
//! Because one peer's history lives entirely inside one shard, all
//! single-actor guarantees hold per peer: commits for a peer fold in
//! mailbox order, and a caller that awaited its commit ack reads its own
//! write on any subsequent query for that peer.
//!
//! ## Broadcast queries and the consistency story
//!
//! [`known_peers`], [`task_records`] and [`shard_stats`] have no single
//! owning shard: they **fan out** to every shard and merge. Since shards
//! are disjoint by construction the merge is a plain union (sorted by
//! peer) — but the shards answer from N mailboxes that drain
//! independently, so the caller chooses what "one answer" means via
//! [`Freshness`] — parallel-but-independent instants ([`Relaxed`]), one
//! linearizable global cut ([`Aligned`]), or bounded-staleness snapshot
//! reads that skip the mailboxes entirely ([`Snapshot`]). The [`Freshness`]
//! variant docs are the normative statement of each guarantee; the
//! [`replica`](super::replica) module covers how snapshots are published.
//!
//! [`Relaxed`]: Freshness::Relaxed
//! [`Aligned`]: Freshness::Aligned
//! [`Snapshot`]: Freshness::Snapshot
//!
//! If any shard stopped, a broadcast fails with the typed
//! [`TrustError::ServiceStopped`] instead of silently merging the
//! survivors — and an aligned round aborts its rendezvous so the live
//! shards degrade gracefully instead of blocking forever.
//!
//! ## Batches and backpressure
//!
//! [`submit_batch`] splits a caller batch into per-shard vectors and ships
//! each as **one** vectored message, so every shard folds its sub-batch in
//! a single `commit_batch_receipts` storage pass; the receipts are
//! re-stitched into the caller's original order. Backpressure stays per
//! shard — a saturated shard blocks only submitters routed to it — and is
//! observable via [`shard_stats`]: per-shard live mailbox depth plus
//! drained-commit-batch sizes ([`ShardStats`]).
//!
//! [`evaluate`]: ShardedTrustServiceHandle::evaluate
//! [`commit`]: ShardedTrustServiceHandle::commit
//! [`submit`]: ShardedTrustServiceHandle::submit
//! [`submit_batch`]: ShardedTrustServiceHandle::submit_batch
//! [`complete`]: ShardedTrustServiceHandle::complete
//! [`trustworthiness`]: ShardedTrustServiceHandle::trustworthiness
//! [`record`]: ShardedTrustServiceHandle::record
//! [`known_peers`]: ShardedTrustServiceHandle::known_peers
//! [`task_records`]: ShardedTrustServiceHandle::task_records
//! [`shard_stats`]: ShardedTrustServiceHandle::shard_stats
//!
//! ```
//! use siot_core::prelude::*;
//! use siot_core::service::{block_on, Freshness, ServiceOptions, ShardedTrustService};
//!
//! let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).unwrap();
//! let service = ShardedTrustService::spawn_sharded(4, ServiceOptions::default(), |_shard| {
//!     let mut engine: TrustStore<u32> = TrustStore::new();
//!     engine.register_task(task.clone());
//!     engine
//! });
//! let handle = service.handle();
//!
//! block_on(async {
//!     // peer-targeted: each commit goes straight to its owning shard
//!     for peer in 0..8u32 {
//!         let request =
//!             DelegationRequest::new(peer, &task, Goal::ANY, Context::amicable(task.id()))
//!                 .committed();
//!         handle.complete(request, DelegationOutcome::succeeded(0.9, 0.1)).await.unwrap();
//!     }
//!     // broadcast: fan out, merge — here as one aligned global cut
//!     let peers = handle.known_peers_with(Freshness::Aligned).await.unwrap();
//!     assert_eq!(peers.len(), 8);
//! });
//!
//! let engines = service.shutdown().unwrap();
//! assert_eq!(engines.iter().map(|e| e.record_count()).sum::<usize>(), 8);
//! ```

use super::{
    Command, Cut, Message, Pending, Rendezvous, ServiceOptions, ShardStats, TrustService,
    TrustServiceHandle,
};
use crate::backend::TrustBackend;
use crate::delegation::{
    CompletedDelegation, Decision, DelegationOutcome, DelegationReceipt, DelegationRequest,
    EvaluatedDelegation,
};
use crate::error::TrustError;
use crate::record::TrustRecord;
use crate::store::TrustEngine;
use crate::task::{Task, TaskId};
use crate::tw::Trustworthiness;
use std::collections::hash_map::DefaultHasher;
use std::future::Future;
use std::hash::{Hash, Hasher};
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};

/// The explicit per-query consistency choice, for broadcast *and*
/// peer-targeted reads across every serving tier (in-process, sharded,
/// remote, fleet). **These variant docs are the normative statement of
/// the guarantees** — the tier docs reference them rather than restating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Freshness {
    /// One mailbox round per shard involved, fanned out in parallel for
    /// broadcasts: per-shard **read-your-awaited-writes** (queued commits
    /// fold before the answer), but the N shard answers are taken at
    /// independent instants — a batch still in flight across two shards
    /// may appear in one and not (yet) the other. Cheap; the default.
    #[default]
    Relaxed,
    /// A linearizable global cut: all shards rendezvous — queues folded,
    /// nothing mutating — and answer from the same instant, so the merge
    /// is a state that actually existed. Holds every shard for a barrier;
    /// reserve it for audits and rankings that need cross-shard
    /// exactness. On a single actor (or a peer-targeted read) it is the
    /// same mailbox round as `Relaxed`.
    Aligned,
    /// A **bounded-staleness snapshot read**: answered from the shard's
    /// latest published [`ReadSnapshot`](super::ReadSnapshot) — zero
    /// mailbox traffic, zero actor work — provided the snapshot is
    /// missing at most `max_epoch_lag` of the shard's mutating folds; a
    /// staler shard **falls through** to the `Relaxed` mailbox read
    /// (fresh, read-your-awaited-writes) for its part of the answer. With
    /// the default [`publish_every = 1`] the snapshot is published before
    /// each fold's acks, so `Snapshot { max_epoch_lag: 0 }` still reads
    /// your own awaited writes while the actor keeps up, and degrades to
    /// the mailbox — never to a silently stale answer — when it does not.
    /// See the [`replica`](super::replica) module docs for the epoch and
    /// lag scheme.
    ///
    /// [`publish_every = 1`]: super::ServiceOptions::publish_every
    Snapshot {
        /// The largest acceptable number of the shard's mutating folds
        /// the snapshot may be missing (read-only drains never count).
        /// `0` = only a snapshot covering every applied fold;
        /// `u64::MAX` = always take the snapshot. Under
        /// [`publish_every`](super::ServiceOptions::publish_every)` = K`
        /// the lag never exceeds `K - 1`.
        max_epoch_lag: u64,
    },
}

impl Freshness {
    /// Shorthand for [`Freshness::Snapshot`] with the given bound.
    pub fn snapshot(max_epoch_lag: u64) -> Self {
        Freshness::Snapshot { max_epoch_lag }
    }
}

/// The stable peer→shard assignment: std `DefaultHasher` (SipHash with
/// fixed keys — deterministic across runs and processes) reduced mod `n`.
/// The fleet tier reuses the same rule to route peers across *nodes*, so
/// a peer's home is computable from the address list alone.
pub(crate) fn shard_index<P: Hash>(peer: &P, n: usize) -> usize {
    let mut h = DefaultHasher::new();
    peer.hash(&mut h);
    (h.finish() % n as u64) as usize
}

/// A cloneable, `Send` routing handle over every shard of a
/// [`ShardedTrustService`] — same per-peer API as [`TrustServiceHandle`],
/// plus fan-out/merge broadcasts. See the [module docs](self) for the
/// routing rule and the consistency story.
#[derive(Debug)]
pub struct ShardedTrustServiceHandle<P> {
    shards: Arc<[TrustServiceHandle<P>]>,
    /// Serializes [`Freshness::Aligned`] send-rounds across handle clones:
    /// two concurrent rendezvous enqueued in different per-shard orders
    /// would deadlock (shard 0 standing in rendezvous A while shard 1
    /// stands in B); holding this lock while a round's N queries are sent
    /// keeps every shard's mailbox order consistent.
    aligner: Arc<Mutex<()>>,
}

impl<P> Clone for ShardedTrustServiceHandle<P> {
    fn clone(&self) -> Self {
        ShardedTrustServiceHandle {
            shards: Arc::clone(&self.shards),
            aligner: Arc::clone(&self.aligner),
        }
    }
}

impl<P: Copy + Ord + Hash> ShardedTrustServiceHandle<P> {
    /// How many shards this handle routes over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `peer` — `hash(peer) % shard_count()`, stable
    /// across runs. Exposed so callers (benches, dashboards) can attribute
    /// per-shard stats to the peers behind them.
    pub fn shard_of(&self, peer: P) -> usize {
        shard_index(&peer, self.shards.len())
    }

    fn shard(&self, peer: P) -> &TrustServiceHandle<P> {
        &self.shards[self.shard_of(peer)]
    }

    // ---- peer-targeted: route to the owning shard, never cross ---------

    /// Eagerly submits one finished session to its owning shard and
    /// returns the receipt future — pipelines exactly like
    /// [`TrustServiceHandle::submit`].
    pub fn submit(&self, completed: CompletedDelegation<P>) -> Pending<DelegationReceipt<P>> {
        self.shard(completed.trustee()).submit(completed)
    }

    /// Splits `batch` into per-shard vectors, ships each as **one**
    /// vectored sub-batch (one `commit_batch_receipts` storage pass per
    /// shard), and resolves to the receipts re-stitched in the caller's
    /// original order. The sub-batches are sent eagerly — every shard
    /// folds in parallel while the caller awaits.
    ///
    /// An empty batch resolves immediately (no round trips), even after
    /// shutdown.
    pub fn submit_batch(
        &self,
        batch: Vec<CompletedDelegation<P>>,
    ) -> impl Future<Output = Result<Vec<DelegationReceipt<P>>, TrustError>> {
        let n = self.shards.len();
        let total = batch.len();
        let mut per_shard: Vec<Vec<CompletedDelegation<P>>> = (0..n).map(|_| Vec::new()).collect();
        let mut origins: Vec<Vec<usize>> = (0..n).map(|_| Vec::new()).collect();
        for (i, completed) in batch.into_iter().enumerate() {
            let s = shard_index(&completed.trustee(), n);
            per_shard[s].push(completed);
            origins[s].push(i);
        }
        // eager sends: every shard's sub-batch is in flight before the
        // caller's first poll
        type Routed<P> = Vec<(Vec<usize>, Pending<Vec<DelegationReceipt<P>>>)>;
        let routed: Routed<P> = per_shard
            .into_iter()
            .zip(origins)
            .zip(self.shards.iter())
            .filter(|((sub, _), _)| !sub.is_empty())
            .map(|((sub, origin), shard)| (origin, shard.submit_batch(sub)))
            .collect();
        async move {
            let mut stitched: Vec<Option<DelegationReceipt<P>>> =
                (0..total).map(|_| None).collect();
            for (origin, pending) in routed {
                let receipts = pending.await?;
                for (i, receipt) in origin.into_iter().zip(receipts) {
                    stitched[i] = Some(receipt);
                }
            }
            Ok(stitched
                .into_iter()
                .map(|r| r.expect("each shard returns one receipt per submitted session"))
                .collect())
        }
    }

    /// Commits one finished session on its owning shard and resolves to
    /// its receipt.
    pub async fn commit(
        &self,
        completed: CompletedDelegation<P>,
    ) -> Result<DelegationReceipt<P>, TrustError> {
        self.submit(completed).await
    }

    /// Runs the §3.3 evaluation inside the shard that owns the request's
    /// trustee — the shard holds that peer's entire history, so the
    /// evaluation sees exactly what an unsharded engine would.
    pub async fn evaluate(
        &self,
        request: DelegationRequest<P>,
    ) -> Result<EvaluatedDelegation<P>, TrustError> {
        self.shard(request.trustee()).evaluate(request).await
    }

    /// The eager send of [`evaluate`](Self::evaluate) — the wire server
    /// dispatches every decoded frame through these `_round` seams so
    /// per-connection arrival order is fixed into the mailboxes at decode
    /// time, not at first poll.
    pub(crate) fn evaluate_round(
        &self,
        request: DelegationRequest<P>,
    ) -> Pending<EvaluatedDelegation<P>> {
        let shard = self.shard(request.trustee());
        shard.request(|reply| Message::Query(super::Query::Evaluate { request, reply }))
    }

    /// The eager send of [`complete`](Self::complete).
    pub(crate) fn complete_round(
        &self,
        request: DelegationRequest<P>,
        outcome: DelegationOutcome,
    ) -> Pending<Result<DelegationReceipt<P>, TrustError>> {
        let shard = self.shard(request.trustee());
        shard.request(|reply| Message::Command(Command::Complete { request, outcome, reply }))
    }

    /// [`record`](Self::record) with an explicit [`Freshness`]: under
    /// [`Freshness::Snapshot`] the owning shard's latest published
    /// snapshot answers (zero mailbox traffic) while within the staleness
    /// bound, falling through to the fresh mailbox read otherwise.
    pub async fn record_with(
        &self,
        peer: P,
        task: TaskId,
        freshness: Freshness,
    ) -> Result<Option<TrustRecord>, TrustError> {
        self.record_round_with(peer, task, freshness).await
    }

    /// The eager send of [`record_with`](Self::record_with).
    pub(crate) fn record_round_with(
        &self,
        peer: P,
        task: TaskId,
        freshness: Freshness,
    ) -> Pending<Option<TrustRecord>> {
        self.shard(peer).record_round_with(peer, task, freshness)
    }

    /// [`trustworthiness`](Self::trustworthiness) with an explicit
    /// [`Freshness`] — see [`record_with`](Self::record_with).
    pub async fn trustworthiness_with(
        &self,
        peer: P,
        task: TaskId,
        freshness: Freshness,
    ) -> Result<Option<Trustworthiness>, TrustError> {
        self.trustworthiness_round_with(peer, task, freshness).await
    }

    /// The eager send of
    /// [`trustworthiness_with`](Self::trustworthiness_with).
    pub(crate) fn trustworthiness_round_with(
        &self,
        peer: P,
        task: TaskId,
        freshness: Freshness,
    ) -> Pending<Option<Trustworthiness>> {
        self.shard(peer).trustworthiness_round_with(peer, task, freshness)
    }

    /// A zero-mailbox [`ReplicaHandle`](super::ReplicaHandle) over every
    /// shard's published snapshots — the read-replica tier (see the
    /// [`replica`](super::replica) module docs).
    pub fn replica(&self) -> super::ReplicaHandle<P> {
        super::ReplicaHandle::over(
            self.shards.iter().map(|shard| std::sync::Arc::clone(shard.slot())).collect(),
        )
    }

    /// [`evaluate`](Self::evaluate) carried through to the §3.4 decision.
    pub async fn delegate(&self, request: DelegationRequest<P>) -> Result<Decision<P>, TrustError> {
        self.shard(request.trustee()).delegate(request).await
    }

    /// The whole committed session in one round trip to the owning shard.
    pub async fn complete(
        &self,
        request: DelegationRequest<P>,
        outcome: DelegationOutcome,
    ) -> Result<DelegationReceipt<P>, TrustError> {
        self.shard(request.trustee()).complete(request, outcome).await
    }

    /// Eq. 18 trustworthiness toward `(peer, task)` from the owning shard.
    pub async fn trustworthiness(
        &self,
        peer: P,
        task: TaskId,
    ) -> Result<Option<Trustworthiness>, TrustError> {
        self.shard(peer).trustworthiness(peer, task).await
    }

    /// The record for `(peer, task)` from the owning shard.
    pub async fn record(&self, peer: P, task: TaskId) -> Result<Option<TrustRecord>, TrustError> {
        self.shard(peer).record(peer, task).await
    }

    // ---- broadcasts: fan out to every shard, merge ---------------------

    /// Registers (or replaces) a task definition on **every** shard — a
    /// task is configuration all shards must share, whatever peers they
    /// own.
    pub async fn register_task(&self, task: Task) -> Result<(), TrustError> {
        self.register_task_round(task).await?;
        Ok(())
    }

    /// The eager send-round of [`register_task`](Self::register_task):
    /// every shard's message is enqueued before this returns, which is the
    /// ordering guarantee the wire server's dispatch thread relies on.
    pub(crate) fn register_task_round(&self, task: Task) -> FanOut<()> {
        let pending: Vec<Pending<()>> = self
            .shards
            .iter()
            .map(|shard| {
                let task = task.clone();
                shard.request(|reply| Message::Command(Command::RegisterTask { task, reply }))
            })
            .collect();
        FanOut::new(pending, None)
    }

    /// Peers with at least one record, across all shards — each exactly
    /// once, ascending — under [`Freshness::Relaxed`].
    pub async fn known_peers(&self) -> Result<Vec<P>, TrustError> {
        self.known_peers_with(Freshness::default()).await
    }

    /// [`known_peers`](Self::known_peers) with an explicit [`Freshness`].
    pub async fn known_peers_with(&self, freshness: Freshness) -> Result<Vec<P>, TrustError> {
        Ok(self.known_peers_round(freshness).await?.value)
    }

    /// [`known_peers_with`](Self::known_peers_with), answered as an
    /// epoch-stamped [`Cut`]: the per-shard drain-cycle counters name the
    /// instant(s) the answer was taken at — under [`Freshness::Aligned`],
    /// one global instant. The wire tier ships the epochs to remote
    /// clients verbatim.
    pub async fn known_peers_cut(&self, freshness: Freshness) -> Result<Cut<Vec<P>>, TrustError> {
        self.known_peers_round(freshness).await
    }

    /// The eager send-round of the epoch-stamped broadcast — the sends
    /// happen *in this call*, the returned future only merges.
    pub(crate) fn known_peers_round(
        &self,
        freshness: Freshness,
    ) -> impl Future<Output = Result<Cut<Vec<P>>, TrustError>> {
        let fan = self.broadcast(
            freshness,
            |shard, align| shard.known_peers_in(align),
            |snapshot| (snapshot.epoch(), snapshot.known_peers()),
        );
        async move {
            let (epochs, per_shard) = split_epochs(fan.await?);
            // shards are disjoint by construction: the union is a plain merge
            let mut peers: Vec<P> = per_shard.into_iter().flatten().collect();
            peers.sort_unstable();
            Ok(Cut { epochs, value: peers })
        }
    }

    /// Every `(peer, record)` pair held for `task` across all shards,
    /// ascending by peer, under [`Freshness::Relaxed`].
    pub async fn task_records(&self, task: TaskId) -> Result<Vec<(P, TrustRecord)>, TrustError> {
        self.task_records_with(task, Freshness::default()).await
    }

    /// [`task_records`](Self::task_records) with an explicit [`Freshness`].
    pub async fn task_records_with(
        &self,
        task: TaskId,
        freshness: Freshness,
    ) -> Result<Vec<(P, TrustRecord)>, TrustError> {
        Ok(self.task_records_round(task, freshness).await?.value)
    }

    /// [`task_records_with`](Self::task_records_with) as an epoch-stamped
    /// [`Cut`] — see [`known_peers_cut`](Self::known_peers_cut).
    pub async fn task_records_cut(
        &self,
        task: TaskId,
        freshness: Freshness,
    ) -> Result<Cut<Vec<(P, TrustRecord)>>, TrustError> {
        self.task_records_round(task, freshness).await
    }

    /// The eager send-round of the epoch-stamped broadcast.
    pub(crate) fn task_records_round(
        &self,
        task: TaskId,
        freshness: Freshness,
    ) -> impl Future<Output = Result<Cut<Vec<(P, TrustRecord)>>, TrustError>> {
        let fan = self.broadcast(
            freshness,
            |shard, align| shard.task_records_in(task, align),
            |snapshot| (snapshot.epoch(), snapshot.task_records(task)),
        );
        async move {
            let (epochs, per_shard) = split_epochs(fan.await?);
            let mut records: Vec<(P, TrustRecord)> = per_shard.into_iter().flatten().collect();
            records.sort_unstable_by_key(|&(peer, _)| peer);
            Ok(Cut { epochs, value: records })
        }
    }

    /// Per-shard saturation counters, indexed by shard: live mailbox depth
    /// and capacity plus drained-commit-batch bookkeeping. The backpressure
    /// dashboard — a shard whose `mailbox_depth` pins near its
    /// `mailbox_capacity` is the one blocking its submitters.
    pub async fn shard_stats(&self) -> Result<Vec<ShardStats>, TrustError> {
        self.stats_round().await
    }

    /// The eager send-round of [`shard_stats`](Self::shard_stats).
    pub(crate) fn stats_round(&self) -> FanOut<ShardStats> {
        let pending: Vec<Pending<ShardStats>> =
            self.shards.iter().map(|shard| shard.stats_in()).collect();
        FanOut::new(pending, None)
    }

    /// Pushes every shard's engine state down to stable storage.
    pub async fn flush(&self) -> Result<(), TrustError> {
        for result in self.flush_round().await? {
            result?;
        }
        Ok(())
    }

    /// The eager send-round of [`flush`](Self::flush).
    pub(crate) fn flush_round(&self) -> FanOut<Result<(), TrustError>> {
        let pending: Vec<Pending<Result<(), TrustError>>> = self
            .shards
            .iter()
            .map(|shard| shard.request(|reply| Message::Command(Command::Flush { reply })))
            .collect();
        FanOut::new(pending, None)
    }

    /// Stops every shard gracefully — each drains its mailbox, folds and
    /// acks everything queued, flushes its backend, then exits. The
    /// shutdowns are sent eagerly, so the shards drain in parallel. A
    /// shard another handle already stopped counts as success; the first
    /// real flush error is returned.
    pub async fn shutdown(&self) -> Result<(), TrustError> {
        let pending = self.shutdown_round();
        for pending in pending {
            match pending.await {
                Ok(Ok(())) | Err(TrustError::ServiceStopped) => {}
                Ok(Err(e)) => return Err(e),
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// The eager send-round of [`shutdown`](Self::shutdown): every shard's
    /// stop message is enqueued before this returns.
    pub(crate) fn shutdown_round(&self) -> Vec<Pending<Result<(), TrustError>>> {
        self.shards
            .iter()
            .map(|shard| shard.request(|reply| Message::Command(Command::Shutdown { reply })))
            .collect()
    }

    /// One broadcast round: send the query to every shard (with a shared
    /// rendezvous when aligned), await all replies concurrently. Under
    /// [`Freshness::Snapshot`] each shard within the staleness bound is
    /// answered from its published snapshot via `snap` — already resolved,
    /// zero mailbox traffic — and only the too-stale shards get a (relaxed)
    /// mailbox round via `send`.
    fn broadcast<R>(
        &self,
        freshness: Freshness,
        mut send: impl FnMut(&TrustServiceHandle<P>, Option<Arc<Rendezvous>>) -> Pending<R>,
        mut snap: impl FnMut(&super::ReadSnapshot<P>) -> R,
    ) -> FanOut<R> {
        match freshness {
            Freshness::Relaxed => {
                FanOut::new(self.shards.iter().map(|shard| send(shard, None)).collect(), None)
            }
            Freshness::Snapshot { max_epoch_lag } => {
                let pending = self
                    .shards
                    .iter()
                    .map(|shard| match shard.slot().fresh_within(max_epoch_lag) {
                        Some(snapshot) => Pending::ready(snap(&snapshot)),
                        None => send(shard, None),
                    })
                    .collect();
                FanOut::new(pending, None)
            }
            Freshness::Aligned => {
                let rv = Rendezvous::new(self.shards.len());
                // hold the aligner across the whole send round (dropped
                // before the await): once all N queries are enqueued, the
                // per-shard mailbox orders are fixed and a second round
                // cannot interleave ahead on some shards and behind on
                // others
                let _round = self.aligner.lock().unwrap_or_else(|e| e.into_inner());
                let pending =
                    self.shards.iter().map(|shard| send(shard, Some(Arc::clone(&rv)))).collect();
                FanOut::new(pending, Some(rv))
            }
        }
    }
}

/// Splits a fan-out of epoch-stamped per-shard answers into the epoch
/// vector (shard order) and the answers.
fn split_epochs<T>(per_shard: Vec<(u64, T)>) -> (Vec<u64>, Vec<T>) {
    let mut epochs = Vec::with_capacity(per_shard.len());
    let mut values = Vec::with_capacity(per_shard.len());
    for (epoch, value) in per_shard {
        epochs.push(epoch);
        values.push(value);
    }
    (epochs, values)
}

/// Joins one broadcast round: polls every shard's [`Pending`] concurrently
/// (a dead shard must not leave the others un-polled — under an aligned
/// round they are blocked in the rendezvous until everyone is served) and
/// resolves to the replies in shard order. The first shard error resolves
/// the whole round to that error, aborting the rendezvous so live shards
/// degrade to answering unaligned instead of blocking forever; dropping
/// the future mid-round aborts likewise.
pub(crate) struct FanOut<R> {
    slots: Vec<FanOutSlot<R>>,
    align: Option<Arc<Rendezvous>>,
}

enum FanOutSlot<R> {
    Waiting(Pending<R>),
    Done(Option<R>),
}

impl<R> FanOut<R> {
    pub(crate) fn new(pending: Vec<Pending<R>>, align: Option<Arc<Rendezvous>>) -> Self {
        FanOut { slots: pending.into_iter().map(FanOutSlot::Waiting).collect(), align }
    }
}

// Slots hold `Pending`s (themselves `Unpin`) or owned values — freely
// movable, so the join future is `Unpin` for every `R`.
impl<R> Unpin for FanOut<R> {}

impl<R> Future for FanOut<R> {
    type Output = Result<Vec<R>, TrustError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut done = true;
        for slot in &mut this.slots {
            if let FanOutSlot::Waiting(pending) = slot {
                match Pin::new(pending).poll(cx) {
                    Poll::Ready(Ok(value)) => *slot = FanOutSlot::Done(Some(value)),
                    Poll::Ready(Err(e)) => {
                        if let Some(rv) = this.align.take() {
                            rv.abort();
                        }
                        return Poll::Ready(Err(e));
                    }
                    Poll::Pending => done = false,
                }
            }
        }
        if !done {
            return Poll::Pending;
        }
        // completed normally: disarm the drop-abort
        this.align = None;
        let merged = this
            .slots
            .iter_mut()
            .map(|slot| match slot {
                FanOutSlot::Done(value) => {
                    value.take().expect("a resolved FanOut is not re-polled")
                }
                FanOutSlot::Waiting(_) => unreachable!("all slots done"),
            })
            .collect();
        Poll::Ready(Ok(merged))
    }
}

impl<R> Drop for FanOut<R> {
    fn drop(&mut self) {
        if let Some(rv) = self.align.take() {
            rv.abort();
        }
    }
}

/// A running sharded trust service: the N shard actors plus the first
/// routing handle. See the [module docs](self).
#[derive(Debug)]
pub struct ShardedTrustService<P, B = crate::backend::BTreeBackend<P>> {
    services: Vec<TrustService<P, B>>,
    handle: ShardedTrustServiceHandle<P>,
}

impl<P, B> ShardedTrustService<P, B>
where
    P: Copy + Ord + Hash + Send + Sync + 'static,
    B: TrustBackend<P> + Send + 'static,
{
    /// Spawns `shards.max(1)` independent actors, each owning the engine
    /// `make_engine(shard)` builds for it. Build per-shard state inside
    /// the closure — for the durable case, one journal directory per shard
    /// via [`TrustEngine::open_shard`] (use
    /// [`try_spawn_sharded`](Self::try_spawn_sharded) when construction
    /// can fail). Register shared task definitions either in the closure
    /// or once through
    /// [`register_task`](ShardedTrustServiceHandle::register_task).
    pub fn spawn_sharded(
        shards: usize,
        options: ServiceOptions,
        mut make_engine: impl FnMut(usize) -> TrustEngine<P, B>,
    ) -> Self {
        Self::try_spawn_sharded(shards, options, |shard| Ok(make_engine(shard)))
            .expect("infallible engine construction")
    }

    /// [`spawn_sharded`](Self::spawn_sharded) for fallible engine
    /// construction (opening durable shard directories). If a later shard
    /// fails to open, the already-spawned shards are shut down cleanly
    /// before the error is returned.
    pub fn try_spawn_sharded(
        shards: usize,
        options: ServiceOptions,
        mut make_engine: impl FnMut(usize) -> Result<TrustEngine<P, B>, TrustError>,
    ) -> Result<Self, TrustError> {
        let shards = shards.max(1);
        let mut services = Vec::with_capacity(shards);
        for shard in 0..shards {
            match make_engine(shard) {
                Ok(engine) => services.push(TrustService::spawn_named(
                    engine,
                    options,
                    format!("siot-trust-shard-{shard}"),
                )),
                Err(e) => {
                    for service in services {
                        let _ = service.shutdown();
                    }
                    return Err(e);
                }
            }
        }
        let handles: Arc<[TrustServiceHandle<P>]> =
            services.iter().map(|service| service.handle()).collect();
        Ok(ShardedTrustService {
            services,
            handle: ShardedTrustServiceHandle {
                shards: handles,
                aligner: Arc::new(Mutex::new(())),
            },
        })
    }

    /// A new routing handle over all shards.
    pub fn handle(&self) -> ShardedTrustServiceHandle<P> {
        self.handle.clone()
    }

    /// How many shard actors are running.
    pub fn shard_count(&self) -> usize {
        self.services.len()
    }

    /// A direct handle to one shard's actor — an escape hatch for tests
    /// and diagnostics (e.g. stopping a single shard to exercise degraded
    /// broadcasts). Routine traffic goes through [`handle`](Self::handle).
    pub fn shard_handle(&self, shard: usize) -> TrustServiceHandle<P> {
        self.services[shard].handle()
    }

    /// Gracefully stops every shard and hands the engines back in shard
    /// order — each shard drains, folds and acks everything queued, and
    /// flushes its backend. The stop messages are broadcast before the
    /// first join, so the shards drain in parallel. On the first shard
    /// whose final flush failed, that error is returned (remaining engines
    /// are dropped, their journals flushing on drop as usual).
    pub fn shutdown(self) -> Result<Vec<TrustEngine<P, B>>, TrustError> {
        let stops: Vec<Pending<Result<(), TrustError>>> = self
            .handle
            .shards
            .iter()
            .map(|shard| shard.request(|reply| Message::Command(Command::Shutdown { reply })))
            .collect();
        let mut engines = Vec::with_capacity(self.services.len());
        for (service, stop) in self.services.into_iter().zip(stops) {
            let flushed = super::block_on(stop);
            let engine = service.thread.join().map_err(|_| TrustError::WorkerPanicked)?;
            match flushed {
                // ServiceStopped: a concurrent handle already stopped this
                // shard — the drain and flush still happened
                Ok(Ok(())) | Err(TrustError::ServiceStopped) => engines.push(engine),
                Ok(Err(e)) | Err(e) => return Err(e),
            }
        }
        Ok(engines)
    }
}

#[cfg(test)]
mod tests {
    use super::super::block_on;
    use super::*;
    use crate::context::Context;
    use crate::goal::Goal;
    use crate::store::TrustStore;
    use crate::task::CharacteristicId;

    fn task(id: u32) -> Task {
        Task::uniform(TaskId(id), [CharacteristicId(0)]).unwrap()
    }

    fn spawn(shards: usize) -> ShardedTrustService<u32> {
        let t = task(0);
        ShardedTrustService::spawn_sharded(shards, ServiceOptions::default(), |_| {
            let mut engine: TrustStore<u32> = TrustStore::new();
            engine.register_task(t.clone());
            engine
        })
    }

    fn completed(peer: u32, q: f64) -> CompletedDelegation<u32> {
        let t = task(0);
        let scratch: TrustStore<u32> = TrustStore::new();
        DelegationRequest::new(peer, &t, Goal::ANY, Context::amicable(t.id()))
            .committed()
            .activate(&scratch)
            .finish(DelegationOutcome::succeeded(q, 0.1))
            .unwrap()
    }

    #[test]
    fn routing_is_stable_and_partitions_every_peer() {
        let service = spawn(4);
        let handle = service.handle();
        assert_eq!(handle.shard_count(), 4);
        for peer in 0..64u32 {
            let s = handle.shard_of(peer);
            assert!(s < 4);
            assert_eq!(s, handle.shard_of(peer), "stable routing");
            // the same assignment the in-memory sharded backend would make,
            // modulo the reduction: both hash with DefaultHasher::new()
            assert_eq!(s, shard_index(&peer, 4));
        }
        block_on(async {
            for peer in 0..64u32 {
                handle.commit(completed(peer, 0.9)).await.unwrap();
            }
        });
        let engines = service.shutdown().unwrap();
        // every peer landed exactly on its routed shard
        for (shard, engine) in engines.iter().enumerate() {
            for peer in engine.known_peers() {
                assert_eq!(shard_index(&peer, 4), shard);
            }
        }
        assert_eq!(engines.iter().map(|e| e.record_count()).sum::<usize>(), 64);
    }

    #[test]
    fn one_shard_is_a_plain_service() {
        let service = spawn(1);
        let handle = service.handle();
        block_on(async {
            handle.commit(completed(3, 0.8)).await.unwrap();
            assert_eq!(handle.known_peers().await.unwrap(), vec![3]);
            assert!(handle.trustworthiness(3, TaskId(0)).await.unwrap().is_some());
        });
        let engines = service.shutdown().unwrap();
        assert_eq!(engines.len(), 1);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let service = spawn(0);
        assert_eq!(service.shard_count(), 1);
        service.shutdown().unwrap();
    }

    #[test]
    fn submit_batch_stitches_receipts_in_caller_order() {
        let service = spawn(3);
        let handle = service.handle();
        let peers: Vec<u32> = (0..40).collect();
        let batch: Vec<_> = peers.iter().map(|&p| completed(p, 0.9)).collect();
        let receipts = block_on(handle.submit_batch(batch)).unwrap();
        assert_eq!(receipts.len(), peers.len());
        // receipt i is peer i's — the per-shard sub-batches were re-stitched
        for (i, receipt) in receipts.iter().enumerate() {
            assert_eq!(receipt.trustee, peers[i]);
            assert_eq!(receipt.record.interactions, 1);
        }
        service.shutdown().unwrap();
    }

    #[test]
    fn empty_batch_resolves_without_round_trips_even_after_shutdown() {
        let service = spawn(2);
        let handle = service.handle();
        assert_eq!(block_on(handle.submit_batch(Vec::new())).unwrap(), vec![]);
        service.shutdown().unwrap();
        // nothing to commit: still succeeds once every shard is gone…
        assert_eq!(block_on(handle.submit_batch(Vec::new())).unwrap(), vec![]);
        // …while a non-empty batch fails typed
        let err = block_on(handle.submit_batch(vec![completed(1, 0.5)])).unwrap_err();
        assert_eq!(err, TrustError::ServiceStopped);
    }

    #[test]
    fn broadcasts_merge_and_align_across_shards() {
        let service = spawn(4);
        let handle = service.handle();
        block_on(async {
            handle.register_task(task(1)).await.unwrap();
            let batch: Vec<_> = (0..32u32).map(|p| completed(p, 0.7)).collect();
            handle.submit_batch(batch).await.unwrap();
            for freshness in [Freshness::Relaxed, Freshness::Aligned] {
                let peers = handle.known_peers_with(freshness).await.unwrap();
                assert_eq!(peers, (0..32u32).collect::<Vec<_>>(), "{freshness:?}");
                let records = handle.task_records_with(TaskId(0), freshness).await.unwrap();
                assert_eq!(records.len(), 32);
                assert!(records.windows(2).all(|w| w[0].0 < w[1].0), "ascending by peer");
            }
            // the task broadcast reached every shard: peers on any shard
            // evaluate task 1 by inference from task 0 history
            let evaluated = handle
                .evaluate(DelegationRequest::new(
                    5,
                    &task(1),
                    Goal::ANY,
                    Context::amicable(TaskId(1)),
                ))
                .await
                .unwrap();
            assert!(evaluated.would_delegate());
        });
        service.shutdown().unwrap();
    }

    #[test]
    fn shard_stats_expose_per_shard_commit_counts() {
        let service = spawn(2);
        let handle = service.handle();
        block_on(async {
            let batch: Vec<_> = (0..24u32).map(|p| completed(p, 0.9)).collect();
            handle.submit_batch(batch).await.unwrap();
            let stats = handle.shard_stats().await.unwrap();
            assert_eq!(stats.len(), 2);
            assert_eq!(stats.iter().map(|s| s.committed).sum::<u64>(), 24);
            for s in &stats {
                assert!(s.commit_batches >= 1);
                assert!(s.largest_commit_batch >= s.last_commit_batch);
                assert_eq!(s.mailbox_depth, 0, "drained when the stats query was served");
                assert_eq!(
                    s.mailbox_capacity,
                    ServiceOptions::default().mailbox,
                    "capacity reported so remote callers can compute saturation"
                );
            }
        });
        service.shutdown().unwrap();
    }

    #[test]
    fn cuts_are_epoch_stamped_and_monotone() {
        let service = spawn(3);
        let handle = service.handle();
        block_on(async {
            let batch: Vec<_> = (0..12u32).map(|p| completed(p, 0.9)).collect();
            handle.submit_batch(batch).await.unwrap();
            let first = handle.known_peers_cut(Freshness::Aligned).await.unwrap();
            assert_eq!(first.epochs.len(), 3, "one epoch per shard");
            assert_eq!(first.value.len(), 12);
            // more work, then a later cut: every shard's epoch is >= —
            // per-shard drain counters only move forward
            let batch: Vec<_> = (12..24u32).map(|p| completed(p, 0.9)).collect();
            handle.submit_batch(batch).await.unwrap();
            let second = handle.task_records_cut(TaskId(0), Freshness::Aligned).await.unwrap();
            assert_eq!(second.value.len(), 24);
            for (a, b) in first.epochs.iter().zip(&second.epochs) {
                assert!(b >= a, "epochs are monotone per shard");
            }
        });
        service.shutdown().unwrap();
    }

    #[test]
    fn concurrent_aligned_rounds_do_not_deadlock() {
        let service = spawn(3);
        block_on(async {
            let batch: Vec<_> = (0..30u32).map(|p| completed(p, 0.8)).collect();
            service.handle().submit_batch(batch).await.unwrap();
        });
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = service.handle();
                scope.spawn(move || {
                    for _ in 0..25 {
                        let peers = block_on(handle.known_peers_with(Freshness::Aligned)).unwrap();
                        assert_eq!(peers.len(), 30);
                    }
                });
            }
        });
        service.shutdown().unwrap();
    }
}
