//! Per-trustor trust state behind a pluggable storage engine.
//!
//! A [`TrustEngine`] is everything one agent remembers about its peers:
//! per-`(peer, task)` trust records (§4.4), the task definitions needed for
//! characteristic-level inference (§4.2), and the usage logs that back
//! reverse evaluation (§4.1). Record storage is delegated to a
//! [`TrustBackend`] — the deterministic [`BTreeBackend`] by default, or the
//! lock-sharded [`ShardedBackend`](crate::backend::ShardedBackend) for
//! high-peer-count workloads — while task registry and usage logs stay in
//! the engine.
//!
//! [`TrustStore<P>`] is the engine over the B-tree backend, which is both
//! the historical name and the right default for deterministic simulation.
//!
//! ## Two API layers
//!
//! The caller-facing surface for *live interactions* is the delegation
//! session ([`TrustEngine::delegate`] →
//! [`delegation::DelegationRequest`](crate::delegation::DelegationRequest)),
//! which makes the paper's evaluate → decide → act → feed-back order the
//! only expressible one and validates every observation at the boundary.
//! Underneath it sits the **raw layer** — [`TrustEngine::observe`],
//! [`TrustEngine::insert_record`], [`TrustEngine::usage_log_mut`] — kept as
//! a documented escape hatch for storage benches and for replaying
//! pre-validated streams. State that predates the process (exported
//! records, historical usage logs) enters through the seeding APIs
//! ([`TrustEngine::seed_record`], [`TrustEngine::seed_usage_log`]), which
//! install state without pretending an interaction happened.

use crate::backend::{BTreeBackend, ConcurrentTrustBackend, TrustBackend};
use crate::context::Context;
use crate::delegation::{CompletedDelegation, DelegationReceipt, DelegationRequest, ResourceUse};
use crate::environment::{remove_influence, update_with_environment, EnvIndicator};
use crate::error::TrustError;
use crate::goal::Goal;
use crate::infer::{infer_task, Experience};
use crate::log_backend::{LogBackend, LogKey, LogOptions};
use crate::mutuality::UsageLog;
use crate::record::{ForgettingFactors, Observation, TrustRecord};
use crate::task::{Task, TaskId};
use crate::tw::{Normalizer, Trustworthiness};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Trust state owned by a single agent, keyed by peer id `P`, with record
/// storage pluggable via the backend parameter `B`.
#[derive(Debug, Clone)]
pub struct TrustEngine<P, B = BTreeBackend<P>> {
    backend: B,
    tasks: BTreeMap<TaskId, Task>,
    logs: BTreeMap<P, UsageLog>,
    normalizer: Normalizer,
}

/// The deterministic default engine (ordered-map storage).
pub type TrustStore<P> = TrustEngine<P, BTreeBackend<P>>;

/// The durable engine: [`TrustStore`] semantics over the append-only
/// [`LogBackend`] — open it with [`TrustEngine::open`] and state survives
/// restarts.
pub type DurableTrustStore<P> = TrustEngine<P, LogBackend<P>>;

impl<P: Copy + Ord, B: TrustBackend<P>> Default for TrustEngine<P, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Copy + Ord, B: TrustBackend<P>> TrustEngine<P, B> {
    /// An empty engine with the unit normalizer.
    pub fn new() -> Self {
        Self::with_backend(B::new())
    }

    /// An engine over an existing (possibly pre-warmed) backend. Usage
    /// logs a durable backend recovered from storage are replayed into the
    /// engine here; in-memory backends recover none.
    ///
    /// Task definitions are *not* persisted — they are static
    /// configuration, re-[registered](Self::register_task) by the caller
    /// after opening.
    pub fn with_backend(backend: B) -> Self {
        let logs = backend.recovered_usage_logs().into_iter().collect();
        TrustEngine { backend, tasks: BTreeMap::new(), logs, normalizer: Normalizer::UNIT }
    }

    /// Read access to the storage backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the storage backend — raw layer, for storage
    /// plumbing a generic engine cannot express (e.g. compacting a
    /// [`WriteBehind`](crate::log_backend::WriteBehind) ledger). Mutating
    /// records through it bypasses validation and usage-log bookkeeping;
    /// live interactions go through [sessions](Self::delegate).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Registers (or replaces) a task definition. Inference needs the
    /// characteristic weights, so tasks must be registered before
    /// observations referencing them.
    pub fn register_task(&mut self, task: Task) {
        self.tasks.insert(task.id(), task);
    }

    /// Looks up a task definition.
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(&id)
    }

    /// All registered task definitions.
    pub fn tasks(&self) -> impl Iterator<Item = &Task> {
        self.tasks.values()
    }

    /// The normalization operator this engine derives Eq. 18
    /// trustworthiness with.
    pub fn normalizer(&self) -> Normalizer {
        self.normalizer
    }

    /// The record for `(peer, task)`, if any interaction happened.
    pub fn record(&self, peer: P, task: TaskId) -> Option<TrustRecord> {
        self.backend.get(peer, task)
    }

    /// Visits every `(peer, task, record)` triple the backend holds, in
    /// ascending peer order — the bulk read seam the replica tier seeds
    /// its snapshots from (see
    /// [`service::replica`](crate::service::replica)). The per-peer
    /// variant is [`for_each_record`](Self::for_each_record).
    pub fn for_each_stored_record(&self, mut f: impl FnMut(P, TaskId, TrustRecord)) {
        for peer in self.backend.known_peers() {
            self.backend.for_each_experience(peer, &mut |task, rec| f(peer, task, rec));
        }
    }

    /// Opens a delegation session toward `trustee` for `task`: the
    /// six-ingredient trust process of §3 as a typed-state lifecycle. The
    /// trustor is this engine's owner; the returned request is configured
    /// with builder methods and then
    /// [evaluated](crate::delegation::DelegationRequest::evaluate) against
    /// the engine. See [`crate::delegation`] for the full lifecycle.
    ///
    /// The context's task field is re-anchored on `task`; only its
    /// environment half is kept.
    pub fn delegate(
        &self,
        trustee: P,
        task: &Task,
        goal: Goal,
        context: Context,
    ) -> DelegationRequest<P> {
        DelegationRequest::new(trustee, task, goal, context)
    }

    /// Commits one finished session: atomically folds the validated
    /// observation (with the context's environment removed per Eqs. 25–29)
    /// and the §4.1 mutuality usage-log entry. Consumes the completion —
    /// an outcome can be counted exactly once.
    pub fn commit(
        &mut self,
        completed: CompletedDelegation<P>,
        betas: &ForgettingFactors,
    ) -> DelegationReceipt<P> {
        let fulfilled = completed.fulfilled();
        let envs = [completed.context.environment];
        // capture the folded record from inside the update closure so the
        // receipt costs one backend pass (one shard lock), not two
        let mut folded: Option<TrustRecord> = None;
        self.backend.update(completed.trustee, completed.task, &mut |prior| {
            let rec = folded_env(prior, &completed.observation, &envs, betas);
            folded = Some(rec);
            rec
        });
        self.log_resource_use(completed.trustee, completed.resource_use);
        // the receipt below is the ack: everything this commit appended
        // must be covered by a fsync first (one barrier, not one per
        // frame). A failure stays sticky for flush to surface.
        let _ = self.backend.commit_barrier();
        let record = folded.expect("update invokes the fold exactly once");
        DelegationReceipt {
            trustee: completed.trustee,
            task: completed.task,
            record,
            trustworthiness: record.trustworthiness(self.normalizer),
            fulfilled,
        }
    }

    /// Batched [`Self::commit`]: one backend pass for a whole slate of
    /// finished sessions (the shape a coordinator collecting a round's
    /// outcomes uses). Equivalent to committing each element in order.
    pub fn commit_batch(&mut self, batch: Vec<CompletedDelegation<P>>, betas: &ForgettingFactors) {
        // one fold implementation for both batch-commit shapes; the
        // discarded receipts are an allocation, not a second storage pass
        let _ = self.commit_batch_receipts(batch, betas);
    }

    /// [`Self::commit_batch`] that also returns one [`DelegationReceipt`]
    /// per committed session, in batch order — the shape a
    /// [`TrustService`](crate::service::TrustService) actor needs to ack
    /// every caller of a drained mailbox from a single storage pass.
    /// State-wise identical to `commit_batch` (and to committing each
    /// element in order).
    pub fn commit_batch_receipts(
        &mut self,
        batch: Vec<CompletedDelegation<P>>,
        betas: &ForgettingFactors,
    ) -> Vec<DelegationReceipt<P>> {
        let keys: Vec<(P, TaskId)> = batch.iter().map(|c| (c.trustee, c.task)).collect();
        let mut folded: Vec<Option<TrustRecord>> = vec![None; batch.len()];
        self.backend.update_batch(&keys, &mut |i, prior| {
            let c = &batch[i];
            let rec = folded_env(prior, &c.observation, &[c.context.environment], betas);
            folded[i] = Some(rec);
            rec
        });
        let receipts = batch
            .into_iter()
            .zip(folded)
            .map(|(c, rec)| {
                self.log_resource_use(c.trustee, c.resource_use);
                let record = rec.expect("update_batch folds every element exactly once");
                DelegationReceipt {
                    trustee: c.trustee,
                    task: c.task,
                    record,
                    trustworthiness: record.trustworthiness(self.normalizer),
                    fulfilled: c.fulfilled(),
                }
            })
            .collect();
        // one barrier for the whole slate — the group-commit heart: every
        // record and usage-log frame the batch appended rides one fsync,
        // issued before the receipts (the acks) are handed back
        let _ = self.backend.commit_barrier();
        receipts
    }

    fn log_resource_use(&mut self, peer: P, resource_use: ResourceUse) {
        let log = self.logs.entry(peer).or_default();
        match resource_use {
            ResourceUse::Responsive => log.record_responsive(),
            ResourceUse::Abusive => log.record_abusive(),
        }
        let after = *log;
        // durable backends journal the post-append state; in-memory
        // backends no-op
        self.backend.note_usage_log(peer, after);
    }

    /// Installs a record for `(peer, task)` — state that predates the
    /// process, e.g. records exported by another agent or priors an
    /// experiment starts from. For live interactions use a
    /// [session](Self::delegate) instead, so feedback is validated and the
    /// interaction count stays meaningful.
    pub fn seed_record(&mut self, peer: P, task: TaskId, rec: TrustRecord) {
        self.backend.insert(peer, task, rec);
        let _ = self.backend.commit_barrier();
    }

    /// Raw record insert — the escape hatch under [`Self::seed_record`]
    /// (identical semantics, kept for benches and storage plumbing).
    pub fn insert_record(&mut self, peer: P, task: TaskId, rec: TrustRecord) {
        self.backend.insert(peer, task, rec);
        let _ = self.backend.commit_barrier();
    }

    /// Folds a delegation outcome into the `(peer, task)` record
    /// (Eqs. 19–22). On first contact the observation *initializes* the
    /// record (Eq. 19 has no historical value to blend with yet).
    ///
    /// Raw layer: no validation, no usage-log entry. Live interactions
    /// should go through a [session](Self::delegate).
    pub fn observe(&mut self, peer: P, task: TaskId, obs: &Observation, betas: &ForgettingFactors) {
        self.backend.update(peer, task, &mut |prior| folded(prior, obs, betas));
        let _ = self.backend.commit_barrier();
    }

    /// Environment-aware variant (Eqs. 25–28): the observation is passed
    /// through the removal function r(·) before blending (or before
    /// initializing, on first contact).
    pub fn observe_with_environment(
        &mut self,
        peer: P,
        task: TaskId,
        obs: &Observation,
        envs: &[EnvIndicator],
        betas: &ForgettingFactors,
    ) {
        self.backend.update(peer, task, &mut |prior| folded_env(prior, obs, envs, betas));
        let _ = self.backend.commit_barrier();
    }

    /// Batched [`Self::observe`]: one backend pass for a whole slate of
    /// outcomes, letting the storage layer amortize lookup costs (shard
    /// routing, locking, cache locality). Equivalent to observing each
    /// element in order.
    ///
    /// Every observation is validated before anything is folded: a NaN or
    /// out-of-range component fails the whole batch atomically with
    /// [`TrustError::OutOfUnitRange`] instead of silently corrupting
    /// records.
    pub fn observe_batch(
        &mut self,
        batch: &[(P, TaskId, Observation)],
        betas: &ForgettingFactors,
    ) -> Result<(), TrustError> {
        for (_, _, obs) in batch {
            obs.validate()?;
        }
        let keys: Vec<(P, TaskId)> = batch.iter().map(|&(p, t, _)| (p, t)).collect();
        self.backend.update_batch(&keys, &mut |i, prior| folded(prior, &batch[i].2, betas));
        // one fsync for the whole batch; a barrier failure is worth the
        // caller's attention here since this path already returns Result
        self.backend.commit_barrier()
    }

    /// Eq. 18 trustworthiness toward `peer` on `task`, `None` without
    /// direct experience.
    pub fn trustworthiness(&self, peer: P, task: TaskId) -> Option<Trustworthiness> {
        self.record(peer, task).map(|r| r.trustworthiness(self.normalizer))
    }

    /// Every `(task, trustworthiness)` experience with `peer`, for use with
    /// the inference machinery. Tasks lacking a registered definition are
    /// skipped.
    pub fn experiences_with(&self, peer: P) -> Vec<Experience<'_>> {
        let mut out = Vec::new();
        let tasks = &self.tasks;
        let normalizer = self.normalizer;
        self.backend.for_each_experience(peer, &mut |tid, rec| {
            if let Some(task) = tasks.get(&tid) {
                out.push(Experience::new(task, rec.trustworthiness(normalizer).value()));
            }
        });
        out
    }

    /// Visits every record held about `peer` in ascending task order —
    /// for consumers that interpret records with their own task registry
    /// (e.g. a shared task pool) instead of the engine's.
    pub fn for_each_record(&self, peer: P, mut f: impl FnMut(TaskId, TrustRecord)) {
        self.backend.for_each_experience(peer, &mut f);
    }

    /// Eq. 4 inference toward `peer` for a task it never performed.
    pub fn infer(&self, peer: P, new_task: &Task) -> Result<f64, TrustError> {
        infer_task(new_task, &self.experiences_with(peer))
    }

    /// Direct trustworthiness when available, inferred otherwise.
    pub fn trustworthiness_or_inferred(&self, peer: P, task: &Task) -> Option<Trustworthiness> {
        if let Some(tw) = self.trustworthiness(peer, task.id()) {
            return Some(tw);
        }
        self.infer(peer, task).ok().map(Trustworthiness::new)
    }

    /// The usage log about `peer` (for reverse evaluation).
    pub fn usage_log(&self, peer: P) -> UsageLog {
        self.logs.get(&peer).copied().unwrap_or_default()
    }

    /// Installs `seed()` as the usage log about `peer` if none exists yet
    /// and returns the (possibly pre-existing) log read-only — for
    /// warm-starting reverse evaluation from historical interactions. The
    /// closure only runs on first contact (and only a first contact is
    /// journaled by durable backends). Live entries are appended by
    /// executed [sessions](Self::delegate), not by hand.
    pub fn seed_usage_log(&mut self, peer: P, seed: impl FnOnce() -> UsageLog) -> &UsageLog {
        if let std::collections::btree_map::Entry::Vacant(slot) = self.logs.entry(peer) {
            let log = seed();
            slot.insert(log);
            self.backend.note_usage_log(peer, log);
            let _ = self.backend.commit_barrier();
        }
        self.logs.get(&peer).expect("present: inserted above on first contact")
    }

    /// Mutable usage log about `peer`.
    ///
    /// Raw layer: sessions fold resource use automatically; reach for this
    /// only when replaying externally-validated histories.
    ///
    /// **Durability**: mutations through the returned reference bypass the
    /// backend's journal — on a durable engine they are not persisted until
    /// the next [`Self::flush`] (which re-journals every usage log) or the
    /// next session commit touching the same peer. Sessions and the seeding
    /// APIs have no such gap.
    #[must_use = "journal-bypassing until flush: mutate the returned log or use seed_usage_log"]
    pub fn usage_log_mut(&mut self, peer: P) -> &mut UsageLog {
        self.logs.entry(peer).or_default()
    }

    /// Mutable usage log about `peer`, seeded by `seed` on first access.
    ///
    /// Raw layer: prefer [`Self::seed_usage_log`], which hands back a
    /// read-only log so live entries can only come from sessions. The seed
    /// itself is journaled by durable backends; later mutations through the
    /// returned reference carry the same caveat as [`Self::usage_log_mut`].
    #[must_use = "journal-bypassing until flush: mutate the returned log or use seed_usage_log"]
    pub fn usage_log_mut_or_seed(
        &mut self,
        peer: P,
        seed: impl FnOnce() -> UsageLog,
    ) -> &mut UsageLog {
        if let std::collections::btree_map::Entry::Vacant(slot) = self.logs.entry(peer) {
            let log = seed();
            slot.insert(log);
            self.backend.note_usage_log(peer, log);
            let _ = self.backend.commit_barrier();
        }
        self.logs.get_mut(&peer).expect("present: inserted above on first contact")
    }

    /// Pushes engine state down to stable storage: re-journals every usage
    /// log (absolute state — cheap when nothing changed, and the only way
    /// raw [`Self::usage_log_mut`] edits become durable) and then flushes
    /// the backend. A no-op `Ok(())` on in-memory backends.
    pub fn flush(&mut self) -> Result<(), TrustError> {
        self.rejournal_usage_logs();
        self.backend.flush()
    }

    /// Hands every usage log to the backend's durability hook — absolute
    /// state, so already-journaled logs are skipped cheaply. The shared
    /// step under [`Self::flush`] and the durable engine's `compact`.
    fn rejournal_usage_logs(&mut self) {
        for (&peer, &log) in &self.logs {
            self.backend.note_usage_log(peer, log);
        }
    }

    /// Peers with at least one record — each exactly once, ascending.
    ///
    /// The engine re-sorts and dedups defensively: backends *should* uphold
    /// the iterator contract, but a peer's records being non-adjacent in the
    /// underlying map (as in any hash layout) must never surface duplicates
    /// here.
    pub fn known_peers(&self) -> Vec<P> {
        let mut peers = self.backend.known_peers();
        peers.sort_unstable();
        peers.dedup();
        peers
    }

    /// Number of `(peer, task)` records held.
    pub fn record_count(&self) -> usize {
        self.backend.len()
    }

    /// Drops all records, keeping registered tasks and usage logs.
    pub fn clear_records(&mut self) {
        self.backend.clear();
        let _ = self.backend.commit_barrier();
    }

    /// The group-commit barrier (see
    /// [`TrustBackend::commit_barrier`]):
    /// on a durable backend under
    /// [`FsyncPolicy::Always`](crate::log::FsyncPolicy::Always), one fsync
    /// covering every frame appended since the last barrier. Every engine
    /// write API already runs one before returning; call it directly when
    /// batching through raw backend access or to re-check a sticky append
    /// failure without consuming it.
    pub fn commit_barrier(&mut self) -> Result<(), TrustError> {
        self.backend.commit_barrier()
    }
}

impl<P: Copy + Ord, B: ConcurrentTrustBackend<P>> TrustEngine<P, B> {
    /// Shared-handle [`Self::observe`] for concurrent backends: multiple
    /// threads may fold outcomes through `&TrustEngine` simultaneously;
    /// writes to different peers proceed in parallel.
    pub fn observe_shared(
        &self,
        peer: P,
        task: TaskId,
        obs: &Observation,
        betas: &ForgettingFactors,
    ) {
        self.backend.update_shared(peer, task, &mut |prior| folded(prior, obs, betas));
        let _ = self.backend.commit_barrier_shared();
    }

    /// Shared-handle [`Self::observe_batch`]: locks each shard once per
    /// batch slice instead of once per record. Validates the whole batch
    /// before folding, like the exclusive variant.
    pub fn observe_batch_shared(
        &self,
        batch: &[(P, TaskId, Observation)],
        betas: &ForgettingFactors,
    ) -> Result<(), TrustError> {
        for (_, _, obs) in batch {
            obs.validate()?;
        }
        let keys: Vec<(P, TaskId)> = batch.iter().map(|&(p, t, _)| (p, t)).collect();
        self.backend.update_batch_shared(&keys, &mut |i, prior| folded(prior, &batch[i].2, betas));
        // one covering fsync for the whole shared batch
        self.backend.commit_barrier_shared()
    }

    /// Shared-handle record snapshot.
    pub fn record_shared(&self, peer: P, task: TaskId) -> Option<TrustRecord> {
        self.backend.get_shared(peer, task)
    }

    /// Number of independently writable backend lanes (see
    /// [`ConcurrentTrustBackend::write_lanes`]).
    pub fn write_lanes(&self) -> usize {
        self.backend.write_lanes()
    }

    /// Shared-handle [`Self::commit_barrier`]: the fsync covers every
    /// append that completed before the call, across all threads. The
    /// [`ObserverPool`](crate::pool::ObserverPool) runs one per dispatched
    /// batch.
    pub fn commit_barrier_shared(&self) -> Result<(), TrustError> {
        self.backend.commit_barrier_shared()
    }

    /// The backend lane `peer`'s records live in (see
    /// [`ConcurrentTrustBackend::lane_of`]).
    pub fn lane_of(&self, peer: P) -> usize {
        self.backend.lane_of(peer)
    }

    /// Folds one lane's pre-routed run of `batch` without re-validating —
    /// the [`ObserverPool`](crate::pool::ObserverPool) dispatch seam.
    /// Callers must have validated every referenced observation and routed
    /// every index in `indices` to `lane` via [`Self::lane_of`]; elements
    /// fold in `indices` order under one lane-lock acquisition.
    pub(crate) fn observe_lane_run_prevalidated(
        &self,
        lane: usize,
        indices: &[usize],
        batch: &[(P, TaskId, Observation)],
        betas: &ForgettingFactors,
    ) {
        self.backend.update_lane_run_shared(
            lane,
            indices,
            &|i| (batch[i].0, batch[i].1),
            &mut |i, prior| folded(prior, &batch[i].2, betas),
        );
    }
}

impl<P: LogKey + fmt::Debug> TrustEngine<P, LogBackend<P>> {
    /// Opens (or creates) a durable engine in `dir`: loads the snapshot,
    /// replays the log tail (truncating a torn final frame), and recovers
    /// records *and* usage logs to their exact pre-shutdown state.
    /// Re-[register](Self::register_task) task definitions after opening —
    /// they are configuration, not state.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, TrustError> {
        Ok(Self::with_backend(LogBackend::open(dir)?))
    }

    /// [`Self::open`] with explicit [`LogOptions`] (fsync policy,
    /// auto-compaction threshold).
    pub fn open_with(dir: impl AsRef<Path>, options: LogOptions) -> Result<Self, TrustError> {
        Ok(Self::with_backend(LogBackend::open_with(dir, options)?))
    }

    /// The on-disk directory of shard `shard` under a sharded-service
    /// `root`: `root/shard-NNN`. One name for both halves of the durable
    /// sharded story — [`Self::open_shard`] at spawn and at recovery.
    pub fn shard_dir(root: impl AsRef<Path>, shard: usize) -> std::path::PathBuf {
        root.as_ref().join(format!("shard-{shard:03}"))
    }

    /// Opens (or creates) the durable engine of one service shard: per-shard
    /// construction seam for
    /// [`ShardedTrustService::spawn_sharded`](crate::service::ShardedTrustService::spawn_sharded),
    /// giving every shard its own journal directory
    /// ([`Self::shard_dir`]). Reopen with the **same shard count**: records
    /// do not migrate between shard directories, so a different count would
    /// route peers to shards that never held their history.
    pub fn open_shard(root: impl AsRef<Path>, shard: usize) -> Result<Self, TrustError> {
        Self::open(Self::shard_dir(root, shard))
    }

    /// [`Self::open_shard`] with explicit [`LogOptions`].
    pub fn open_shard_with(
        root: impl AsRef<Path>,
        shard: usize,
        options: LogOptions,
    ) -> Result<Self, TrustError> {
        Self::open_with(Self::shard_dir(root, shard), options)
    }

    /// Full compaction of the backing chain (see [`LogBackend::compact`]).
    /// Usage logs raw-mutated since the last [`Self::flush`] are
    /// re-journaled first so the snapshot is complete.
    pub fn compact(&mut self) -> Result<(), TrustError> {
        self.rejournal_usage_logs();
        self.backend.compact()
    }

    /// Incremental, churn-proportional compaction (see
    /// [`LogBackend::compact_churned`]) — folds only the frames appended
    /// since the last compaction, falling back to the full form when the
    /// chain needs it. Same usage-log re-journaling as [`Self::compact`].
    pub fn compact_churned(&mut self) -> Result<(), TrustError> {
        self.rejournal_usage_logs();
        self.backend.compact_churned()
    }

    /// Number of segments in the committed chain (see
    /// [`LogBackend::segments`]).
    pub fn segments(&self) -> usize {
        self.backend.segments()
    }

    /// How many compacted (snapshot) segments lead the chain (see
    /// [`LogBackend::compacted_segments`]).
    pub fn compacted_segments(&self) -> usize {
        self.backend.compacted_segments()
    }
}

/// One Eq. 19–22 fold: blend into the prior, or initialize from the first
/// observation.
#[inline]
fn folded(prior: Option<TrustRecord>, obs: &Observation, betas: &ForgettingFactors) -> TrustRecord {
    match prior {
        Some(mut rec) => {
            rec.update(obs, betas);
            rec
        }
        None => TrustRecord::from_first_observation(obs),
    }
}

/// One Eq. 25–28 fold: remove the environment's influence, then blend.
#[inline]
fn folded_env(
    prior: Option<TrustRecord>,
    obs: &Observation,
    envs: &[EnvIndicator],
    betas: &ForgettingFactors,
) -> TrustRecord {
    match prior {
        Some(mut rec) => {
            update_with_environment(&mut rec, obs, envs, betas);
            rec
        }
        None => {
            let adjusted = Observation {
                success_rate: remove_influence(obs.success_rate, envs),
                gain: remove_influence(obs.gain, envs),
                damage: remove_influence(obs.damage, envs),
                cost: remove_influence(obs.cost, envs),
            };
            TrustRecord::from_first_observation(&adjusted)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ShardedBackend;
    use crate::task::CharacteristicId;

    fn task(id: u32, cs: &[u32]) -> Task {
        Task::uniform(TaskId(id), cs.iter().map(|&i| CharacteristicId(i))).unwrap()
    }

    #[test]
    fn observe_creates_and_updates() {
        let mut store: TrustStore<u32> = TrustStore::new();
        let betas = ForgettingFactors::uniform(0.5);
        store.observe(7, TaskId(0), &Observation::success(1.0, 0.0), &betas);
        let rec = store.record(7, TaskId(0)).unwrap();
        assert_eq!(rec.interactions, 1);
        assert!(rec.s_hat > 0.5);
        assert!(store.record(7, TaskId(1)).is_none());
        assert!(store.record(8, TaskId(0)).is_none());
    }

    #[test]
    fn trustworthiness_requires_experience() {
        let store: TrustStore<u32> = TrustStore::new();
        assert!(store.trustworthiness(1, TaskId(0)).is_none());
    }

    #[test]
    fn inference_via_store() {
        let mut store: TrustStore<u32> = TrustStore::new();
        let gps = task(0, &[0]);
        let image = task(1, &[1]);
        let traffic = task(2, &[0, 1]);
        store.register_task(gps);
        store.register_task(image);
        let betas = ForgettingFactors::uniform(0.0); // jump to observation
                                                     // strong experience on both component tasks
        for tid in [TaskId(0), TaskId(1)] {
            store.observe(5, tid, &Observation::success(1.0, 0.0), &betas);
        }
        let inferred = store.infer(5, &traffic).unwrap();
        assert!(inferred > 0.8, "inferred = {inferred}");
        // no record for τ2 itself
        assert!(store.trustworthiness(5, TaskId(2)).is_none());
        assert!(store.trustworthiness_or_inferred(5, &traffic).unwrap().value() > 0.8);
    }

    #[test]
    fn inference_fails_without_coverage() {
        let mut store: TrustStore<u32> = TrustStore::new();
        let gps = task(0, &[0]);
        store.register_task(gps);
        store.observe(5, TaskId(0), &Observation::success(1.0, 0.0), &ForgettingFactors::paper());
        let exotic = task(9, &[7]);
        assert!(store.infer(5, &exotic).is_err());
        assert!(store.trustworthiness_or_inferred(5, &exotic).is_none());
    }

    #[test]
    fn experiences_scoped_per_peer() {
        let mut store: TrustStore<u32> = TrustStore::new();
        store.register_task(task(0, &[0]));
        let betas = ForgettingFactors::paper();
        store.observe(1, TaskId(0), &Observation::success(1.0, 0.0), &betas);
        store.observe(2, TaskId(0), &Observation::failure(1.0, 1.0), &betas);
        assert_eq!(store.experiences_with(1).len(), 1);
        assert_eq!(store.experiences_with(2).len(), 1);
        assert_eq!(store.experiences_with(3).len(), 0);
        assert_eq!(store.known_peers(), vec![1, 2]);
        assert_eq!(store.record_count(), 2);
    }

    #[test]
    fn environment_aware_observe() {
        let mut store: TrustStore<u32> = TrustStore::new();
        let betas = ForgettingFactors::uniform(0.0);
        let hostile = [EnvIndicator::saturating(0.4)];
        store.observe_with_environment(
            1,
            TaskId(0),
            &Observation { success_rate: 0.32, gain: 0.0, damage: 0.0, cost: 0.0 },
            &hostile,
            &betas,
        );
        assert!((store.record(1, TaskId(0)).unwrap().s_hat - 0.8).abs() < 1e-12);
    }

    #[test]
    fn usage_logs() {
        let mut store: TrustStore<u32> = TrustStore::new();
        store.usage_log_mut(9).record_abusive();
        store.usage_log_mut(9).record_abusive();
        store.usage_log_mut(9).record_responsive();
        let log = store.usage_log(9);
        assert_eq!(log.total(), 3);
        assert_eq!(log.abusive, 2);
        assert_eq!(store.usage_log(1), UsageLog::default());
    }

    #[test]
    fn usage_log_seeding_runs_once() {
        let mut store: TrustStore<u32> = TrustStore::new();
        let seeded = store.usage_log_mut_or_seed(4, || {
            let mut l = UsageLog::new();
            l.record_abusive();
            l
        });
        assert_eq!(seeded.total(), 1);
        // second access must keep the existing log, not reseed
        let again = store.usage_log_mut_or_seed(4, UsageLog::new);
        again.record_responsive();
        assert_eq!(store.usage_log(4).total(), 2);
        assert_eq!(store.usage_log(4).abusive, 1);
    }

    #[test]
    fn records_with_tendril_task_ids_stay_separate() {
        let mut store: TrustStore<u32> = TrustStore::new();
        let betas = ForgettingFactors::paper();
        store.observe(1, TaskId(0), &Observation::success(1.0, 0.0), &betas);
        store.observe(1, TaskId(u32::MAX), &Observation::failure(1.0, 1.0), &betas);
        assert_eq!(store.experiences_with(1).len(), 0, "unregistered tasks are skipped");
        assert_eq!(store.record_count(), 2);
    }

    #[test]
    fn default_impl() {
        let store: TrustStore<u8> = TrustStore::default();
        assert_eq!(store.record_count(), 0);
    }

    #[test]
    fn sharded_engine_matches_btree_engine() {
        let mut a: TrustEngine<u32> = TrustEngine::new();
        let mut b: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        let betas = ForgettingFactors::figures();
        for i in 0..200u32 {
            let peer = i % 17;
            let tid = TaskId(i % 5);
            let obs = Observation {
                success_rate: (i % 11) as f64 / 10.0,
                gain: (i % 7) as f64 / 6.0,
                damage: (i % 3) as f64 / 2.0,
                cost: (i % 13) as f64 / 12.0,
            };
            a.observe(peer, tid, &obs, &betas);
            b.observe(peer, tid, &obs, &betas);
        }
        assert_eq!(a.record_count(), b.record_count());
        assert_eq!(a.known_peers(), b.known_peers());
        for peer in a.known_peers() {
            for t in 0..5 {
                assert_eq!(a.record(peer, TaskId(t)), b.record(peer, TaskId(t)));
            }
        }
    }

    #[test]
    fn known_peers_unique_under_hash_layout() {
        // Regression: `known_peers` once deduped only *adjacent* entries,
        // which silently assumed the B-tree layout. A sharded backend
        // interleaves peers arbitrarily; every peer must still appear
        // exactly once, ascending.
        let mut e: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        let betas = ForgettingFactors::figures();
        // many tasks per peer, inserted round-robin so one peer's records
        // never arrive adjacently
        for t in 0..7u32 {
            for peer in (0..50u32).rev() {
                e.observe(peer, TaskId(t), &Observation::success(0.5, 0.1), &betas);
            }
        }
        let peers = e.known_peers();
        assert_eq!(peers, (0..50).collect::<Vec<_>>());
        assert_eq!(e.record_count(), 350);
    }

    #[test]
    fn observe_batch_equals_sequential_observes() {
        let betas = ForgettingFactors::figures();
        let batch: Vec<(u32, TaskId, Observation)> = (0..500u32)
            .map(|i| {
                (
                    i % 23,
                    TaskId(i % 3),
                    Observation {
                        success_rate: (i % 10) as f64 / 9.0,
                        gain: 0.4,
                        damage: 0.2,
                        cost: 0.1,
                    },
                )
            })
            .collect();

        let mut seq: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        for (p, t, obs) in &batch {
            seq.observe(*p, *t, obs, &betas);
        }
        let mut batched: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        batched.observe_batch(&batch, &betas).unwrap();

        assert_eq!(seq.record_count(), batched.record_count());
        for &(p, t, _) in &batch {
            assert_eq!(seq.record(p, t), batched.record(p, t));
        }
    }

    #[test]
    fn shared_observe_from_threads() {
        let engine: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        let betas = ForgettingFactors::figures();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let e = &engine;
                let betas = &betas;
                scope.spawn(move || {
                    let batch: Vec<(u32, TaskId, Observation)> = (0..100u32)
                        .map(|i| (t * 1000 + i, TaskId(0), Observation::success(0.8, 0.1)))
                        .collect();
                    e.observe_batch_shared(&batch, betas).unwrap();
                    e.observe_shared(t * 1000, TaskId(1), &Observation::failure(0.5, 0.2), betas);
                });
            }
        });
        assert_eq!(engine.record_count(), 404);
        assert_eq!(engine.known_peers().len(), 400);
        assert_eq!(engine.record_shared(2000, TaskId(0)).unwrap().interactions, 1);
    }

    #[test]
    fn insert_record_seeds_state() {
        let mut store: TrustStore<u32> = TrustStore::new();
        store.insert_record(3, TaskId(2), TrustRecord::with_priors(0.9, 0.8, 0.1, 0.2));
        let rec = store.record(3, TaskId(2)).unwrap();
        assert!((rec.s_hat - 0.9).abs() < 1e-12);
        store.clear_records();
        assert_eq!(store.record_count(), 0);
    }

    #[test]
    fn seed_record_matches_insert_record() {
        let mut a: TrustStore<u32> = TrustStore::new();
        let mut b: TrustStore<u32> = TrustStore::new();
        let rec = TrustRecord::with_priors(0.7, 0.6, 0.2, 0.1);
        a.seed_record(5, TaskId(1), rec);
        b.insert_record(5, TaskId(1), rec);
        assert_eq!(a.record(5, TaskId(1)), b.record(5, TaskId(1)));
    }

    #[test]
    fn seed_usage_log_runs_once_and_is_read_only() {
        let mut store: TrustStore<u32> = TrustStore::new();
        let seeded = store.seed_usage_log(4, || UsageLog { responsive: 3, abusive: 1 });
        assert_eq!(seeded.total(), 4);
        // second access keeps the existing log, the closure never runs
        let again = store.seed_usage_log(4, || panic!("must not reseed"));
        assert_eq!(again.abusive, 1);
    }

    #[test]
    fn observe_batch_rejects_invalid_observations_atomically() {
        let mut store: TrustStore<u32> = TrustStore::new();
        let betas = ForgettingFactors::figures();
        let batch = vec![
            (1u32, TaskId(0), Observation::success(0.9, 0.1)),
            (
                2u32,
                TaskId(0),
                Observation { success_rate: f64::NAN, gain: 0.5, damage: 0.5, cost: 0.5 },
            ),
        ];
        let err = store.observe_batch(&batch, &betas).unwrap_err();
        assert!(matches!(err, TrustError::OutOfUnitRange { what: "success_rate", .. }));
        assert_eq!(store.record_count(), 0, "nothing folded, even the valid element");

        let engine: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        assert!(engine.observe_batch_shared(&batch, &betas).is_err());
        assert_eq!(engine.record_count(), 0);
    }
}
