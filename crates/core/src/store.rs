//! Per-trustor trust state: records, task registry, usage logs.
//!
//! A `TrustStore<P>` is everything one agent remembers about its peers:
//! per-`(peer, task)` trust records (§4.4), the task definitions needed for
//! characteristic-level inference (§4.2), and the usage logs that back
//! reverse evaluation (§4.1). Keys are `BTreeMap`s so iteration order — and
//! therefore every simulation built on top — is deterministic.

use crate::environment::{remove_influence, update_with_environment, EnvIndicator};
use crate::error::TrustError;
use crate::infer::{infer_task, Experience};
use crate::mutuality::UsageLog;
use crate::record::{ForgettingFactors, Observation, TrustRecord};
use crate::task::{Task, TaskId};
use crate::tw::{Normalizer, Trustworthiness};
use std::collections::BTreeMap;

/// Trust state owned by a single agent, keyed by peer id `P`.
#[derive(Debug, Clone)]
pub struct TrustStore<P> {
    records: BTreeMap<(P, TaskId), TrustRecord>,
    tasks: BTreeMap<TaskId, Task>,
    logs: BTreeMap<P, UsageLog>,
    normalizer: Normalizer,
}

impl<P: Copy + Ord> Default for TrustStore<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Copy + Ord> TrustStore<P> {
    /// An empty store with the unit normalizer.
    pub fn new() -> Self {
        TrustStore {
            records: BTreeMap::new(),
            tasks: BTreeMap::new(),
            logs: BTreeMap::new(),
            normalizer: Normalizer::UNIT,
        }
    }

    /// Registers (or replaces) a task definition. Inference needs the
    /// characteristic weights, so tasks must be registered before
    /// observations referencing them.
    pub fn register_task(&mut self, task: Task) {
        self.tasks.insert(task.id(), task);
    }

    /// Looks up a task definition.
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(&id)
    }

    /// All registered task definitions.
    pub fn tasks(&self) -> impl Iterator<Item = &Task> {
        self.tasks.values()
    }

    /// The record for `(peer, task)`, if any interaction happened.
    pub fn record(&self, peer: P, task: TaskId) -> Option<&TrustRecord> {
        self.records.get(&(peer, task))
    }

    /// Mutable record, created from `prior` on first access.
    pub fn record_mut(&mut self, peer: P, task: TaskId, prior: TrustRecord) -> &mut TrustRecord {
        self.records.entry((peer, task)).or_insert(prior)
    }

    /// Folds a delegation outcome into the `(peer, task)` record
    /// (Eqs. 19–22). On first contact the observation *initializes* the
    /// record (Eq. 19 has no historical value to blend with yet).
    pub fn observe(&mut self, peer: P, task: TaskId, obs: &Observation, betas: &ForgettingFactors) {
        match self.records.get_mut(&(peer, task)) {
            Some(rec) => rec.update(obs, betas),
            None => {
                self.records.insert((peer, task), TrustRecord::from_first_observation(obs));
            }
        }
    }

    /// Environment-aware variant (Eqs. 25–28): the observation is passed
    /// through the removal function r(·) before blending (or before
    /// initializing, on first contact).
    pub fn observe_with_environment(
        &mut self,
        peer: P,
        task: TaskId,
        obs: &Observation,
        envs: &[EnvIndicator],
        betas: &ForgettingFactors,
    ) {
        match self.records.get_mut(&(peer, task)) {
            Some(rec) => update_with_environment(rec, obs, envs, betas),
            None => {
                let adjusted = Observation {
                    success_rate: remove_influence(obs.success_rate, envs),
                    gain: remove_influence(obs.gain, envs),
                    damage: remove_influence(obs.damage, envs),
                    cost: remove_influence(obs.cost, envs),
                };
                self.records
                    .insert((peer, task), TrustRecord::from_first_observation(&adjusted));
            }
        }
    }

    /// Eq. 18 trustworthiness toward `peer` on `task`, `None` without
    /// direct experience.
    pub fn trustworthiness(&self, peer: P, task: TaskId) -> Option<Trustworthiness> {
        self.record(peer, task).map(|r| r.trustworthiness(self.normalizer))
    }

    /// Every `(task, trustworthiness)` experience with `peer`, for use with
    /// the inference machinery. Tasks lacking a registered definition are
    /// skipped.
    pub fn experiences_with(&self, peer: P) -> Vec<Experience<'_>> {
        self.records
            .range((peer, TaskId(0))..=(peer, TaskId(u32::MAX)))
            .filter_map(|(&(_, tid), rec)| {
                self.tasks.get(&tid).map(|task| {
                    Experience::new(task, rec.trustworthiness(self.normalizer).value())
                })
            })
            .collect()
    }

    /// Eq. 4 inference toward `peer` for a task it never performed.
    pub fn infer(&self, peer: P, new_task: &Task) -> Result<f64, TrustError> {
        infer_task(new_task, &self.experiences_with(peer))
    }

    /// Direct trustworthiness when available, inferred otherwise.
    pub fn trustworthiness_or_inferred(&self, peer: P, task: &Task) -> Option<Trustworthiness> {
        if let Some(tw) = self.trustworthiness(peer, task.id()) {
            return Some(tw);
        }
        self.infer(peer, task).ok().map(Trustworthiness::new)
    }

    /// The usage log about `peer` (for reverse evaluation).
    pub fn usage_log(&self, peer: P) -> UsageLog {
        self.logs.get(&peer).copied().unwrap_or_default()
    }

    /// Mutable usage log about `peer`.
    pub fn usage_log_mut(&mut self, peer: P) -> &mut UsageLog {
        self.logs.entry(peer).or_default()
    }

    /// Peers with at least one record, in key order.
    pub fn known_peers(&self) -> Vec<P> {
        let mut peers: Vec<P> = self.records.keys().map(|&(p, _)| p).collect();
        peers.dedup();
        peers
    }

    /// Number of `(peer, task)` records held.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::CharacteristicId;

    fn task(id: u32, cs: &[u32]) -> Task {
        Task::uniform(TaskId(id), cs.iter().map(|&i| CharacteristicId(i))).unwrap()
    }

    #[test]
    fn observe_creates_and_updates() {
        let mut store: TrustStore<u32> = TrustStore::new();
        let betas = ForgettingFactors::uniform(0.5);
        store.observe(7, TaskId(0), &Observation::success(1.0, 0.0), &betas);
        let rec = store.record(7, TaskId(0)).unwrap();
        assert_eq!(rec.interactions, 1);
        assert!(rec.s_hat > 0.5);
        assert!(store.record(7, TaskId(1)).is_none());
        assert!(store.record(8, TaskId(0)).is_none());
    }

    #[test]
    fn trustworthiness_requires_experience() {
        let store: TrustStore<u32> = TrustStore::new();
        assert!(store.trustworthiness(1, TaskId(0)).is_none());
    }

    #[test]
    fn inference_via_store() {
        let mut store: TrustStore<u32> = TrustStore::new();
        let gps = task(0, &[0]);
        let image = task(1, &[1]);
        let traffic = task(2, &[0, 1]);
        store.register_task(gps);
        store.register_task(image);
        let betas = ForgettingFactors::uniform(0.0); // jump to observation
        // strong experience on both component tasks
        for tid in [TaskId(0), TaskId(1)] {
            store.observe(5, tid, &Observation::success(1.0, 0.0), &betas);
        }
        let inferred = store.infer(5, &traffic).unwrap();
        assert!(inferred > 0.8, "inferred = {inferred}");
        // no record for τ2 itself
        assert!(store.trustworthiness(5, TaskId(2)).is_none());
        assert!(store.trustworthiness_or_inferred(5, &traffic).unwrap().value() > 0.8);
    }

    #[test]
    fn inference_fails_without_coverage() {
        let mut store: TrustStore<u32> = TrustStore::new();
        let gps = task(0, &[0]);
        store.register_task(gps);
        store.observe(5, TaskId(0), &Observation::success(1.0, 0.0), &ForgettingFactors::paper());
        let exotic = task(9, &[7]);
        assert!(store.infer(5, &exotic).is_err());
        assert!(store.trustworthiness_or_inferred(5, &exotic).is_none());
    }

    #[test]
    fn experiences_scoped_per_peer() {
        let mut store: TrustStore<u32> = TrustStore::new();
        store.register_task(task(0, &[0]));
        let betas = ForgettingFactors::paper();
        store.observe(1, TaskId(0), &Observation::success(1.0, 0.0), &betas);
        store.observe(2, TaskId(0), &Observation::failure(1.0, 1.0), &betas);
        assert_eq!(store.experiences_with(1).len(), 1);
        assert_eq!(store.experiences_with(2).len(), 1);
        assert_eq!(store.experiences_with(3).len(), 0);
        assert_eq!(store.known_peers(), vec![1, 2]);
        assert_eq!(store.record_count(), 2);
    }

    #[test]
    fn environment_aware_observe() {
        let mut store: TrustStore<u32> = TrustStore::new();
        let betas = ForgettingFactors::uniform(0.0);
        let hostile = [EnvIndicator::saturating(0.4)];
        store.observe_with_environment(
            1,
            TaskId(0),
            &Observation { success_rate: 0.32, gain: 0.0, damage: 0.0, cost: 0.0 },
            &hostile,
            &betas,
        );
        assert!((store.record(1, TaskId(0)).unwrap().s_hat - 0.8).abs() < 1e-12);
    }

    #[test]
    fn usage_logs() {
        let mut store: TrustStore<u32> = TrustStore::new();
        store.usage_log_mut(9).record_abusive();
        store.usage_log_mut(9).record_abusive();
        store.usage_log_mut(9).record_responsive();
        let log = store.usage_log(9);
        assert_eq!(log.total(), 3);
        assert_eq!(log.abusive, 2);
        assert_eq!(store.usage_log(1), UsageLog::default());
    }

    #[test]
    fn records_with_tendril_task_ids_stay_separate() {
        let mut store: TrustStore<u32> = TrustStore::new();
        let betas = ForgettingFactors::paper();
        store.observe(1, TaskId(0), &Observation::success(1.0, 0.0), &betas);
        store.observe(1, TaskId(u32::MAX), &Observation::failure(1.0, 1.0), &betas);
        assert_eq!(store.experiences_with(1).len(), 0, "unregistered tasks are skipped");
        assert_eq!(store.record_count(), 2);
    }

    #[test]
    fn default_impl() {
        let store: TrustStore<u8> = TrustStore::default();
        assert_eq!(store.record_count(), 0);
    }
}
