//! The context ingredient (§3.5): task type plus environment.

use crate::environment::EnvIndicator;
use crate::task::TaskId;

/// Trust is situated: the same trustee may be trustworthy for one task in
/// one environment and not otherwise. A `Context` names that situation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Context {
    /// The task type this trust relation is about.
    pub task: TaskId,
    /// The instantaneous environment.
    pub environment: EnvIndicator,
}

impl Context {
    /// Context for `task` under a perfectly amicable environment.
    pub fn amicable(task: TaskId) -> Self {
        Context { task, environment: EnvIndicator::AMICABLE }
    }

    /// Context for `task` under the given environment.
    pub fn new(task: TaskId, environment: EnvIndicator) -> Self {
        Context { task, environment }
    }

    /// Whether two contexts concern the same task type (environment may
    /// differ — environments change, tasks define the trust scope).
    pub fn same_task(&self, other: &Context) -> bool {
        self.task == other.task
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amicable_constructor() {
        let c = Context::amicable(TaskId(3));
        assert_eq!(c.task, TaskId(3));
        assert_eq!(c.environment.value(), 1.0);
    }

    #[test]
    fn same_task_ignores_environment() {
        let a = Context::new(TaskId(1), EnvIndicator::saturating(0.2));
        let b = Context::amicable(TaskId(1));
        let c = Context::amicable(TaskId(2));
        assert!(a.same_task(&b));
        assert!(!a.same_task(&c));
    }
}
