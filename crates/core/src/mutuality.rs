//! Mutuality of trustor and trustee (§4.1, Eq. 1).
//!
//! Before accepting a delegation, the trustee reverse-evaluates the trustor
//! — *"to evaluate the trustor, the trustee can use its log files or usage
//! pattern records to recognize how the trustor has used its resources"* —
//! and only serves trustors whose reverse trustworthiness clears a
//! threshold `θ_y(τ)`.

use crate::tw::Trustworthiness;

/// The trustee's usage log about one trustor: counts of responsive
/// (legitimate) and abusive uses of the trustee's resources.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UsageLog {
    /// Legitimate, responsive uses.
    pub responsive: u64,
    /// Abusive uses (resource misuse, malicious exploitation).
    pub abusive: u64,
}

impl UsageLog {
    /// An empty log (no history with this trustor).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one legitimate use.
    pub fn record_responsive(&mut self) {
        self.responsive += 1;
    }

    /// Records one abusive use.
    pub fn record_abusive(&mut self) {
        self.abusive += 1;
    }

    /// Total observed uses.
    pub fn total(&self) -> u64 {
        self.responsive + self.abusive
    }

    /// Reverse trustworthiness `T̃W_{y←X}(τ)` from the usage statistics,
    /// with Laplace smoothing so an empty log yields the neutral prior 0.5
    /// (an unknown trustor is neither trusted nor distrusted).
    pub fn reverse_trustworthiness(&self) -> Trustworthiness {
        let tw = (self.responsive as f64 + 1.0) / (self.total() as f64 + 2.0);
        Trustworthiness::new(tw)
    }
}

/// The trustee-side acceptance test of Eq. 1:
/// `T̃W_{y←X}(τ) ≥ θ_y(τ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReverseEvaluator {
    /// The acceptance threshold `θ_y(τ)`.
    pub theta: f64,
}

impl ReverseEvaluator {
    /// A trustee with threshold `theta`. `θ = 0` accepts every trustor —
    /// the unilateral-evaluation baseline of Fig. 7.
    pub fn new(theta: f64) -> Self {
        ReverseEvaluator { theta }
    }

    /// Whether the trustee accepts a trustor with this usage history.
    pub fn accepts(&self, log: &UsageLog) -> bool {
        log.reverse_trustworthiness().clears(self.theta)
    }

    /// Whether the trustee accepts a trustor with a precomputed reverse
    /// trustworthiness.
    pub fn accepts_tw(&self, tw: Trustworthiness) -> bool {
        tw.clears(self.theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log_is_neutral() {
        let log = UsageLog::new();
        assert_eq!(log.reverse_trustworthiness().value(), 0.5);
        assert_eq!(log.total(), 0);
    }

    #[test]
    fn responsive_history_builds_trust() {
        let mut log = UsageLog::new();
        for _ in 0..18 {
            log.record_responsive();
        }
        // (18+1)/(18+2) = 0.95
        assert!((log.reverse_trustworthiness().value() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn abusive_history_destroys_trust() {
        let mut log = UsageLog::new();
        for _ in 0..8 {
            log.record_abusive();
        }
        // (0+1)/(8+2) = 0.1
        assert!((log.reverse_trustworthiness().value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mixed_history() {
        let log = UsageLog { responsive: 3, abusive: 1 };
        // (3+1)/(4+2) = 2/3
        assert!((log.reverse_trustworthiness().value() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn theta_zero_accepts_everyone() {
        let eval = ReverseEvaluator::new(0.0);
        let hostile = UsageLog { responsive: 0, abusive: 100 };
        assert!(eval.accepts(&hostile), "θ=0 is the unilateral baseline");
    }

    #[test]
    fn theta_blocks_abusers() {
        let eval = ReverseEvaluator::new(0.3);
        let abuser = UsageLog { responsive: 0, abusive: 10 };
        let citizen = UsageLog { responsive: 10, abusive: 0 };
        assert!(!eval.accepts(&abuser));
        assert!(eval.accepts(&citizen));
    }

    #[test]
    fn theta_point_six_blocks_unknowns() {
        // with θ = 0.6 even a fresh trustor (0.5) is refused — matching the
        // rising unavailable rate in Fig. 7.
        let eval = ReverseEvaluator::new(0.6);
        assert!(!eval.accepts(&UsageLog::new()));
    }

    #[test]
    fn accepts_tw_direct() {
        let eval = ReverseEvaluator::new(0.5);
        assert!(eval.accepts_tw(Trustworthiness::new(0.5)));
        assert!(!eval.accepts_tw(Trustworthiness::new(0.49)));
    }
}
