//! Baseline reputation models from the literature the paper positions
//! itself against (§2), used as comparators in tests and ablations.
//!
//! * [`BetaReputation`] — the classic a/b-counter reputation (success and
//!   failure tallies; the basis of many P2P systems, cf. Dewan & Dasgupta
//!   \[19\]).
//! * [`SingleValueEwma`] — one scalar trust value updated exponentially
//!   (the "narrow aspect" model of e.g. He et al. \[11\]: no gain, damage or
//!   cost distinction, no task context).
//! * [`CredibilityWeightedFeedback`] — PeerTrust-flavoured aggregation
//!   (Xiong & Liu \[18\]): feedback weighted by the credibility of its
//!   source.
//!
//! The clarified model's advantage is *what these cannot express*: a
//! trustee that succeeds often but costs more than it gains looks perfect
//! to all three and unprofitable to Eq. 18.

use crate::tw::Trustworthiness;

/// A minimal reputation interface shared by the baselines.
pub trait ReputationModel {
    /// Folds one interaction outcome (success flag only — that is the
    /// point of these baselines).
    fn record(&mut self, success: bool);
    /// The current reputation score in `[0, 1]`.
    fn score(&self) -> f64;
    /// Model name for reports.
    fn name(&self) -> &'static str;
}

/// Beta-reputation: `(s + 1) / (s + f + 2)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BetaReputation {
    /// Successful interactions.
    pub successes: u64,
    /// Failed interactions.
    pub failures: u64,
}

impl BetaReputation {
    /// An empty reputation.
    pub fn new() -> Self {
        Self::default()
    }

    /// As a [`Trustworthiness`] value.
    pub fn trustworthiness(&self) -> Trustworthiness {
        Trustworthiness::new(self.score())
    }
}

impl ReputationModel for BetaReputation {
    fn record(&mut self, success: bool) {
        if success {
            self.successes += 1;
        } else {
            self.failures += 1;
        }
    }

    fn score(&self) -> f64 {
        (self.successes as f64 + 1.0) / ((self.successes + self.failures) as f64 + 2.0)
    }

    fn name(&self) -> &'static str {
        "beta-reputation"
    }
}

/// One scalar, exponentially updated: `t ← α·t + (1−α)·outcome`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleValueEwma {
    /// Memory factor α ∈ [0, 1].
    pub alpha: f64,
    value: f64,
}

impl SingleValueEwma {
    /// Starts from the neutral 0.5.
    pub fn new(alpha: f64) -> Self {
        SingleValueEwma { alpha: alpha.clamp(0.0, 1.0), value: 0.5 }
    }
}

impl ReputationModel for SingleValueEwma {
    fn record(&mut self, success: bool) {
        let outcome = if success { 1.0 } else { 0.0 };
        self.value = self.alpha * self.value + (1.0 - self.alpha) * outcome;
    }

    fn score(&self) -> f64 {
        self.value
    }

    fn name(&self) -> &'static str {
        "single-value-ewma"
    }
}

/// A feedback report about a peer, with the reporter's credibility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Feedback {
    /// The reported satisfaction in `[0, 1]`.
    pub satisfaction: f64,
    /// The credibility of the reporter in `[0, 1]`.
    pub credibility: f64,
}

/// PeerTrust-style credibility-weighted aggregation:
/// `Σ credᵢ·satᵢ / Σ credᵢ`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CredibilityWeightedFeedback {
    reports: Vec<Feedback>,
}

impl CredibilityWeightedFeedback {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one feedback report.
    pub fn add(&mut self, feedback: Feedback) {
        self.reports.push(feedback);
    }

    /// The aggregated score; 0.5 (ignorance) without reports or when all
    /// credibilities are zero.
    pub fn score(&self) -> f64 {
        let num: f64 = self.reports.iter().map(|f| f.credibility * f.satisfaction).sum();
        let den: f64 = self.reports.iter().map(|f| f.credibility).sum();
        if den <= 0.0 {
            0.5
        } else {
            (num / den).clamp(0.0, 1.0)
        }
    }

    /// Number of reports held.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether no reports have been added.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ForgettingFactors, Observation, TrustRecord};

    #[test]
    fn beta_reputation_counts() {
        let mut r = BetaReputation::new();
        assert_eq!(r.score(), 0.5, "Laplace prior");
        for _ in 0..8 {
            r.record(true);
        }
        assert!((r.score() - 0.9).abs() < 1e-12);
        r.record(false);
        assert!(r.score() < 0.9);
        assert!(r.trustworthiness().value() > 0.7);
    }

    #[test]
    fn single_value_ewma_tracks() {
        let mut m = SingleValueEwma::new(0.9);
        for _ in 0..200 {
            m.record(true);
        }
        assert!(m.score() > 0.99);
        for _ in 0..200 {
            m.record(false);
        }
        assert!(m.score() < 0.01);
        assert_eq!(m.name(), "single-value-ewma");
    }

    #[test]
    fn credibility_weighting() {
        let mut agg = CredibilityWeightedFeedback::new();
        assert!(agg.is_empty());
        assert_eq!(agg.score(), 0.5);
        // a credible 0.9 and a non-credible smear at 0.0
        agg.add(Feedback { satisfaction: 0.9, credibility: 0.9 });
        agg.add(Feedback { satisfaction: 0.0, credibility: 0.05 });
        assert!(agg.score() > 0.8, "{}", agg.score());
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn zero_credibility_is_ignored() {
        let mut agg = CredibilityWeightedFeedback::new();
        agg.add(Feedback { satisfaction: 1.0, credibility: 0.0 });
        assert_eq!(agg.score(), 0.5);
    }

    #[test]
    fn baselines_blind_to_cost_the_clarified_model_sees() {
        // a trustee that always succeeds but costs more than it gains
        let mut beta = BetaReputation::new();
        let mut ewma = SingleValueEwma::new(0.9);
        let mut record = TrustRecord::from_first_observation(&Observation {
            success_rate: 1.0,
            gain: 0.2,
            damage: 0.0,
            cost: 0.9,
        });
        let betas = ForgettingFactors::figures();
        for _ in 0..100 {
            beta.record(true);
            ewma.record(true);
            record.update(
                &Observation { success_rate: 1.0, gain: 0.2, damage: 0.0, cost: 0.9 },
                &betas,
            );
        }
        assert!(beta.score() > 0.95, "the baseline adores it");
        assert!(ewma.score() > 0.95, "so does the EWMA");
        assert!(
            record.expected_net_profit() < -0.5,
            "Eq. 18 sees the loss: {}",
            record.expected_net_profit()
        );
    }

    #[test]
    fn models_usable_via_trait_objects() {
        let mut models: Vec<Box<dyn ReputationModel>> =
            vec![Box::new(BetaReputation::new()), Box::new(SingleValueEwma::new(0.5))];
        for m in models.iter_mut() {
            m.record(true);
            assert!(m.score() > 0.5);
            assert!(!m.name().is_empty());
        }
    }
}
