//! Pluggable storage backends for the [`TrustEngine`](crate::store::TrustEngine).
//!
//! A [`TrustBackend`] holds the per-`(peer, task)` [`TrustRecord`]s of one
//! trust engine and nothing else — task definitions, usage logs and the
//! normalizer stay in the engine, which is what every consumer talks to.
//! Two implementations ship:
//!
//! * [`BTreeBackend`] — the original ordered map. Iteration order is the key
//!   order, making every simulation built on top bit-for-bit deterministic.
//!   The right default for experiments and small agents.
//! * [`ShardedBackend`] — records partitioned by peer across
//!   lock-protected hash shards. `&mut` access bypasses the locks entirely;
//!   shared (`&self`) access locks only the one shard a peer lives in, so
//!   threads touching different peers proceed in parallel. Aimed at
//!   high-peer-count workloads where a single agent tracks thousands to
//!   millions of peers.
//!
//! ## The iterator contract
//!
//! `for_each_experience` visits a peer's records in **ascending `TaskId`
//! order**, and `known_peers` returns **each peer exactly once, ascending**
//! — even when the underlying map interleaves a peer's records with other
//! peers' (hash maps do). Both backends uphold this, and the engine's
//! regression tests pin it, because `TrustStore::known_peers` once assumed
//! records of one peer are adjacent, which only the B-tree layout
//! guarantees.

use crate::error::TrustError;
use crate::mutuality::UsageLog;
use crate::record::TrustRecord;
use crate::task::TaskId;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

/// Storage of per-`(peer, task)` trust records.
///
/// `update` is the write primitive: it receives the existing record (or
/// `None` on first contact) and stores whatever the closure returns. The
/// engine builds `observe`, environment-aware updates and batching on top.
pub trait TrustBackend<P: Copy + Ord>: Default + Clone + fmt::Debug {
    /// A fresh, empty backend.
    fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the record for `(peer, task)`.
    fn get(&self, peer: P, task: TaskId) -> Option<TrustRecord>;

    /// Inserts or replaces the record for `(peer, task)`.
    fn insert(&mut self, peer: P, task: TaskId, rec: TrustRecord);

    /// Read-modify-write: stores `f(existing)` for `(peer, task)`.
    fn update(
        &mut self,
        peer: P,
        task: TaskId,
        f: &mut dyn FnMut(Option<TrustRecord>) -> TrustRecord,
    );

    /// Applies one read-modify-write per batch element; `f` receives the
    /// batch index and the existing record. Backends override this to
    /// amortize per-item lookup costs (shard routing, locking).
    fn update_batch(
        &mut self,
        items: &[(P, TaskId)],
        f: &mut dyn FnMut(usize, Option<TrustRecord>) -> TrustRecord,
    ) {
        for (i, &(peer, task)) in items.iter().enumerate() {
            self.update(peer, task, &mut |prior| f(i, prior));
        }
    }

    /// Visits every record held about `peer` in ascending `TaskId` order.
    fn for_each_experience(&self, peer: P, f: &mut dyn FnMut(TaskId, TrustRecord));

    /// Every peer with at least one record — each exactly once, ascending.
    fn known_peers(&self) -> Vec<P>;

    /// Number of `(peer, task)` records held.
    fn len(&self) -> usize;

    /// Whether no records are held.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every record.
    fn clear(&mut self);

    // ---- Durability hooks -------------------------------------------------
    //
    // Usage logs live in the engine, not the backend — but a *durable*
    // backend must still see them, or a restart would erase the §4.1
    // mutuality history. The engine calls these hooks on its log-mutating
    // paths; in-memory backends keep the no-op defaults.

    /// Durability hook: called by the engine after `peer`'s usage log
    /// changes, with the post-change state. Absolute state (not a delta),
    /// so journaling it twice is harmless and replay cannot double-count.
    /// In-memory backends ignore it.
    fn note_usage_log(&mut self, peer: P, log: UsageLog) {
        let _ = (peer, log);
    }

    /// Durability hook: usage logs recovered from persistent storage,
    /// replayed into the engine by [`TrustEngine::with_backend`]
    /// (each peer at most once, ascending). In-memory backends have none.
    ///
    /// [`TrustEngine::with_backend`]: crate::store::TrustEngine::with_backend
    fn recovered_usage_logs(&self) -> Vec<(P, UsageLog)> {
        Vec::new()
    }

    /// Durability hook: pushes buffered writes down to stable storage
    /// (honoring the backend's fsync policy) and surfaces any I/O failure
    /// recorded since the last flush. A no-op `Ok(())` for in-memory
    /// backends.
    fn flush(&mut self) -> Result<(), TrustError> {
        Ok(())
    }

    /// Durability hook: the **group-commit barrier**. The engine calls it
    /// once per write operation — after *all* of a batch's records and
    /// usage logs are appended — and a durable backend whose policy
    /// demands per-operation durability (the log backends under
    /// [`FsyncPolicy::Always`](crate::log::FsyncPolicy::Always)) issues
    /// one fsync covering everything appended since the last barrier.
    /// Everything acknowledged past a returned `Ok` is on disk; a batch of
    /// any size pays one syscall, not one per record. Reports (but does
    /// not consume) a sticky append failure — [`flush`](Self::flush) stays
    /// the surface-once point. A no-op `Ok(())` for in-memory backends
    /// and under the other fsync policies.
    fn commit_barrier(&mut self) -> Result<(), TrustError> {
        Ok(())
    }
}

/// A backend whose shared (`&self`) handle supports concurrent writers.
///
/// Implementations must be safe to call from multiple threads at once;
/// writes to the same `(peer, task)` serialize, writes to different peers
/// may proceed in parallel.
///
/// ## Write lanes
///
/// Concurrent backends additionally expose their internal write topology as
/// **lanes**: [`write_lanes`](Self::write_lanes) independently lockable
/// partitions, with [`lane_of`](Self::lane_of) mapping every peer to the one
/// lane its records live in — stable for the backend's lifetime. A caller
/// that partitions lanes across writer threads (the
/// [`ObserverPool`](crate::pool::ObserverPool)) gets contention-free writes
/// *and* a deterministic fold order: all observations of one peer pass
/// through one lane, and [`update_lane_run_shared`](Self::update_lane_run_shared)
/// applies a pre-routed run in the caller's order under a single lock
/// acquisition. Backends without internal partitioning report one lane, which
/// degrades a lane-affine caller to sequential folding — slower, never wrong.
pub trait ConcurrentTrustBackend<P: Copy + Ord>: TrustBackend<P> + Sync {
    /// Shared-handle snapshot of the record for `(peer, task)`.
    fn get_shared(&self, peer: P, task: TaskId) -> Option<TrustRecord>;

    /// Shared-handle read-modify-write (see [`TrustBackend::update`]).
    fn update_shared(
        &self,
        peer: P,
        task: TaskId,
        f: &mut dyn FnMut(Option<TrustRecord>) -> TrustRecord,
    );

    /// Shared-handle batch variant; locks each shard once per contiguous
    /// run instead of once per record.
    fn update_batch_shared(
        &self,
        items: &[(P, TaskId)],
        f: &mut dyn FnMut(usize, Option<TrustRecord>) -> TrustRecord,
    ) {
        for (i, &(peer, task)) in items.iter().enumerate() {
            self.update_shared(peer, task, &mut |prior| f(i, prior));
        }
    }

    /// Number of independently writable lanes (≥ 1). Writes routed to
    /// different lanes never contend.
    fn write_lanes(&self) -> usize {
        1
    }

    /// The lane `peer`'s records live in (`< write_lanes()`), stable for
    /// the backend's lifetime.
    fn lane_of(&self, peer: P) -> usize {
        let _ = peer;
        0
    }

    /// Shared-handle read-modify-write over one lane's pre-routed run:
    /// every `i` in `indices` selects a batch element whose key is
    /// `key_of(i)` and whose peer routes to `lane` (callers route with
    /// [`lane_of`](Self::lane_of), hashing each peer exactly once).
    /// Elements are applied in `indices` order; implementations hold the
    /// lane's lock once for the whole run. The default falls back to
    /// per-item [`update_shared`](Self::update_shared).
    fn update_lane_run_shared(
        &self,
        lane: usize,
        indices: &[usize],
        key_of: &dyn Fn(usize) -> (P, TaskId),
        f: &mut dyn FnMut(usize, Option<TrustRecord>) -> TrustRecord,
    ) {
        let _ = lane;
        for &i in indices {
            let (peer, task) = key_of(i);
            self.update_shared(peer, task, &mut |prior| f(i, prior));
        }
    }

    /// Shared-handle [`commit_barrier`](TrustBackend::commit_barrier):
    /// the fsync covers every append that completed before the call,
    /// across all lanes and threads. A no-op `Ok(())` for in-memory
    /// backends.
    fn commit_barrier_shared(&self) -> Result<(), TrustError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// BTreeBackend
// ---------------------------------------------------------------------------

/// The original deterministic ordered-map backend.
#[derive(Debug, Clone, PartialEq)]
pub struct BTreeBackend<P> {
    records: BTreeMap<(P, TaskId), TrustRecord>,
}

impl<P> Default for BTreeBackend<P> {
    fn default() -> Self {
        BTreeBackend { records: BTreeMap::new() }
    }
}

impl<P: Copy + Ord + fmt::Debug> TrustBackend<P> for BTreeBackend<P> {
    fn get(&self, peer: P, task: TaskId) -> Option<TrustRecord> {
        self.records.get(&(peer, task)).copied()
    }

    fn insert(&mut self, peer: P, task: TaskId, rec: TrustRecord) {
        self.records.insert((peer, task), rec);
    }

    fn update(
        &mut self,
        peer: P,
        task: TaskId,
        f: &mut dyn FnMut(Option<TrustRecord>) -> TrustRecord,
    ) {
        match self.records.get_mut(&(peer, task)) {
            Some(rec) => *rec = f(Some(*rec)),
            None => {
                self.records.insert((peer, task), f(None));
            }
        }
    }

    fn for_each_experience(&self, peer: P, f: &mut dyn FnMut(TaskId, TrustRecord)) {
        for (&(_, tid), &rec) in self.records.range((peer, TaskId(0))..=(peer, TaskId(u32::MAX))) {
            f(tid, rec);
        }
    }

    fn known_peers(&self) -> Vec<P> {
        let mut peers: Vec<P> = self.records.keys().map(|&(p, _)| p).collect();
        peers.dedup(); // key order makes a peer's records adjacent
        peers
    }

    fn len(&self) -> usize {
        self.records.len()
    }

    fn clear(&mut self) {
        self.records.clear();
    }
}

// ---------------------------------------------------------------------------
// ShardedBackend
// ---------------------------------------------------------------------------

/// Deterministic hasher: `std`'s SipHash with fixed keys, so shard layout
/// and iteration order are stable across runs (the default `RandomState`
/// would randomize them per process).
type FixedState = BuildHasherDefault<DefaultHasher>;

type Shard<P> = HashMap<P, BTreeMap<TaskId, TrustRecord>, FixedState>;

/// Hash-sharded backend with per-shard interior mutability.
///
/// Records are partitioned by *peer* (not `(peer, task)`), so one peer's
/// records always live in a single shard: `for_each_experience` touches one
/// lock, and the per-peer `BTreeMap` keeps the ascending-`TaskId` iterator
/// contract for free.
pub struct ShardedBackend<P> {
    shards: Box<[RwLock<Shard<P>>]>,
    /// Total `(peer, task)` records, maintained on insert paths so `len`
    /// does not take every shard lock.
    count: AtomicUsize,
}

impl<P> ShardedBackend<P> {
    /// Default shard count — enough lanes for a few dozen writer threads.
    pub const DEFAULT_SHARDS: usize = 16;

    /// A backend with `shards` lanes (rounded up to a power of two, min 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedBackend {
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            count: AtomicUsize::new(0),
        }
    }

    /// A backend sized for `writers` lane-owning worker threads: four lanes
    /// per writer (rounded up to a power of two), so hash skew across peers
    /// averages out inside each owner's lane set while every writer still
    /// owns at least one lane. This is the shard count the shard-affine
    /// [`ObserverPool`](crate::pool::ObserverPool) expects its engines to be
    /// built with.
    pub fn with_shards_for_writers(writers: usize) -> Self {
        Self::with_shards(writers.max(1).saturating_mul(4))
    }

    /// Number of shard lanes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl<P: Copy + Ord + Hash> ShardedBackend<P> {
    #[inline]
    fn shard_index(&self, peer: P) -> usize {
        let mut h = DefaultHasher::new();
        peer.hash(&mut h);
        (h.finish() as usize) & (self.shards.len() - 1)
    }

    fn read(&self, idx: usize) -> std::sync::RwLockReadGuard<'_, Shard<P>> {
        self.shards[idx].read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self, idx: usize) -> std::sync::RwLockWriteGuard<'_, Shard<P>> {
        self.shards[idx].write().unwrap_or_else(|e| e.into_inner())
    }

    fn upsert_in(
        shard: &mut Shard<P>,
        count: &AtomicUsize,
        peer: P,
        task: TaskId,
        f: &mut dyn FnMut(Option<TrustRecord>) -> TrustRecord,
    ) {
        let per_peer = shard.entry(peer).or_default();
        match per_peer.get_mut(&task) {
            Some(rec) => *rec = f(Some(*rec)),
            None => {
                per_peer.insert(task, f(None));
                count.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Buckets batch-item indices by destination shard, so both batch paths
    /// visit each lane exactly once.
    fn group_by_shard(&self, items: &[(P, TaskId)]) -> Vec<Vec<usize>> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, &(peer, _)) in items.iter().enumerate() {
            by_shard[self.shard_index(peer)].push(i);
        }
        by_shard
    }
}

impl<P> Default for ShardedBackend<P> {
    fn default() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }
}

impl<P: Copy + Ord + Hash> Clone for ShardedBackend<P> {
    fn clone(&self) -> Self {
        let shards: Box<[RwLock<Shard<P>>]> = self
            .shards
            .iter()
            .map(|s| RwLock::new(s.read().unwrap_or_else(|e| e.into_inner()).clone()))
            .collect();
        ShardedBackend { shards, count: AtomicUsize::new(self.count.load(Ordering::Relaxed)) }
    }
}

impl<P: Copy + Ord + Hash + fmt::Debug> fmt::Debug for ShardedBackend<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedBackend")
            .field("shards", &self.shards.len())
            .field("records", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<P: Copy + Ord + Hash> TrustBackend<P> for ShardedBackend<P>
where
    P: fmt::Debug,
{
    fn get(&self, peer: P, task: TaskId) -> Option<TrustRecord> {
        let idx = self.shard_index(peer);
        // &mut-free read path; uncontended in single-threaded use
        self.read(idx).get(&peer).and_then(|m| m.get(&task)).copied()
    }

    fn insert(&mut self, peer: P, task: TaskId, rec: TrustRecord) {
        let idx = self.shard_index(peer);
        let shard = self.shards[idx].get_mut().unwrap_or_else(|e| e.into_inner());
        if shard.entry(peer).or_default().insert(task, rec).is_none() {
            self.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn update(
        &mut self,
        peer: P,
        task: TaskId,
        f: &mut dyn FnMut(Option<TrustRecord>) -> TrustRecord,
    ) {
        let idx = self.shard_index(peer);
        let shard = self.shards[idx].get_mut().unwrap_or_else(|e| e.into_inner());
        Self::upsert_in(shard, &self.count, peer, task, f);
    }

    fn update_batch(
        &mut self,
        items: &[(P, TaskId)],
        f: &mut dyn FnMut(usize, Option<TrustRecord>) -> TrustRecord,
    ) {
        // Group by shard so each lane's map is walked while hot in cache;
        // `&mut self` already means the locks are uncontended.
        for (idx, indices) in self.group_by_shard(items).into_iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let shard = self.shards[idx].get_mut().unwrap_or_else(|e| e.into_inner());
            for i in indices {
                let (peer, task) = items[i];
                Self::upsert_in(shard, &self.count, peer, task, &mut |prior| f(i, prior));
            }
        }
    }

    fn for_each_experience(&self, peer: P, f: &mut dyn FnMut(TaskId, TrustRecord)) {
        let idx = self.shard_index(peer);
        if let Some(per_peer) = self.read(idx).get(&peer) {
            for (&tid, &rec) in per_peer {
                f(tid, rec);
            }
        }
    }

    fn known_peers(&self) -> Vec<P> {
        // `count` tallies (peer, task) records, an upper bound on distinct
        // peers: one up-front allocation instead of amortized growth from
        // empty (trustee search hammers this read path)
        let mut peers = Vec::with_capacity(self.count.load(Ordering::Relaxed));
        for idx in 0..self.shards.len() {
            let shard = self.read(idx);
            peers.reserve(shard.len());
            peers.extend(shard.keys().copied());
        }
        // a peer lives in exactly one shard, so sorting alone restores the
        // "each peer once, ascending" contract
        peers.sort_unstable();
        peers
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    fn clear(&mut self) {
        for shard in self.shards.iter_mut() {
            shard.get_mut().unwrap_or_else(|e| e.into_inner()).clear();
        }
        self.count.store(0, Ordering::Relaxed);
    }
}

impl<P: Copy + Ord + Hash + Send + Sync + fmt::Debug> ConcurrentTrustBackend<P>
    for ShardedBackend<P>
{
    fn get_shared(&self, peer: P, task: TaskId) -> Option<TrustRecord> {
        let idx = self.shard_index(peer);
        self.read(idx).get(&peer).and_then(|m| m.get(&task)).copied()
    }

    fn update_shared(
        &self,
        peer: P,
        task: TaskId,
        f: &mut dyn FnMut(Option<TrustRecord>) -> TrustRecord,
    ) {
        let idx = self.shard_index(peer);
        let mut shard = self.write(idx);
        Self::upsert_in(&mut shard, &self.count, peer, task, f);
    }

    fn update_batch_shared(
        &self,
        items: &[(P, TaskId)],
        f: &mut dyn FnMut(usize, Option<TrustRecord>) -> TrustRecord,
    ) {
        // Lock each lane once for its whole slice of the batch.
        for (idx, indices) in self.group_by_shard(items).into_iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let mut shard = self.write(idx);
            for i in indices {
                let (peer, task) = items[i];
                Self::upsert_in(&mut shard, &self.count, peer, task, &mut |prior| f(i, prior));
            }
        }
    }

    fn write_lanes(&self) -> usize {
        self.shards.len()
    }

    fn lane_of(&self, peer: P) -> usize {
        self.shard_index(peer)
    }

    fn update_lane_run_shared(
        &self,
        lane: usize,
        indices: &[usize],
        key_of: &dyn Fn(usize) -> (P, TaskId),
        f: &mut dyn FnMut(usize, Option<TrustRecord>) -> TrustRecord,
    ) {
        if indices.is_empty() {
            return;
        }
        let mut shard = self.write(lane);
        for &i in indices {
            let (peer, task) = key_of(i);
            debug_assert_eq!(self.shard_index(peer), lane, "mis-routed lane run");
            Self::upsert_in(&mut shard, &self.count, peer, task, &mut |prior| f(i, prior));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TrustRecord;

    fn rec(s: f64) -> TrustRecord {
        TrustRecord::with_priors(s, 0.5, 0.1, 0.1)
    }

    fn exercise<B: TrustBackend<u32>>(mut b: B) {
        assert!(b.is_empty());
        b.insert(7, TaskId(1), rec(0.5));
        b.insert(3, TaskId(0), rec(0.25));
        b.insert(7, TaskId(0), rec(0.75));
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(7, TaskId(1)).unwrap().s_hat, 0.5);
        assert!(b.get(7, TaskId(2)).is_none());
        assert!(b.get(99, TaskId(0)).is_none());

        // update hits the existing record…
        b.update(7, TaskId(1), &mut |prior| {
            let mut r = prior.expect("existing record");
            r.s_hat = 0.9;
            r
        });
        assert_eq!(b.get(7, TaskId(1)).unwrap().s_hat, 0.9);
        assert_eq!(b.len(), 3);
        // …and creates on first contact
        b.update(8, TaskId(5), &mut |prior| {
            assert!(prior.is_none());
            rec(1.0)
        });
        assert_eq!(b.len(), 4);

        // experiences ascend by task id
        let mut seen = Vec::new();
        b.for_each_experience(7, &mut |tid, r| seen.push((tid, r.s_hat)));
        assert_eq!(seen, vec![(TaskId(0), 0.75), (TaskId(1), 0.9)]);

        // peers ascend, each exactly once
        assert_eq!(b.known_peers(), vec![3, 7, 8]);

        b.clear();
        assert_eq!(b.len(), 0);
        assert!(b.known_peers().is_empty());
    }

    #[test]
    fn btree_backend_contract() {
        exercise(BTreeBackend::<u32>::default());
    }

    #[test]
    fn sharded_backend_contract() {
        exercise(ShardedBackend::<u32>::default());
        exercise(ShardedBackend::<u32>::with_shards(1));
        exercise(ShardedBackend::<u32>::with_shards(3)); // rounds to 4
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedBackend::<u32>::with_shards(0).shard_count(), 1);
        assert_eq!(ShardedBackend::<u32>::with_shards(5).shard_count(), 8);
        assert_eq!(ShardedBackend::<u32>::with_shards(16).shard_count(), 16);
    }

    #[test]
    fn batch_updates_match_loop() {
        let items: Vec<(u32, TaskId)> = (0..100).map(|i| (i % 13, TaskId(i / 13))).collect();
        let mut a = ShardedBackend::<u32>::default();
        let mut b = ShardedBackend::<u32>::default();
        for &(p, t) in &items {
            a.update(p, t, &mut |prior| match prior {
                Some(mut r) => {
                    r.interactions += 1;
                    r
                }
                None => rec(0.5),
            });
        }
        b.update_batch(&items, &mut |_, prior| match prior {
            Some(mut r) => {
                r.interactions += 1;
                r
            }
            None => rec(0.5),
        });
        assert_eq!(a.len(), b.len());
        for &(p, t) in &items {
            assert_eq!(a.get(p, t), b.get(p, t));
        }
    }

    #[test]
    fn writer_sizing_gives_each_writer_lanes() {
        let b = ShardedBackend::<u32>::with_shards_for_writers(4);
        assert_eq!(b.shard_count(), 16);
        assert_eq!(b.write_lanes(), 16);
        assert_eq!(ShardedBackend::<u32>::with_shards_for_writers(0).shard_count(), 4);
        assert_eq!(ShardedBackend::<u32>::with_shards_for_writers(3).shard_count(), 16);
    }

    #[test]
    fn lane_runs_match_per_item_updates() {
        let items: Vec<(u32, TaskId)> = (0..200).map(|i| (i % 31, TaskId(i / 31))).collect();
        let bump = |prior: Option<TrustRecord>| match prior {
            Some(mut r) => {
                r.interactions += 1;
                r
            }
            None => rec(0.5),
        };

        let reference = ShardedBackend::<u32>::with_shards_for_writers(2);
        for &(p, t) in &items {
            reference.update_shared(p, t, &mut |prior| bump(prior));
        }

        let routed = ShardedBackend::<u32>::with_shards_for_writers(2);
        let mut runs: Vec<Vec<usize>> = vec![Vec::new(); routed.write_lanes()];
        for (i, &(p, _)) in items.iter().enumerate() {
            assert!(routed.lane_of(p) < routed.write_lanes());
            runs[routed.lane_of(p)].push(i);
        }
        for (lane, indices) in runs.iter().enumerate() {
            routed
                .update_lane_run_shared(lane, indices, &|i| items[i], &mut |_, prior| bump(prior));
        }

        assert_eq!(reference.len(), routed.len());
        for &(p, t) in &items {
            assert_eq!(reference.get(p, t), routed.get(p, t));
        }
    }

    #[test]
    fn concurrent_updates_land() {
        let backend = ShardedBackend::<u32>::default();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let b = &backend;
                scope.spawn(move || {
                    for i in 0..250u32 {
                        b.update_shared(t * 1000 + i, TaskId(0), &mut |_| rec(0.5));
                    }
                });
            }
        });
        assert_eq!(backend.len(), 1000);
        assert_eq!(backend.known_peers().len(), 1000);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = ShardedBackend::<u32>::default();
        a.insert(1, TaskId(0), rec(0.5));
        let mut b = a.clone();
        b.insert(2, TaskId(0), rec(0.6));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
    }
}
