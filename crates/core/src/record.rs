//! The four-component trust record and its EWMA updates (§4.4, Eqs. 18–22).
//!
//! The trustor does not keep a single number per trustee: it keeps the
//! expected success rate `Ŝ`, gain `Ĝ`, damage `D̂` and cost `Ĉ` of
//! delegating a task. After every delegation the four expectations are
//! blended with the freshly observed values using per-component forgetting
//! factors `β` (Eqs. 19–22); the scalar trustworthiness of Eq. 18 is derived
//! on demand.

use crate::error::TrustError;
use crate::tw::{Normalizer, Trustworthiness};

/// What the trustor observed from one delegation (all in `[0, 1]`).
///
/// `success_rate` is 1.0/0.0 for a single success/failure, or a fraction
/// for batched observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Observed success rate `S`.
    pub success_rate: f64,
    /// Observed gain `G` (realized when the task succeeds).
    pub gain: f64,
    /// Observed damage `D` (suffered when the task fails).
    pub damage: f64,
    /// Observed cost `C` (paid either way).
    pub cost: f64,
}

impl Observation {
    /// A fully successful delegation with the given gain and cost.
    pub fn success(gain: f64, cost: f64) -> Self {
        Observation { success_rate: 1.0, gain, damage: 0.0, cost }
    }

    /// A failed delegation with the given damage and cost.
    pub fn failure(damage: f64, cost: f64) -> Self {
        Observation { success_rate: 0.0, gain: 0.0, damage, cost }
    }

    /// Validates that every component lies in `[0, 1]`.
    pub fn validate(&self) -> Result<(), TrustError> {
        for (what, v) in [
            ("success_rate", self.success_rate),
            ("gain", self.gain),
            ("damage", self.damage),
            ("cost", self.cost),
        ] {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(TrustError::OutOfUnitRange { what, value: v });
            }
        }
        Ok(())
    }
}

/// Per-component forgetting factors `β` of Eqs. 19–22.
///
/// The paper notes β *"can be set to different values in the above four
/// updating equations"*, hence one factor per component. `β` close to 1
/// means long memory (slow adaptation); close to 0 means the latest
/// observation dominates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForgettingFactors {
    /// β for the success rate (Eq. 19).
    pub success: f64,
    /// β for the gain (Eq. 20).
    pub gain: f64,
    /// β for the damage (Eq. 21).
    pub damage: f64,
    /// β for the cost (Eq. 22).
    pub cost: f64,
}

impl ForgettingFactors {
    /// The same β for all four components (the evaluation uses β = 0.1).
    pub fn uniform(beta: f64) -> Self {
        ForgettingFactors { success: beta, gain: beta, damage: beta, cost: beta }
    }

    /// The paper's *stated* evaluation setting, β = 0.1 everywhere.
    ///
    /// Note: with Eq. 19's form `x̂ = β·x̂′ + (1−β)·x`, β = 0.1 weighs the
    /// newest observation at 0.9 and converges within 2–3 updates — yet the
    /// paper's Figs. 13–16 all show convergence over tens to hundreds of
    /// iterations ("it takes quite some time ... to converge"). The
    /// figures' time constants correspond to a *history* weight of 0.9,
    /// i.e. [`ForgettingFactors::figures`]. The reproduction uses
    /// `figures()` and records the discrepancy in EXPERIMENTS.md.
    pub fn paper() -> Self {
        Self::uniform(0.1)
    }

    /// The forgetting factor that reproduces the paper's figures: history
    /// weighted at 0.9, newest observation at 0.1 (see [`Self::paper`]).
    pub fn figures() -> Self {
        Self::uniform(0.9)
    }
}

/// The trustor's record about one `(trustee, task)` pair:
/// `(Ŝ, Ĝ, D̂, Ĉ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrustRecord {
    /// Expected success rate `Ŝ_{X←Y}(τ)`.
    pub s_hat: f64,
    /// Expected gain `Ĝ_{X←Y}(τ)`.
    pub g_hat: f64,
    /// Expected damage `D̂_{X←Y}(τ)`.
    pub d_hat: f64,
    /// Expected cost `Ĉ_{X←Y}(τ)`.
    pub c_hat: f64,
    /// Number of delegations folded into this record.
    pub interactions: u64,
}

impl TrustRecord {
    /// A fresh record with explicit priors.
    pub fn with_priors(s: f64, g: f64, d: f64, c: f64) -> Self {
        TrustRecord {
            s_hat: s.clamp(0.0, 1.0),
            g_hat: g.clamp(0.0, 1.0),
            d_hat: d.clamp(0.0, 1.0),
            c_hat: c.clamp(0.0, 1.0),
            interactions: 0,
        }
    }

    /// The optimistic prior the paper's Fig. 15 experiment uses: expected
    /// success 1, neutral gain/damage/cost.
    pub fn optimistic() -> Self {
        TrustRecord::with_priors(1.0, 0.5, 0.5, 0.5)
    }

    /// An ignorance prior: everything at 0.5.
    pub fn neutral() -> Self {
        TrustRecord::with_priors(0.5, 0.5, 0.5, 0.5)
    }

    /// Initializes a record from the first observation. Eq. 19 blends the
    /// observation with a *historical* expectation; on first contact there
    /// is no history, so the observation itself becomes the expectation.
    pub fn from_first_observation(obs: &Observation) -> Self {
        TrustRecord {
            s_hat: obs.success_rate.clamp(0.0, 1.0),
            g_hat: obs.gain.clamp(0.0, 1.0),
            d_hat: obs.damage.clamp(0.0, 1.0),
            c_hat: obs.cost.clamp(0.0, 1.0),
            interactions: 1,
        }
    }

    /// Eqs. 19–22: `x̂ ← β·x̂′ + (1−β)·x` for each of the four components.
    pub fn update(&mut self, obs: &Observation, betas: &ForgettingFactors) {
        self.s_hat = blend(self.s_hat, obs.success_rate, betas.success);
        self.g_hat = blend(self.g_hat, obs.gain, betas.gain);
        self.d_hat = blend(self.d_hat, obs.damage, betas.damage);
        self.c_hat = blend(self.c_hat, obs.cost, betas.cost);
        self.interactions += 1;
    }

    /// Raw expected net profit `Ŝ·Ĝ − (1−Ŝ)·D̂ − Ĉ` (the objective of
    /// Eq. 23, the bracket of Eq. 18).
    pub fn expected_net_profit(&self) -> f64 {
        self.s_hat * self.g_hat - (1.0 - self.s_hat) * self.d_hat - self.c_hat
    }

    /// Eq. 18: normalized post-evaluation trustworthiness
    /// `N[Ŝ·Ĝ − (1−Ŝ)·D̂ − Ĉ]`.
    pub fn trustworthiness(&self, normalizer: Normalizer) -> Trustworthiness {
        normalizer.trustworthiness(self.expected_net_profit())
    }
}

impl Default for TrustRecord {
    fn default() -> Self {
        TrustRecord::neutral()
    }
}

/// One EWMA step: `β·old + (1−β)·new`, clamped to `[0, 1]`.
#[inline]
pub(crate) fn blend(old: f64, new: f64, beta: f64) -> f64 {
    let beta = beta.clamp(0.0, 1.0);
    (beta * old + (1.0 - beta) * new).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_constructors() {
        let s = Observation::success(0.8, 0.1);
        assert_eq!(s.success_rate, 1.0);
        assert_eq!(s.damage, 0.0);
        let f = Observation::failure(0.7, 0.2);
        assert_eq!(f.success_rate, 0.0);
        assert_eq!(f.gain, 0.0);
        assert!(s.validate().is_ok());
        assert!(f.validate().is_ok());
    }

    #[test]
    fn observation_validation() {
        let bad = Observation { success_rate: 1.2, gain: 0.5, damage: 0.5, cost: 0.5 };
        assert!(matches!(
            bad.validate(),
            Err(TrustError::OutOfUnitRange { what: "success_rate", .. })
        ));
        let nan = Observation { success_rate: 0.5, gain: f64::NAN, damage: 0.5, cost: 0.5 };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn ewma_converges_to_constant_observation() {
        let mut rec = TrustRecord::neutral();
        let betas = ForgettingFactors::uniform(0.1);
        let obs = Observation { success_rate: 0.8, gain: 0.9, damage: 0.1, cost: 0.2 };
        for _ in 0..100 {
            rec.update(&obs, &betas);
        }
        assert!((rec.s_hat - 0.8).abs() < 1e-6);
        assert!((rec.g_hat - 0.9).abs() < 1e-6);
        assert!((rec.d_hat - 0.1).abs() < 1e-6);
        assert!((rec.c_hat - 0.2).abs() < 1e-6);
        assert_eq!(rec.interactions, 100);
    }

    #[test]
    fn single_update_matches_formula() {
        let mut rec = TrustRecord::with_priors(1.0, 0.5, 0.5, 0.5);
        rec.update(&Observation::failure(1.0, 1.0), &ForgettingFactors::uniform(0.9));
        // Ŝ = 0.9·1.0 + 0.1·0.0
        assert!((rec.s_hat - 0.9).abs() < 1e-12);
        // D̂ = 0.9·0.5 + 0.1·1.0
        assert!((rec.d_hat - 0.55).abs() < 1e-12);
    }

    #[test]
    fn beta_one_never_moves_beta_zero_jumps() {
        let mut frozen = TrustRecord::neutral();
        frozen.update(&Observation::success(1.0, 0.0), &ForgettingFactors::uniform(1.0));
        assert_eq!(frozen, TrustRecord { interactions: 1, ..TrustRecord::neutral() });

        let mut jumpy = TrustRecord::neutral();
        jumpy.update(&Observation::success(1.0, 0.0), &ForgettingFactors::uniform(0.0));
        assert_eq!(jumpy.s_hat, 1.0);
        assert_eq!(jumpy.g_hat, 1.0);
        assert_eq!(jumpy.c_hat, 0.0);
    }

    #[test]
    fn per_component_betas_are_independent() {
        let betas = ForgettingFactors { success: 1.0, gain: 0.0, damage: 0.5, cost: 0.9 };
        let mut rec = TrustRecord::neutral();
        rec.update(&Observation { success_rate: 0.0, gain: 1.0, damage: 1.0, cost: 1.0 }, &betas);
        assert_eq!(rec.s_hat, 0.5, "β=1 freezes");
        assert_eq!(rec.g_hat, 1.0, "β=0 jumps");
        assert!((rec.d_hat - 0.75).abs() < 1e-12);
        assert!((rec.c_hat - 0.55).abs() < 1e-12);
    }

    #[test]
    fn net_profit_extremes() {
        let perfect = TrustRecord::with_priors(1.0, 1.0, 1.0, 0.0);
        assert!((perfect.expected_net_profit() - 1.0).abs() < 1e-12);
        assert_eq!(perfect.trustworthiness(Normalizer::UNIT), Trustworthiness::ONE);

        let awful = TrustRecord::with_priors(0.0, 1.0, 1.0, 1.0);
        assert!((awful.expected_net_profit() + 2.0).abs() < 1e-12);
        assert_eq!(awful.trustworthiness(Normalizer::UNIT), Trustworthiness::ZERO);
    }

    #[test]
    fn priors_clamped() {
        let rec = TrustRecord::with_priors(2.0, -1.0, 0.5, 0.5);
        assert_eq!(rec.s_hat, 1.0);
        assert_eq!(rec.g_hat, 0.0);
    }

    #[test]
    fn default_is_neutral() {
        assert_eq!(TrustRecord::default(), TrustRecord::neutral());
    }

    #[test]
    fn paper_betas() {
        let b = ForgettingFactors::paper();
        assert_eq!(b.success, 0.1);
        assert_eq!(b.cost, 0.1);
    }
}
