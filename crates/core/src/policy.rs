//! Candidate-selection policies.
//!
//! The proposed model scores candidates by expected net profit (Eq. 23);
//! the evaluation compares it against two degenerate policies that existing
//! systems use: success-rate-only (Fig. 13 "first strategy") and gain-only
//! (Fig. 14 baseline, which fragment-attack trustees exploit).

use crate::record::TrustRecord;

/// A scoring rule over trust records; the candidate with the highest score
/// wins the delegation.
pub trait SelectionPolicy {
    /// Score of one candidate.
    fn score(&self, record: &TrustRecord) -> f64;

    /// Name for reports.
    fn name(&self) -> &'static str;

    /// Index of the best-scoring candidate (ties to the first).
    fn select(&self, candidates: &[TrustRecord]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, rec) in candidates.iter().enumerate() {
            let s = self.score(rec);
            match best {
                Some((_, bs)) if bs >= s => {}
                _ => best = Some((i, s)),
            }
        }
        best.map(|(i, _)| i)
    }
}

/// The proposed policy: Eq. 23, expected net profit
/// `Ŝ·Ĝ − (1−Ŝ)·D̂ − Ĉ`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxNetProfit;

impl SelectionPolicy for MaxNetProfit {
    fn score(&self, record: &TrustRecord) -> f64 {
        record.expected_net_profit()
    }

    fn name(&self) -> &'static str {
        "max-net-profit"
    }
}

/// Fig. 13 "first strategy": consider only the success rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HighestSuccessRate;

impl SelectionPolicy for HighestSuccessRate {
    fn score(&self, record: &TrustRecord) -> f64 {
        record.s_hat
    }

    fn name(&self) -> &'static str {
        "highest-success-rate"
    }
}

/// Fig. 14 baseline: consider only the gain (ignores cost, so
/// fragment-package attackers that inflate interaction cost go unnoticed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GainOnly;

impl SelectionPolicy for GainOnly {
    fn score(&self, record: &TrustRecord) -> f64 {
        record.s_hat * record.g_hat
    }

    fn name(&self) -> &'static str {
        "gain-only"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(s: f64, g: f64, d: f64, c: f64) -> TrustRecord {
        TrustRecord::with_priors(s, g, d, c)
    }

    #[test]
    fn policies_disagree_on_expensive_reliable_candidate() {
        // candidate 0: always succeeds, tiny gain, huge cost
        // candidate 1: 70% success, good gain, small cost
        let slate = [rec(1.0, 0.3, 0.0, 0.9), rec(0.7, 0.9, 0.1, 0.1)];
        assert_eq!(HighestSuccessRate.select(&slate), Some(0));
        assert_eq!(MaxNetProfit.select(&slate), Some(1));
    }

    #[test]
    fn gain_only_ignores_cost() {
        // candidate 0 gains slightly more but costs everything
        let slate = [rec(1.0, 0.9, 0.0, 1.0), rec(1.0, 0.8, 0.0, 0.0)];
        assert_eq!(GainOnly.select(&slate), Some(0), "blind to the cost");
        assert_eq!(MaxNetProfit.select(&slate), Some(1));
    }

    #[test]
    fn empty_slate() {
        assert_eq!(MaxNetProfit.select(&[]), None);
        assert_eq!(HighestSuccessRate.select(&[]), None);
        assert_eq!(GainOnly.select(&[]), None);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MaxNetProfit.name(), "max-net-profit");
        assert_eq!(HighestSuccessRate.name(), "highest-success-rate");
        assert_eq!(GainOnly.name(), "gain-only");
    }

    #[test]
    fn select_is_deterministic_on_ties() {
        let slate = [rec(0.5, 0.5, 0.5, 0.5); 3];
        assert_eq!(MaxNetProfit.select(&slate), Some(0));
    }

    #[test]
    fn policy_objects_are_usable_via_trait_objects() {
        let policies: Vec<Box<dyn SelectionPolicy>> =
            vec![Box::new(MaxNetProfit), Box::new(HighestSuccessRate), Box::new(GainOnly)];
        let slate = [rec(0.9, 0.9, 0.1, 0.1)];
        for p in &policies {
            assert_eq!(p.select(&slate), Some(0));
        }
    }
}
