//! An async command/query facade over the trust engine: the trust
//! *process* served to many concurrent requesters.
//!
//! Every API before this one drives a `&mut TrustEngine` synchronously —
//! fine for a simulation loop, wrong for anything network-facing, where
//! folding observations must not block request threads. The SIoT
//! trust-management literature treats trust computation as a **shared
//! service** queried by many autonomous objects at once; this module gives
//! the engine that shape:
//!
//! ```text
//! TrustServiceHandle ──┐                         ┌──────────────────────┐
//! TrustServiceHandle ──┼── bounded MPSC mailbox ─▶  actor thread        │
//! TrustServiceHandle ──┘   Command<P> / Query<P> │  owns TrustEngine<P,B>│
//!        (Clone + Send,                          │  drains → commit_batch│
//!         methods are async fns)                 └──────────────────────┘
//! ```
//!
//! * A [`TrustService::spawn`] takes **ownership** of an engine over any
//!   [`TrustBackend`] — including the durable
//!   [`LogBackend`](crate::log_backend::LogBackend) /
//!   [`WriteBehind`](crate::log_backend::WriteBehind) — and moves it onto a
//!   dedicated actor thread.
//! * [`TrustServiceHandle`] is `Clone + Send`; its methods are `async fn`s
//!   whose futures are plain [`std::future::Future`]s — no runtime
//!   required. Drive them with [`block_on`] (re-exported here from the
//!   vendored `futures` shim) or any executor.
//! * The **delegation session is the wire unit**: a handle
//!   [`evaluate`](TrustServiceHandle::evaluate)s a
//!   [`DelegationRequest`] inside the actor, the caller turns the
//!   [`Decision`] into an
//!   [`ActiveDelegation`](crate::delegation::ActiveDelegation) it finishes
//!   locally, and the resulting [`CompletedDelegation`] — one-shot and
//!   pre-validated by construction — travels back through
//!   [`commit`](TrustServiceHandle::commit).
//! * The actor **batches the mailbox drain**: adjacent commits in one
//!   drain fold through a single
//!   [`commit_batch_receipts`](TrustEngine::commit_batch_receipts) storage
//!   pass (one shard-routed backend pass, not one lock per wakeup), and
//!   every caller still gets its own [`DelegationReceipt`]. Queries are
//!   answered in arrival order, so a caller that awaited its commit ack
//!   always reads its own write.
//! * **Graceful shutdown**: [`TrustServiceHandle::shutdown`] (or dropping
//!   every handle) drains the mailbox, commits everything queued, flushes
//!   the backend — on a durable engine no acked commit is lost — and only
//!   then stops. [`TrustService::shutdown`] additionally hands the engine
//!   back for inspection or reuse.
//!
//! Backpressure is by bounded mailbox: once `ServiceOptions::mailbox`
//! messages are queued, submitting threads block in `send` until the actor
//! drains — the service sheds load onto its callers instead of growing an
//! unbounded queue.
//!
//! ```
//! use siot_core::prelude::*;
//! use siot_core::service::{block_on, ServiceOptions, TrustService};
//!
//! let mut engine: TrustStore<u32> = TrustStore::new();
//! let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).unwrap();
//! engine.register_task(task.clone());
//!
//! let service = TrustService::spawn(engine, ServiceOptions::default());
//! let handle = service.handle();
//!
//! block_on(async {
//!     // the session lifecycle over the wire: evaluate in the actor,
//!     // finish locally, commit the completion back
//!     let request = DelegationRequest::new(7, &task, Goal::profitable(), Context::amicable(task.id()))
//!         .with_prior(TrustRecord::with_priors(1.0, 1.0, 0.0, 0.0));
//!     let Decision::Delegate(active) = handle.delegate(request).await.unwrap() else {
//!         unreachable!("optimistic prior delegates")
//!     };
//!     let completed = active.finish(DelegationOutcome::succeeded(0.9, 0.2)).unwrap();
//!     let receipt = handle.commit(completed).await.unwrap();
//!     assert!(receipt.fulfilled);
//!     assert!(handle.trustworthiness(7, task.id()).await.unwrap().unwrap().value() > 0.5);
//! });
//!
//! let engine = service.shutdown().unwrap();
//! assert_eq!(engine.record_count(), 1);
//! ```

use crate::backend::TrustBackend;
use crate::delegation::{
    CompletedDelegation, Decision, DelegationOutcome, DelegationReceipt, DelegationRequest,
    EvaluatedDelegation,
};
use crate::error::TrustError;
use crate::record::{ForgettingFactors, TrustRecord};
use crate::store::TrustEngine;
use crate::task::{Task, TaskId};
use crate::tw::Trustworthiness;
use futures::channel::oneshot;
use std::future::Future;
use std::pin::Pin;
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError};
use std::task::{Context, Poll};
use std::thread::JoinHandle;

pub use futures::executor::block_on;

/// Construction knobs for a [`TrustService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceOptions {
    /// Forgetting factors every commit folds with — engine policy, fixed
    /// at spawn so all requesters blend history identically.
    pub betas: ForgettingFactors,
    /// Mailbox capacity (minimum 1): messages queued beyond it block the
    /// submitting thread until the actor drains.
    pub mailbox: usize,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions { betas: ForgettingFactors::figures(), mailbox: 1024 }
    }
}

/// State-mutating requests served by the actor.
enum Command<P> {
    /// Fold one finished session. Batched with adjacent commits per drain.
    Commit { completed: CompletedDelegation<P>, reply: oneshot::Sender<DelegationReceipt<P>> },
    /// The whole session in one message: the actor activates the request
    /// (committed — the decision was the caller's), validates the outcome,
    /// and folds it in the same drain batch as adjacent commits.
    Complete {
        request: DelegationRequest<P>,
        outcome: DelegationOutcome,
        reply: oneshot::Sender<Result<DelegationReceipt<P>, TrustError>>,
    },
    /// Register (or replace) a task definition in the actor's engine.
    RegisterTask { task: Task, reply: oneshot::Sender<()> },
    /// Push engine state down to stable storage.
    Flush { reply: oneshot::Sender<Result<(), TrustError>> },
    /// Drain the mailbox, flush the backend, stop the actor.
    Shutdown { reply: oneshot::Sender<Result<(), TrustError>> },
}

/// Read-only requests served by the actor.
enum Query<P> {
    /// Run the §3.3 evaluation against the actor's engine.
    Evaluate { request: DelegationRequest<P>, reply: oneshot::Sender<EvaluatedDelegation<P>> },
    /// Eq. 18 trustworthiness toward `(peer, task)`.
    Trustworthiness { peer: P, task: TaskId, reply: oneshot::Sender<Option<Trustworthiness>> },
    /// The raw record for `(peer, task)`.
    Record { peer: P, task: TaskId, reply: oneshot::Sender<Option<TrustRecord>> },
    /// Every peer with at least one record.
    KnownPeers { reply: oneshot::Sender<Vec<P>> },
    /// Every `(peer, record)` pair held for one task — a single atomic
    /// snapshot (one round trip, consistent against concurrent commits).
    TaskRecords { task: TaskId, reply: oneshot::Sender<Vec<(P, TrustRecord)>> },
}

enum Message<P> {
    Command(Command<P>),
    Query(Query<P>),
}

/// A reply obligation for one element of the pending commit batch.
enum Ack<P> {
    Commit(oneshot::Sender<DelegationReceipt<P>>),
    Complete(oneshot::Sender<Result<DelegationReceipt<P>, TrustError>>),
}

/// The future of one actor round trip: eagerly sent on creation, resolves
/// when the actor replies. [`TrustError::ServiceStopped`] if the actor is
/// gone — before the send or before the reply.
pub struct Pending<R> {
    state: PendingState<R>,
}

enum PendingState<R> {
    Waiting(oneshot::Receiver<R>),
    /// The send itself failed; the error is taken on the resolving poll.
    Failed(Option<TrustError>),
}

impl<R> Pending<R> {
    fn waiting(rx: oneshot::Receiver<R>) -> Self {
        Pending { state: PendingState::Waiting(rx) }
    }

    fn failed(err: TrustError) -> Self {
        Pending { state: PendingState::Failed(Some(err)) }
    }
}

impl<R> Future for Pending<R> {
    type Output = Result<R, TrustError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match &mut self.get_mut().state {
            PendingState::Waiting(rx) => Pin::new(rx)
                .poll(cx)
                .map(|r| r.map_err(|oneshot::Canceled| TrustError::ServiceStopped)),
            PendingState::Failed(err) => {
                Poll::Ready(Err(err.take().expect("a resolved Pending is not re-polled")))
            }
        }
    }
}

/// A cloneable, `Send` handle to a running [`TrustService`] actor.
///
/// Every method is an `async fn` (or returns a [`Pending`] future): the
/// message is sent when the future is first polled — except
/// [`submit`](Self::submit), which sends eagerly so callers can pipeline —
/// and the future resolves when the actor replies. All futures are plain
/// `std` futures; drive them with [`block_on`] or any executor.
#[derive(Debug)]
pub struct TrustServiceHandle<P> {
    tx: SyncSender<Message<P>>,
}

impl<P> Clone for TrustServiceHandle<P> {
    fn clone(&self) -> Self {
        TrustServiceHandle { tx: self.tx.clone() }
    }
}

impl<P: Copy + Ord> TrustServiceHandle<P> {
    /// Sends one message, blocking briefly if the mailbox is full.
    fn request<R>(&self, build: impl FnOnce(oneshot::Sender<R>) -> Message<P>) -> Pending<R> {
        let (tx, rx) = oneshot::channel();
        match self.tx.send(build(tx)) {
            Ok(()) => Pending::waiting(rx),
            Err(_) => Pending::failed(TrustError::ServiceStopped),
        }
    }

    /// Eagerly submits one finished session for committing and returns the
    /// receipt future — the pipelining primitive: submit a window of
    /// completions first, await the receipts after, and the actor folds
    /// them in one batched drain. [`commit`](Self::commit) is this plus the
    /// immediate await.
    pub fn submit(&self, completed: CompletedDelegation<P>) -> Pending<DelegationReceipt<P>> {
        self.request(|reply| Message::Command(Command::Commit { completed, reply }))
    }

    /// Commits one finished session and resolves to its receipt.
    pub async fn commit(
        &self,
        completed: CompletedDelegation<P>,
    ) -> Result<DelegationReceipt<P>, TrustError> {
        self.submit(completed).await
    }

    /// Runs the §3.3 evaluation of `request` against the service's engine
    /// (direct record → inference → gated referrals → prior) and resolves
    /// to the evaluated session.
    pub async fn evaluate(
        &self,
        request: DelegationRequest<P>,
    ) -> Result<EvaluatedDelegation<P>, TrustError> {
        self.request(|reply| Message::Query(Query::Evaluate { request, reply })).await
    }

    /// [`evaluate`](Self::evaluate) carried through to the §3.4 decision.
    /// The [`Delegate`](Decision::Delegate) arm holds the one-shot
    /// [`ActiveDelegation`](crate::delegation::ActiveDelegation) the caller
    /// finishes locally and [`commit`](Self::commit)s back.
    pub async fn delegate(&self, request: DelegationRequest<P>) -> Result<Decision<P>, TrustError> {
        Ok(self.evaluate(request).await?.into_decision())
    }

    /// The whole committed session in one round trip: the actor activates
    /// `request`, validates `outcome`, and folds it batched with adjacent
    /// commits. For callers whose delegation decision was already made
    /// upstream (a coordinator re-materializing reports, a feedback-only
    /// trustor).
    pub async fn complete(
        &self,
        request: DelegationRequest<P>,
        outcome: DelegationOutcome,
    ) -> Result<DelegationReceipt<P>, TrustError> {
        self.request(|reply| Message::Command(Command::Complete { request, outcome, reply }))
            .await?
    }

    /// Registers (or replaces) a task definition in the service's engine —
    /// inference needs the characteristic weights.
    pub async fn register_task(&self, task: Task) -> Result<(), TrustError> {
        self.request(|reply| Message::Command(Command::RegisterTask { task, reply })).await
    }

    /// Eq. 18 trustworthiness toward `(peer, task)`, `None` without direct
    /// experience.
    pub async fn trustworthiness(
        &self,
        peer: P,
        task: TaskId,
    ) -> Result<Option<Trustworthiness>, TrustError> {
        self.request(|reply| Message::Query(Query::Trustworthiness { peer, task, reply })).await
    }

    /// The record for `(peer, task)`, if any interaction happened.
    pub async fn record(&self, peer: P, task: TaskId) -> Result<Option<TrustRecord>, TrustError> {
        self.request(|reply| Message::Query(Query::Record { peer, task, reply })).await
    }

    /// Peers with at least one record — each exactly once, ascending.
    pub async fn known_peers(&self) -> Result<Vec<P>, TrustError> {
        self.request(|reply| Message::Query(Query::KnownPeers { reply })).await
    }

    /// Every `(peer, record)` pair held for `task`, ascending by peer —
    /// one round trip and one consistent snapshot, where a
    /// [`known_peers`](Self::known_peers)-then-[`record`](Self::record)
    /// loop would cross the mailbox once per peer and interleave with
    /// concurrent commits. The shape ranking and fleet-survey callers
    /// want.
    pub async fn task_records(&self, task: TaskId) -> Result<Vec<(P, TrustRecord)>, TrustError> {
        self.request(|reply| Message::Query(Query::TaskRecords { task, reply })).await
    }

    /// Pushes engine state down to stable storage (see
    /// [`TrustEngine::flush`]) and resolves once it is down.
    pub async fn flush(&self) -> Result<(), TrustError> {
        self.request(|reply| Message::Command(Command::Flush { reply })).await?
    }

    /// Stops the service gracefully: the actor finishes draining its
    /// mailbox (every queued commit is folded and acked), flushes the
    /// backend, then exits — on a durable engine, no acked commit is lost.
    /// Requests arriving after the drain fail with
    /// [`TrustError::ServiceStopped`].
    pub async fn shutdown(&self) -> Result<(), TrustError> {
        self.request(|reply| Message::Command(Command::Shutdown { reply })).await?
    }
}

/// A running trust service: the actor thread owning the engine, plus the
/// first [`TrustServiceHandle`]. See the [module docs](self).
#[derive(Debug)]
pub struct TrustService<P, B = crate::backend::BTreeBackend<P>> {
    handle: TrustServiceHandle<P>,
    thread: JoinHandle<TrustEngine<P, B>>,
}

impl<P, B> TrustService<P, B>
where
    P: Copy + Ord + Send + 'static,
    B: TrustBackend<P> + Send + 'static,
{
    /// Takes ownership of `engine` and moves it onto a dedicated actor
    /// thread. Register task definitions before spawning (or via
    /// [`TrustServiceHandle::register_task`]).
    pub fn spawn(engine: TrustEngine<P, B>, options: ServiceOptions) -> Self {
        let (tx, rx) = std::sync::mpsc::sync_channel(options.mailbox.max(1));
        let betas = options.betas;
        let thread = std::thread::Builder::new()
            .name("siot-trust-service".into())
            .spawn(move || actor(engine, rx, betas))
            .expect("actor thread spawns");
        TrustService { handle: TrustServiceHandle { tx }, thread }
    }

    /// A new handle to the running actor.
    pub fn handle(&self) -> TrustServiceHandle<P> {
        self.handle.clone()
    }

    /// Gracefully stops the actor ([`TrustServiceHandle::shutdown`]) and
    /// hands the engine back. If the final durable flush failed, its error
    /// is returned instead and the engine is dropped — the journal retries
    /// the flush on drop, and callers that must keep the engine on flush
    /// failure can `flush().await` through the handle first.
    pub fn shutdown(self) -> Result<TrustEngine<P, B>, TrustError> {
        let flushed = block_on(self.handle.shutdown());
        let engine = self.thread.join().map_err(|_| TrustError::WorkerPanicked)?;
        match flushed {
            // a concurrent handle already shut the actor down: the drain
            // and flush still happened, just acked to someone else
            Ok(()) | Err(TrustError::ServiceStopped) => Ok(engine),
            Err(e) => Err(e),
        }
    }
}

/// The actor loop: block on the first message, drain greedily, batch
/// adjacent commits through one `commit_batch_receipts` pass, answer
/// queries in arrival order. Exits — flushing first — on shutdown or once
/// every handle is gone; either way the engine is returned to
/// [`TrustService::shutdown`]'s `join`.
fn actor<P: Copy + Ord, B: TrustBackend<P>>(
    mut engine: TrustEngine<P, B>,
    rx: Receiver<Message<P>>,
    betas: ForgettingFactors,
) -> TrustEngine<P, B> {
    let mut pending: Vec<CompletedDelegation<P>> = Vec::new();
    let mut acks: Vec<Ack<P>> = Vec::new();
    'serve: loop {
        let Ok(first) = rx.recv() else {
            // every handle dropped: nothing is queued (recv only errs on
            // empty + disconnected) — flush best-effort and stop
            let _ = engine.flush();
            break 'serve;
        };
        let mut next = Some(first);
        let mut stop: Vec<oneshot::Sender<Result<(), TrustError>>> = Vec::new();
        // one drain: the blocking message plus everything already queued
        loop {
            match next.take() {
                Some(Message::Command(cmd)) => match cmd {
                    Command::Commit { completed, reply } => {
                        pending.push(completed);
                        acks.push(Ack::Commit(reply));
                    }
                    Command::Complete { request, outcome, reply } => {
                        // activation against current state: for a committed
                        // session the evaluation gates nothing and the fold
                        // depends only on outcome + context, so joining the
                        // batch is exactly sequential semantics
                        match request.activate(&engine).finish(outcome) {
                            Ok(completed) => {
                                pending.push(completed);
                                acks.push(Ack::Complete(reply));
                            }
                            Err(e) => {
                                let _ = reply.send(Err(e));
                            }
                        }
                    }
                    Command::RegisterTask { task, reply } => {
                        engine.register_task(task);
                        let _ = reply.send(());
                    }
                    Command::Flush { reply } => {
                        flush_batch(&mut engine, &mut pending, &mut acks, &betas);
                        let _ = reply.send(engine.flush());
                    }
                    Command::Shutdown { reply } => stop.push(reply),
                },
                Some(Message::Query(query)) => {
                    // strict arrival order: queued commits fold before the
                    // query is answered, so awaited writes are always read
                    flush_batch(&mut engine, &mut pending, &mut acks, &betas);
                    match query {
                        Query::Evaluate { request, reply } => {
                            let _ = reply.send(request.evaluate(&engine));
                        }
                        Query::Trustworthiness { peer, task, reply } => {
                            let _ = reply.send(engine.trustworthiness(peer, task));
                        }
                        Query::Record { peer, task, reply } => {
                            let _ = reply.send(engine.record(peer, task));
                        }
                        Query::KnownPeers { reply } => {
                            let _ = reply.send(engine.known_peers());
                        }
                        Query::TaskRecords { task, reply } => {
                            let records = engine
                                .known_peers()
                                .into_iter()
                                .filter_map(|peer| engine.record(peer, task).map(|rec| (peer, rec)))
                                .collect();
                            let _ = reply.send(records);
                        }
                    }
                }
                None => {}
            }
            match rx.try_recv() {
                Ok(msg) => next = Some(msg),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        // the drain's accumulated commit batch: one storage pass, receipts
        // fanned back out per caller
        flush_batch(&mut engine, &mut pending, &mut acks, &betas);
        if !stop.is_empty() {
            let flushed = engine.flush();
            for reply in stop {
                let _ = reply.send(flushed.clone());
            }
            break 'serve;
        }
    }
    engine
}

/// Folds the pending commit batch in one storage pass and acks every
/// submitter with its receipt.
fn flush_batch<P: Copy + Ord, B: TrustBackend<P>>(
    engine: &mut TrustEngine<P, B>,
    pending: &mut Vec<CompletedDelegation<P>>,
    acks: &mut Vec<Ack<P>>,
    betas: &ForgettingFactors,
) {
    if pending.is_empty() {
        return;
    }
    let receipts = engine.commit_batch_receipts(std::mem::take(pending), betas);
    for (ack, receipt) in acks.drain(..).zip(receipts) {
        match ack {
            Ack::Commit(reply) => {
                let _ = reply.send(receipt);
            }
            Ack::Complete(reply) => {
                let _ = reply.send(Ok(receipt));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ShardedBackend;
    use crate::context::Context;
    use crate::goal::Goal;
    use crate::record::Observation;
    use crate::store::TrustStore;
    use crate::task::CharacteristicId;

    fn task(id: u32) -> Task {
        Task::uniform(TaskId(id), [CharacteristicId(0)]).unwrap()
    }

    fn committed_request(peer: u32, t: &Task) -> DelegationRequest<u32> {
        DelegationRequest::new(peer, t, Goal::ANY, Context::amicable(t.id())).committed()
    }

    #[test]
    fn session_lifecycle_over_the_wire() {
        let mut engine: TrustStore<u32> = TrustStore::new();
        let t = task(0);
        engine.register_task(t.clone());
        let service = TrustService::spawn(engine, ServiceOptions::default());
        let handle = service.handle();

        block_on(async {
            let request =
                DelegationRequest::new(7, &t, Goal::profitable(), Context::amicable(t.id()))
                    .with_prior(TrustRecord::with_priors(1.0, 1.0, 0.0, 0.0));
            let Decision::Delegate(active) = handle.delegate(request).await.unwrap() else {
                panic!("optimistic prior delegates")
            };
            let completed = active.finish(DelegationOutcome::succeeded(0.9, 0.2)).unwrap();
            let receipt = handle.commit(completed).await.unwrap();
            assert!(receipt.fulfilled);
            assert_eq!(receipt.record.interactions, 1);

            // read-your-write: the awaited commit is visible to queries
            let tw = handle.trustworthiness(7, t.id()).await.unwrap().unwrap();
            assert!(tw.value() > 0.5);
            assert_eq!(handle.known_peers().await.unwrap(), vec![7]);
            assert!(handle.record(9, t.id()).await.unwrap().is_none());
            let snapshot = handle.task_records(t.id()).await.unwrap();
            assert_eq!(snapshot.len(), 1);
            assert_eq!(snapshot[0].0, 7);
            assert_eq!(snapshot[0].1, receipt.record);
        });

        let engine = service.shutdown().unwrap();
        assert_eq!(engine.record_count(), 1);
        assert_eq!(engine.usage_log(7).responsive, 1);
    }

    #[test]
    fn complete_is_one_round_trip_and_validates() {
        let service = TrustService::spawn(TrustStore::<u32>::new(), ServiceOptions::default());
        let handle = service.handle();
        let t = task(0);
        block_on(async {
            let receipt = handle
                .complete(committed_request(3, &t), DelegationOutcome::failed(0.8, 0.3).abusive())
                .await
                .unwrap();
            assert!(!receipt.fulfilled);

            let bad = DelegationOutcome::observed(Observation {
                success_rate: f64::NAN,
                gain: 0.0,
                damage: 0.0,
                cost: 0.0,
            });
            let err = handle.complete(committed_request(3, &t), bad).await.unwrap_err();
            assert!(matches!(err, TrustError::OutOfUnitRange { .. }));
        });
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.record(3, t.id()).unwrap().interactions, 1, "invalid outcome not folded");
        assert_eq!(engine.usage_log(3).abusive, 1);
    }

    #[test]
    fn pipelined_submissions_match_sequential_commits() {
        let t = task(0);
        let betas = ServiceOptions::default().betas;
        let outcomes: Vec<(u32, f64)> =
            (0..200u32).map(|i| (i % 9, (i % 7) as f64 / 6.0)).collect();

        // reference: the same stream folded synchronously
        let mut reference: TrustStore<u32> = TrustStore::new();
        for &(peer, q) in &outcomes {
            let scratch: TrustStore<u32> = TrustStore::new();
            let completed = committed_request(peer, &t)
                .activate(&scratch)
                .finish(DelegationOutcome::succeeded(q, 0.1))
                .unwrap();
            reference.commit(completed, &betas);
        }

        let service = TrustService::spawn(TrustStore::<u32>::new(), ServiceOptions::default());
        let handle = service.handle();
        let scratch: TrustStore<u32> = TrustStore::new();
        let pending: Vec<_> = outcomes
            .iter()
            .map(|&(peer, q)| {
                let completed = committed_request(peer, &t)
                    .activate(&scratch)
                    .finish(DelegationOutcome::succeeded(q, 0.1))
                    .unwrap();
                handle.submit(completed)
            })
            .collect();
        for p in pending {
            block_on(p).unwrap();
        }
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.record_count(), reference.record_count());
        for peer in reference.known_peers() {
            assert_eq!(engine.record(peer, t.id()), reference.record(peer, t.id()));
            assert_eq!(engine.usage_log(peer), reference.usage_log(peer));
        }
    }

    #[test]
    fn concurrent_handles_commit_through_a_sharded_backend() {
        let engine: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        let service = TrustService::spawn(engine, ServiceOptions::default());
        let t = task(0);
        std::thread::scope(|scope| {
            for worker in 0..4u32 {
                let handle = service.handle();
                let t = t.clone();
                scope.spawn(move || {
                    for i in 0..50u32 {
                        let peer = worker * 1000 + i;
                        block_on(handle.complete(
                            committed_request(peer, &t),
                            DelegationOutcome::succeeded(0.8, 0.1),
                        ))
                        .unwrap();
                    }
                });
            }
        });
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.record_count(), 200);
        assert_eq!(engine.known_peers().len(), 200);
    }

    #[test]
    fn requests_after_shutdown_fail_typed() {
        let service = TrustService::spawn(TrustStore::<u32>::new(), ServiceOptions::default());
        let handle = service.handle();
        let spare = handle.clone();
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.record_count(), 0);
        block_on(async {
            assert_eq!(spare.known_peers().await.unwrap_err(), TrustError::ServiceStopped);
            assert_eq!(handle.flush().await.unwrap_err(), TrustError::ServiceStopped);
            let t = task(0);
            let scratch: TrustStore<u32> = TrustStore::new();
            let completed = committed_request(1, &t)
                .activate(&scratch)
                .finish(DelegationOutcome::succeeded(0.5, 0.1))
                .unwrap();
            assert_eq!(spare.commit(completed).await.unwrap_err(), TrustError::ServiceStopped);
        });
    }

    #[test]
    fn dropping_every_handle_stops_the_actor() {
        let service = TrustService::spawn(TrustStore::<u32>::new(), ServiceOptions::default());
        let t = task(0);
        let handle = service.handle();
        block_on(handle.complete(committed_request(2, &t), DelegationOutcome::succeeded(0.9, 0.1)))
            .unwrap();
        drop(handle);
        // TrustService::shutdown still works: its own handle is the last one
        let engine = service.shutdown().unwrap();
        assert_eq!(engine.record(2, t.id()).unwrap().interactions, 1);
    }

    #[test]
    fn register_task_enables_inference_queries() {
        let service = TrustService::spawn(TrustStore::<u32>::new(), ServiceOptions::default());
        let handle = service.handle();
        let gps = task(0);
        let image = Task::uniform(TaskId(1), [CharacteristicId(1)]).unwrap();
        let combined =
            Task::uniform(TaskId(2), [CharacteristicId(0), CharacteristicId(1)]).unwrap();
        block_on(async {
            handle.register_task(gps.clone()).await.unwrap();
            handle.register_task(image.clone()).await.unwrap();
            for t in [&gps, &image] {
                handle
                    .complete(committed_request(5, t), DelegationOutcome::succeeded(1.0, 0.0))
                    .await
                    .unwrap();
            }
            let evaluated = handle
                .evaluate(DelegationRequest::new(
                    5,
                    &combined,
                    Goal::profitable(),
                    Context::amicable(combined.id()),
                ))
                .await
                .unwrap();
            assert_eq!(evaluated.basis(), crate::delegation::EvaluationBasis::Inferred);
            assert!(evaluated.would_delegate());
        });
        service.shutdown().unwrap();
    }
}
