//! # siot-core — a comprehensive trust model for the Social IoT
//!
//! Implementation of the trust model of *Lin & Dong, "Clarifying Trust in
//! Social Internet of Things"*. Trust is modelled as a **process** with six
//! ingredients — trustor, trustee, goal, trustworthiness evaluation,
//! decision/action/result, and context — rather than a single scalar.
//!
//! The crate is organized around the paper's five clarifications:
//!
//! | Paper section | Module |
//! |---|---|
//! | §4.1 mutuality of trustor and trustee (Eq. 1) | [`mutuality`] |
//! | §4.2 inferential transfer with analogous tasks (Eqs. 2–4) | [`infer`], [`task`] |
//! | §4.3 transitivity of trust (Eqs. 5–17) | [`transitivity`] |
//! | §4.4 trustworthiness updated with delegation results (Eqs. 18–24) | [`record`], [`evaluate`], [`policy`] |
//! | §4.5 trustworthiness in dynamic environments (Eqs. 25–29) | [`environment`] |
//!
//! Trust *state* lives behind the [`store::TrustEngine`] facade, whose
//! storage is pluggable via [`backend::TrustBackend`]: the deterministic
//! [`backend::BTreeBackend`] (the `TrustStore` default) or the lock-sharded
//! [`backend::ShardedBackend`] for high-peer-count workloads.
//!
//! The model is deliberately **pure**: no RNG, no I/O, no graph — those live
//! in `siot-sim` and `siot-iot`. Everything here is deterministic arithmetic
//! on explicit state, which makes the invariants easy to property-test.
//!
//! ```
//! use siot_core::prelude::*;
//!
//! // A trustor's view of one trustee on one task:
//! let mut rec = TrustRecord::optimistic();
//! let betas = ForgettingFactors::uniform(0.1);
//! // the trustee succeeds, yielding high gain at moderate cost
//! rec.update(&Observation { success_rate: 1.0, gain: 0.9, damage: 0.1, cost: 0.2 }, &betas);
//! let tw = rec.trustworthiness(Normalizer::UNIT);
//! assert!(tw.value() > 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod baselines;
pub mod context;
pub mod environment;
pub mod error;
pub mod evaluate;
pub mod goal;
pub mod infer;
pub mod mutuality;
pub mod policy;
pub mod record;
pub mod store;
pub mod task;
pub mod transitivity;
pub mod tw;

/// One-stop import for the common types.
pub mod prelude {
    pub use crate::backend::{BTreeBackend, ConcurrentTrustBackend, ShardedBackend, TrustBackend};
    pub use crate::context::Context;
    pub use crate::environment::EnvIndicator;
    pub use crate::error::TrustError;
    pub use crate::evaluate::{net_profit, prefers_delegation, trustee_decision, TrusteeDecision};
    pub use crate::goal::Goal;
    pub use crate::infer::{infer_characteristic, infer_task, Experience};
    pub use crate::mutuality::{ReverseEvaluator, UsageLog};
    pub use crate::policy::{GainOnly, HighestSuccessRate, MaxNetProfit, SelectionPolicy};
    pub use crate::record::{ForgettingFactors, Observation, TrustRecord};
    pub use crate::store::{TrustEngine, TrustStore};
    pub use crate::task::{CharacteristicId, Task, TaskId};
    pub use crate::transitivity::{chain, traditional_chain, two_hop, TransitivityGates};
    pub use crate::tw::{Normalizer, Trustworthiness};
}
