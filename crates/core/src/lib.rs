//! # siot-core — a comprehensive trust model for the Social IoT
//!
//! Implementation of the trust model of *Lin & Dong, "Clarifying Trust in
//! Social Internet of Things"*. Trust is modelled as a **process** with six
//! ingredients — trustor, trustee, goal, trustworthiness evaluation,
//! decision/action/result, and context — rather than a single scalar.
//!
//! The crate is organized around the paper's five clarifications, plus the
//! process itself:
//!
//! | Paper section | Module |
//! |---|---|
//! | §3.2–§3.4 the six-ingredient trust *process* as a delegation lifecycle | [`delegation`], [`goal`], [`context`] |
//! | §4.1 mutuality of trustor and trustee (Eq. 1) | [`mutuality`] |
//! | §4.2 inferential transfer with analogous tasks (Eqs. 2–4) | [`infer`], [`task`] |
//! | §4.3 transitivity of trust (Eqs. 5–17) | [`transitivity`] |
//! | §4.4 trustworthiness updated with delegation results (Eqs. 18–24) | [`record`], [`evaluate`], [`policy`] |
//! | §4.5 trustworthiness in dynamic environments (Eqs. 25–29) | [`environment`] |
//! | the process served to concurrent requesters (async facade) | [`service`] |
//! | the service federated across processes (TCP wire protocol) | [`service::remote`], [`framing`] |
//!
//! Trust *state* lives behind the [`store::TrustEngine`] facade, whose
//! storage is pluggable via [`backend::TrustBackend`]: the deterministic
//! [`backend::BTreeBackend`] (the `TrustStore` default), the lock-sharded
//! [`backend::ShardedBackend`] for high-peer-count workloads (with the
//! shard-affine [`pool::ObserverPool`] folding batches through persistent
//! lane-owning workers, bit-identically to sequential folding), or the
//! durable [`log_backend::LogBackend`] / [`log_backend::WriteBehind`] —
//! an append-only checksummed record log with snapshot compaction and
//! replay-on-open recovery, so trust state survives restarts. Live
//! interactions flow through the
//! [`delegation`] session — `delegate → evaluate → decide → execute` — so
//! feedback is validated, environment-corrected and counted exactly once;
//! the engine's free-form mutators remain as a documented raw escape hatch.
//! For network-facing deployments, [`service::TrustService`] moves the
//! engine onto an actor thread behind a cloneable async
//! [`service::TrustServiceHandle`], so many concurrent requesters share one
//! engine without blocking each other — commits batched per mailbox drain,
//! shutdown draining and flushing so no acked commit is lost. When one
//! actor becomes the bottleneck, [`service::ShardedTrustService`] partitions
//! the engine across N actors by a stable hash of the trustee, behind one
//! routing [`service::ShardedTrustServiceHandle`] with fan-out/merge
//! broadcast queries. Either tier can then be **federated**:
//! [`service::RemoteTrustServer`] exposes a running service over TCP (CRC-32
//! framed via the shared [`framing`] codec, every real as its IEEE-754 bits)
//! and [`service::RemoteTrustServiceHandle`] mirrors the whole handle API
//! from another process, pipelined, with epoch-stamped
//! [`service::Cut`] replies carrying aligned-freshness consistency across
//! the wire.
//!
//! The model is deliberately **pure**: no RNG, no I/O, no graph — those live
//! in `siot-sim` and `siot-iot`. Everything here is deterministic arithmetic
//! on explicit state, which makes the invariants easy to property-test.
//!
//! ```
//! use siot_core::prelude::*;
//!
//! // One delegation, end to end. The trustor's engine:
//! let mut engine: TrustStore<u32> = TrustStore::new();
//! let task = Task::uniform(TaskId(0), [CharacteristicId(0)]).unwrap();
//! let goal = Goal::profitable();
//!
//! // evaluate → decide: a stranger is explored under a best-case prior
//! // (the paper initializes expectations at their optimum, §5.7)
//! let session = engine
//!     .delegate(7, &task, goal, Context::amicable(task.id()))
//!     .with_prior(TrustRecord::with_priors(1.0, 1.0, 0.0, 0.0))
//!     .evaluate(&engine);
//! let Decision::Delegate(active) = session.into_decision() else { unreachable!() };
//!
//! // act + result → post-evaluation feedback, folded exactly once
//! let receipt = active
//!     .execute(&mut engine, DelegationOutcome::succeeded(0.9, 0.2), &ForgettingFactors::figures())
//!     .unwrap();
//! assert!(receipt.fulfilled);
//! assert!(engine.trustworthiness(7, task.id()).unwrap().value() > 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod baselines;
pub mod context;
pub mod delegation;
pub mod environment;
pub mod error;
pub mod evaluate;
pub mod framing;
pub mod goal;
pub mod infer;
pub mod log;
pub mod log_backend;
pub mod mutuality;
pub mod policy;
pub mod pool;
pub mod record;
pub mod service;
pub mod store;
pub mod task;
pub mod transitivity;
pub mod tw;

/// One-stop import for the common types.
pub mod prelude {
    pub use crate::backend::{BTreeBackend, ConcurrentTrustBackend, ShardedBackend, TrustBackend};
    pub use crate::context::Context;
    pub use crate::delegation::{
        ActiveDelegation, CompletedDelegation, Decision, DeclineReason, DelegationOutcome,
        DelegationReceipt, DelegationRequest, EvaluatedDelegation, EvaluationBasis, Referral,
        ResourceUse,
    };
    pub use crate::environment::EnvIndicator;
    pub use crate::error::TrustError;
    pub use crate::evaluate::{net_profit, prefers_delegation, trustee_decision, TrusteeDecision};
    pub use crate::goal::Goal;
    pub use crate::infer::{infer_characteristic, infer_task, Experience};
    pub use crate::log_backend::{FsyncPolicy, LogBackend, LogKey, LogOptions, WriteBehind};
    pub use crate::mutuality::{ReverseEvaluator, UsageLog};
    pub use crate::policy::{GainOnly, HighestSuccessRate, MaxNetProfit, SelectionPolicy};
    pub use crate::pool::{Dispatch, ObserverPool};
    pub use crate::record::{ForgettingFactors, Observation, TrustRecord};
    pub use crate::service::{
        Cut, DedupWindow, Fault, FaultPlan, FaultProxy, FleetCut, FleetOptions, FleetTrustHandle,
        Freshness, NodeStats, ReadSnapshot, RemoteTrustServer, RemoteTrustServiceHandle,
        ReplicaHandle, ServiceEndpoint, ServiceOptions, ShardStats, ShardedTrustService,
        ShardedTrustServiceHandle, TrustService, TrustServiceHandle,
    };
    pub use crate::store::{DurableTrustStore, TrustEngine, TrustStore};
    pub use crate::task::{CharacteristicId, Task, TaskId};
    pub use crate::transitivity::{chain, traditional_chain, two_hop, TransitivityGates};
    pub use crate::tw::{Normalizer, Trustworthiness};
}
