//! Trustworthiness in dynamic environments (§4.5, Eqs. 25–29).
//!
//! The same agent performs differently in hostile and amicable conditions.
//! To keep trustworthiness tracking the agent's *competence* rather than
//! the weather, the observed outcome is passed through the removal function
//! `r(·)` before the EWMA update: Eq. 29 divides by the **worst**
//! environment indicator along the interaction (Cannikin / wooden-bucket
//! law), so succeeding in a hostile environment earns extra credit.

use crate::error::TrustError;
use crate::record::{ForgettingFactors, Observation, TrustRecord};

/// An instantaneous environment indicator in `(0, 1]`:
/// 1 = perfectly amicable, →0 = hostile.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct EnvIndicator(f64);

impl EnvIndicator {
    /// The perfectly amicable environment.
    pub const AMICABLE: EnvIndicator = EnvIndicator(1.0);

    /// Validates `e ∈ (0, 1]`.
    pub fn new(e: f64) -> Result<Self, TrustError> {
        if e > 0.0 && e <= 1.0 {
            Ok(EnvIndicator(e))
        } else {
            Err(TrustError::BadEnvironment(e))
        }
    }

    /// Clamps into `(0, 1]` with a small positive floor.
    pub fn saturating(e: f64) -> Self {
        EnvIndicator(e.clamp(1e-6, 1.0))
    }

    /// The inner value.
    pub fn value(self) -> f64 {
        self.0
    }
}

/// The Cannikin aggregation of Eq. 29: the *smallest* indicator among the
/// trustor's, the trustee's, and every intermediate node's environments
/// dominates.
pub fn cannikin(envs: &[EnvIndicator]) -> EnvIndicator {
    envs.iter()
        .copied()
        .min_by(|a, b| a.partial_cmp(b).expect("indicators are never NaN"))
        .unwrap_or(EnvIndicator::AMICABLE)
}

/// Alternative aggregation (mean) — the ablation bench compares it against
/// the paper's Cannikin choice.
pub fn mean_env(envs: &[EnvIndicator]) -> EnvIndicator {
    if envs.is_empty() {
        return EnvIndicator::AMICABLE;
    }
    let m = envs.iter().map(|e| e.value()).sum::<f64>() / envs.len() as f64;
    EnvIndicator::saturating(m)
}

/// Eq. 29: `r(E_X, E_Y, {E_i}, x) = x / min[E_X, E_Y, {E_i}]`, clamped to
/// `[0, 1]` so a success in a hostile environment maxes out credit instead
/// of exceeding the valid range.
pub fn remove_influence(observed: f64, envs: &[EnvIndicator]) -> f64 {
    (observed / cannikin(envs).value()).clamp(0.0, 1.0)
}

/// Eqs. 25–28: environment-aware EWMA update. Each observed component is
/// passed through [`remove_influence`] before blending.
pub fn update_with_environment(
    record: &mut TrustRecord,
    obs: &Observation,
    envs: &[EnvIndicator],
    betas: &ForgettingFactors,
) {
    let adjusted = Observation {
        success_rate: remove_influence(obs.success_rate, envs),
        gain: remove_influence(obs.gain, envs),
        damage: remove_influence(obs.damage, envs),
        cost: remove_influence(obs.cost, envs),
    };
    record.update(&adjusted, betas);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(v: f64) -> EnvIndicator {
        EnvIndicator::new(v).unwrap()
    }

    #[test]
    fn indicator_validation() {
        assert!(EnvIndicator::new(0.0).is_err());
        assert!(EnvIndicator::new(-0.5).is_err());
        assert!(EnvIndicator::new(1.1).is_err());
        assert!(EnvIndicator::new(f64::NAN).is_err());
        assert_eq!(EnvIndicator::new(1.0).unwrap().value(), 1.0);
        assert_eq!(EnvIndicator::saturating(-3.0).value(), 1e-6);
        assert_eq!(EnvIndicator::saturating(2.0).value(), 1.0);
    }

    #[test]
    fn cannikin_takes_the_minimum() {
        assert_eq!(cannikin(&[e(0.9), e(0.4), e(0.7)]).value(), 0.4);
        assert_eq!(cannikin(&[]).value(), 1.0, "no information means amicable");
    }

    #[test]
    fn mean_env_averages() {
        assert!((mean_env(&[e(0.4), e(0.8)]).value() - 0.6).abs() < 1e-12);
        assert_eq!(mean_env(&[]).value(), 1.0);
    }

    #[test]
    fn paper_fig15_arithmetic() {
        // S = 0.8 observed under E = 0.4: the *perceived* success rate is
        // 0.8·0.4 = 0.32; removal reconstructs 0.32/0.4 = 0.8.
        let perceived = 0.8 * 0.4;
        let corrected = remove_influence(perceived, &[e(0.4), e(0.4)]);
        assert!((corrected - 0.8).abs() < 1e-12);
    }

    #[test]
    fn removal_clamps_at_one() {
        // succeeding fully in a hostile environment cannot exceed 1
        assert_eq!(remove_influence(0.9, &[e(0.3)]), 1.0);
    }

    #[test]
    fn amicable_environment_is_identity() {
        for x in [0.0, 0.3, 0.7, 1.0] {
            assert_eq!(remove_influence(x, &[EnvIndicator::AMICABLE]), x);
        }
    }

    #[test]
    fn env_aware_update_tracks_competence_not_weather() {
        let betas = ForgettingFactors::paper();
        let competence = 0.8;
        let hostile = [e(0.4), e(0.4)];

        // Proposed: env-aware updates converge to the competence 0.8 even
        // though observations are degraded to 0.32.
        let mut proposed = TrustRecord::optimistic();
        // Traditional: plain updates converge to the degraded 0.32.
        let mut traditional = TrustRecord::optimistic();

        for _ in 0..200 {
            let observed =
                Observation { success_rate: competence * 0.4, gain: 0.5, damage: 0.0, cost: 0.0 };
            update_with_environment(&mut proposed, &observed, &hostile, &betas);
            traditional.update(&observed, &betas);
        }
        assert!((proposed.s_hat - 0.8).abs() < 1e-3, "proposed: {}", proposed.s_hat);
        assert!((traditional.s_hat - 0.32).abs() < 1e-3, "traditional: {}", traditional.s_hat);
    }

    #[test]
    fn intermediates_participate_in_cannikin() {
        // trustor and trustee fine, but one relay in a hostile spot
        let envs = [e(1.0), e(1.0), e(0.25)];
        assert_eq!(cannikin(&envs).value(), 0.25);
        assert_eq!(remove_influence(0.2, &envs), 0.8);
    }
}
