//! The goal ingredient (§3.2/§3.4).
//!
//! The trustor delegates because it pursues a goal; §3.4 formalizes the
//! decision as *"if the expected result is aligned with the goal, e.g.
//! R̂_{X←Y}(τ) ⊆ Goal_X, trustor X delegates trustee Y"*. A goal here is a
//! box of acceptable outcomes in (gain, damage, cost, success) space; a
//! record's expectations are aligned when they fall inside the box.

use crate::record::TrustRecord;

/// The trustor's goal: bounds the outcomes it is willing to accept.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Goal {
    /// Minimum acceptable expected success rate.
    pub min_success: f64,
    /// Minimum acceptable expected gain.
    pub min_gain: f64,
    /// Maximum tolerable expected damage.
    pub max_damage: f64,
    /// Maximum tolerable expected cost.
    pub max_cost: f64,
}

impl Goal {
    /// A permissive goal: anything goes (useful as a default).
    pub const ANY: Goal = Goal { min_success: 0.0, min_gain: 0.0, max_damage: 1.0, max_cost: 1.0 };

    /// A goal that just requires positive expected net profit.
    pub fn profitable() -> Self {
        // encoded via alignment + the net-profit check in `permits`
        Goal::ANY
    }

    /// §3.4 alignment test: is the expected result inside the goal?
    pub fn aligned(&self, expectation: &TrustRecord) -> bool {
        expectation.s_hat >= self.min_success
            && expectation.g_hat >= self.min_gain
            && expectation.d_hat <= self.max_damage
            && expectation.c_hat <= self.max_cost
    }

    /// Full delegation permit: aligned *and* profitable in expectation.
    pub fn permits(&self, expectation: &TrustRecord) -> bool {
        self.aligned(expectation) && expectation.expected_net_profit() > 0.0
    }

    /// Whether an **actual** outcome fulfilled the goal
    /// (`R ⊆ Goal`; §3.4 notes the actual result may deviate —
    /// `R ⊄ Goal` — and the expectations must then be revised).
    pub fn fulfilled_by(&self, success: bool, gain: f64, damage: f64, cost: f64) -> bool {
        success && gain >= self.min_gain && damage <= self.max_damage && cost <= self.max_cost
    }
}

impl Default for Goal {
    fn default() -> Self {
        Goal::ANY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(s: f64, g: f64, d: f64, c: f64) -> TrustRecord {
        TrustRecord::with_priors(s, g, d, c)
    }

    #[test]
    fn any_goal_aligns_with_everything() {
        assert!(Goal::ANY.aligned(&rec(0.0, 0.0, 1.0, 1.0)));
        assert!(Goal::default().aligned(&rec(1.0, 1.0, 0.0, 0.0)));
    }

    #[test]
    fn alignment_checks_each_bound() {
        let goal = Goal { min_success: 0.7, min_gain: 0.5, max_damage: 0.3, max_cost: 0.4 };
        assert!(goal.aligned(&rec(0.8, 0.6, 0.2, 0.3)));
        assert!(!goal.aligned(&rec(0.6, 0.6, 0.2, 0.3)), "success too low");
        assert!(!goal.aligned(&rec(0.8, 0.4, 0.2, 0.3)), "gain too low");
        assert!(!goal.aligned(&rec(0.8, 0.6, 0.4, 0.3)), "damage too high");
        assert!(!goal.aligned(&rec(0.8, 0.6, 0.2, 0.5)), "cost too high");
    }

    #[test]
    fn permits_requires_profit_too() {
        let goal = Goal::profitable();
        // aligned but unprofitable: succeed always, gain < cost
        let aligned_unprofitable = rec(1.0, 0.2, 0.0, 0.9);
        assert!(goal.aligned(&aligned_unprofitable));
        assert!(!goal.permits(&aligned_unprofitable));
        assert!(goal.permits(&rec(0.9, 0.8, 0.1, 0.1)));
    }

    #[test]
    fn actual_results_may_fall_outside_the_goal() {
        let goal = Goal { min_success: 0.0, min_gain: 0.5, max_damage: 0.2, max_cost: 0.3 };
        assert!(goal.fulfilled_by(true, 0.7, 0.1, 0.2));
        assert!(!goal.fulfilled_by(false, 0.7, 0.1, 0.2), "failure never fulfills");
        assert!(!goal.fulfilled_by(true, 0.4, 0.1, 0.2), "side effects: low gain");
        assert!(!goal.fulfilled_by(true, 0.7, 0.3, 0.2), "side effects: damage");
    }
}
