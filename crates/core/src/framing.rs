//! The length-prefixed CRC-framed byte codec shared by the durable log and
//! the wire protocol.
//!
//! [`log_backend`](crate::log_backend) proved this frame shape on disk
//! (PR 4's crash-truncation sweep and golden fixture pin it);
//! [`service::remote`](crate::service::remote) speaks the same shape over
//! TCP. One implementation serves both so the codecs cannot drift:
//!
//! ```text
//! frame := len: u32 LE | crc32: u32 LE | payload   (crc over the payload)
//! ```
//!
//! The module deals in **payload bytes only** — what a payload means (a
//! record frame, a wire request) belongs to the consumer. Three access
//! patterns are provided:
//!
//! * In-place encoding: [`begin_frame`] reserves the 8-byte prefix in a
//!   buffer, the caller appends the payload, [`end_frame`] backpatches the
//!   length and checksum — no payload copy.
//! * Random-access decoding over a complete byte slice ([`read_frame`],
//!   [`followed_by_valid_frame`]) — the replay-on-open shape, where the
//!   whole file is in memory and a torn tail must be distinguished from
//!   mid-file corruption.
//! * Incremental decoding over a byte *stream* ([`StreamDecoder`]) — the
//!   socket shape, where frames arrive in arbitrary read-sized chunks and
//!   a malformed prefix must surface as a typed error before its claimed
//!   length can drive an allocation.
//!
//! Every reader takes an explicit `max_len`: the log's frames are tens of
//! bytes ([`log_backend`](crate::log_backend) caps at 64 KiB), while a
//! vectored wire batch legitimately runs to megabytes. A length prefix
//! above the cap is rejected as garbage without trusting it.

use crate::error::TrustError;

/// Bytes of frame prefix (`len` + `crc32`).
pub const FRAME_OVERHEAD: usize = 8;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven — no external crates in this build
// ---------------------------------------------------------------------------

// Slicing-by-8: table 0 is the classic byte-at-a-time table; table `t`
// advances a byte's contribution `t` further positions through the
// polynomial, so eight table lookups retire eight input bytes with a
// single dependency-chain step per 8-byte word instead of eight.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC-32 (IEEE 802.3) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Reserves a frame's 8-byte prefix in `out` and returns the frame's start
/// offset. Append the payload bytes, then call [`end_frame`] with the
/// returned offset to backpatch the length and checksum.
pub fn begin_frame(out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_OVERHEAD]);
    start
}

/// Backpatches the prefix of the frame started at `start`: everything
/// appended since [`begin_frame`] is the payload.
pub fn end_frame(out: &mut [u8], start: usize) {
    let payload_len = (out.len() - start - FRAME_OVERHEAD) as u32;
    let crc = crc32(&out[start + FRAME_OVERHEAD..]);
    out[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Tracks frame boundaries in a pass-through byte stream **without**
/// copying or validating payloads — the hook the fault-injection transport
/// ([`service::fault`](crate::service::fault)) uses to drop, truncate, or
/// close a connection at exact frame edges, so every injected failure is a
/// well-defined wire event rather than an arbitrary byte cut. Feed it each
/// chunk you are about to forward; it reports the offsets within the chunk
/// at which frames complete. Callers must skip any non-framed preamble
/// (e.g. the connection banner) before scanning.
#[derive(Debug, Clone, Default)]
pub struct FrameScanner {
    /// Partially-collected length prefix of the frame being entered.
    header: [u8; 4],
    /// How many of the 4 length-prefix bytes have been seen.
    header_len: usize,
    /// Bytes (crc + payload) left in the current frame; 0 means we are at
    /// a boundary, collecting the next length prefix.
    remaining: usize,
}

impl FrameScanner {
    /// A scanner positioned at a frame boundary.
    pub fn new() -> Self {
        FrameScanner::default()
    }

    /// Consumes `chunk` and returns the (exclusive) offsets within it at
    /// which a frame ends — empty if no frame completes in this chunk.
    pub fn advance(&mut self, chunk: &[u8]) -> Vec<usize> {
        let mut ends = Vec::new();
        let mut i = 0;
        while i < chunk.len() {
            if self.remaining == 0 {
                let take = (4 - self.header_len).min(chunk.len() - i);
                self.header[self.header_len..self.header_len + take]
                    .copy_from_slice(&chunk[i..i + take]);
                self.header_len += take;
                i += take;
                if self.header_len == 4 {
                    // the crc word plus the payload are still to come
                    self.remaining = u32::from_le_bytes(self.header) as usize + 4;
                    self.header_len = 0;
                }
            } else {
                let take = self.remaining.min(chunk.len() - i);
                self.remaining -= take;
                i += take;
                if self.remaining == 0 {
                    ends.push(i);
                }
            }
        }
        ends
    }

    /// Whether the scanner sits exactly at a frame boundary (no frame in
    /// progress).
    pub fn at_boundary(&self) -> bool {
        self.remaining == 0 && self.header_len == 0
    }
}

// ---------------------------------------------------------------------------
// Random-access decoding (whole slice in memory)
// ---------------------------------------------------------------------------

/// One step of random-access frame reading.
pub enum RawFrame<'a> {
    /// A checksum-valid frame: its payload and the offset of the next one.
    Frame {
        /// The frame's payload bytes.
        payload: &'a [u8],
        /// Offset of the byte after this frame.
        next: usize,
    },
    /// Clean end of data (exactly at a frame boundary).
    End,
    /// Torn, oversized, or checksum-failing bytes at this offset.
    Invalid,
}

/// Reads the frame at `off` in `data`. A length prefix above `max_len` is
/// [`RawFrame::Invalid`] — garbage is rejected before its claimed length
/// can drive an allocation or hide the bytes behind it.
pub fn read_frame(data: &[u8], off: usize, max_len: u32) -> RawFrame<'_> {
    if off == data.len() {
        return RawFrame::End;
    }
    if data.len() - off < FRAME_OVERHEAD {
        return RawFrame::Invalid;
    }
    let len = u32::from_le_bytes(data[off..off + 4].try_into().expect("8 bytes checked"));
    if len > max_len || data.len() - off - FRAME_OVERHEAD < len as usize {
        return RawFrame::Invalid;
    }
    let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().expect("8 bytes checked"));
    let payload = &data[off + FRAME_OVERHEAD..off + FRAME_OVERHEAD + len as usize];
    if crc32(payload) != crc {
        return RawFrame::Invalid;
    }
    RawFrame::Frame { payload, next: off + FRAME_OVERHEAD + len as usize }
}

/// Whether a well-formed frame (checksum-valid **and** accepted by
/// `valid_payload`) exists anywhere after the invalid bytes at `off` — the
/// test that separates a torn tail (recoverable) from mid-stream corruption
/// (not). A torn append can only lose a *suffix*, so any valid frame past
/// the damage means corruption. The scan tries every alignment rather than
/// trusting the damaged frame's length prefix: a bit flip in the length
/// field itself must not hide the valid frames behind it (they would be
/// silently truncated otherwise).
pub fn followed_by_valid_frame(
    data: &[u8],
    off: usize,
    max_len: u32,
    mut valid_payload: impl FnMut(&[u8]) -> bool,
) -> bool {
    // a tear is at most one in-flight frame; more trailing data than the
    // largest legal frame cannot be a crash artifact (bounds the scan too)
    if data.len() - off > max_len as usize + FRAME_OVERHEAD {
        return true;
    }
    // a frame needs 8 prefix bytes + a non-empty payload
    (off + 1..data.len().saturating_sub(FRAME_OVERHEAD)).any(|cand| {
        matches!(read_frame(data, cand, max_len),
                 RawFrame::Frame { payload, .. } if valid_payload(payload))
    })
}

// ---------------------------------------------------------------------------
// Incremental decoding (byte stream)
// ---------------------------------------------------------------------------

/// An incremental frame decoder for byte streams (sockets): feed it chunks
/// of whatever size the transport delivers, pop complete payloads out.
/// Malformed input — an oversized length prefix, a checksum mismatch — is a
/// typed [`TrustError::Corrupt`], never a panic or a runaway allocation;
/// once an error is returned the decoder stays in the failed state (a byte
/// stream cannot be resynchronized after framing is lost).
#[derive(Debug)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` — compacted away once it outgrows the live
    /// bytes, so the buffer does not grow with the stream.
    start: usize,
    /// Total bytes consumed over the decoder's lifetime (error offsets).
    consumed: u64,
    max_len: u32,
    poisoned: bool,
}

impl StreamDecoder {
    /// A decoder rejecting frames whose payload exceeds `max_len` bytes.
    pub fn new(max_len: u32) -> Self {
        StreamDecoder { buf: Vec::new(), start: 0, consumed: 0, max_len, poisoned: false }
    }

    /// Appends a chunk of stream bytes.
    pub fn extend(&mut self, chunk: &[u8]) {
        if self.start > self.buf.len().saturating_sub(self.start) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete payload: `Ok(None)` means more bytes are
    /// needed, `Err` means the stream is no longer frame-aligned.
    pub fn next_payload(&mut self) -> Result<Option<Vec<u8>>, TrustError> {
        self.next_payload_with(<[u8]>::to_vec)
    }

    /// Zero-copy variant of [`Self::next_payload`]: the checksum-verified payload
    /// is handed to `f` **in place** in the stream buffer, and only `f`'s
    /// result leaves the call. Hot readers decode straight out of the
    /// buffer instead of paying a per-frame `Vec` copy.
    pub fn next_payload_with<T>(
        &mut self,
        f: impl FnOnce(&[u8]) -> T,
    ) -> Result<Option<T>, TrustError> {
        if self.poisoned {
            return Err(self.corrupt("wire frame after failure"));
        }
        let live = &self.buf[self.start..];
        if live.len() < FRAME_OVERHEAD {
            return Ok(None);
        }
        let len = u32::from_le_bytes(live[..4].try_into().expect("length checked"));
        if len > self.max_len {
            self.poisoned = true;
            return Err(self.corrupt("wire frame length"));
        }
        if live.len() - FRAME_OVERHEAD < len as usize {
            return Ok(None);
        }
        let crc = u32::from_le_bytes(live[4..8].try_into().expect("length checked"));
        let payload = &live[FRAME_OVERHEAD..FRAME_OVERHEAD + len as usize];
        if crc32(payload) != crc {
            self.poisoned = true;
            return Err(self.corrupt("wire frame checksum"));
        }
        let value = f(payload);
        self.start += FRAME_OVERHEAD + len as usize;
        self.consumed += (FRAME_OVERHEAD + len as usize) as u64;
        Ok(Some(value))
    }

    /// Bytes buffered but not yet consumed as complete frames — nonzero at
    /// end-of-stream means the peer died mid-frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    fn corrupt(&self, what: &'static str) -> TrustError {
        TrustError::Corrupt { what, offset: self.consumed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            let start = begin_frame(&mut out);
            out.extend_from_slice(p);
            end_frame(&mut out, start);
        }
        out
    }

    #[test]
    fn crc_matches_known_vector() {
        // the classic IEEE check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_random_access() {
        let data = framed(&[b"alpha", b"", b"gamma-longer-payload"]);
        let mut off = 0;
        let mut seen: Vec<Vec<u8>> = Vec::new();
        loop {
            match read_frame(&data, off, 1 << 10) {
                RawFrame::Frame { payload, next } => {
                    seen.push(payload.to_vec());
                    off = next;
                }
                RawFrame::End => break,
                RawFrame::Invalid => panic!("clean data must replay"),
            }
        }
        assert_eq!(seen, vec![b"alpha".to_vec(), b"".to_vec(), b"gamma-longer-payload".to_vec()]);
    }

    #[test]
    fn oversized_length_is_invalid_not_allocated() {
        let mut data = framed(&[b"ok"]);
        // a frame claiming u32::MAX bytes
        data.extend_from_slice(&u32::MAX.to_le_bytes());
        data.extend_from_slice(&[0u8; 4]);
        match read_frame(&data, 10, 1 << 10) {
            RawFrame::Invalid => {}
            _ => panic!("oversized length must be invalid"),
        }
    }

    #[test]
    fn torn_tail_vs_mid_stream_corruption() {
        let data = framed(&[b"first", b"second"]);
        let cut = data.len() - 3; // tear inside the last frame
        assert!(matches!(read_frame(&data[..cut], 13, 1 << 10), RawFrame::Invalid));
        assert!(!followed_by_valid_frame(&data[..cut], 13, 1 << 10, |_| true), "torn tail");
        // damage the *first* frame: the intact second frame proves corruption
        let mut bad = data.clone();
        bad[9] ^= 0x40;
        assert!(matches!(read_frame(&bad, 0, 1 << 10), RawFrame::Invalid));
        assert!(followed_by_valid_frame(&bad, 0, 1 << 10, |_| true), "mid-stream corruption");
    }

    #[test]
    fn stream_decoder_reassembles_byte_dribble() {
        let data = framed(&[b"alpha", b"beta"]);
        let mut dec = StreamDecoder::new(1 << 10);
        let mut seen = Vec::new();
        for b in &data {
            dec.extend(&[*b]);
            while let Some(p) = dec.next_payload().unwrap() {
                seen.push(p);
            }
        }
        assert_eq!(seen, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn stream_decoder_types_bad_length_and_checksum() {
        let mut dec = StreamDecoder::new(16);
        dec.extend(&1024u32.to_le_bytes());
        dec.extend(&[0u8; 4]);
        let err = dec.next_payload().unwrap_err();
        assert!(matches!(err, TrustError::Corrupt { what: "wire frame length", .. }));
        // poisoned: stays failed even if more (valid-looking) bytes arrive
        dec.extend(&framed(&[b"x"]));
        assert!(dec.next_payload().is_err());

        let mut dec = StreamDecoder::new(1 << 10);
        let mut data = framed(&[b"payload"]);
        data[9] ^= 0x01;
        dec.extend(&data);
        let err = dec.next_payload().unwrap_err();
        assert!(matches!(err, TrustError::Corrupt { what: "wire frame checksum", .. }));
    }

    #[test]
    fn stream_decoder_compacts_its_buffer() {
        let mut dec = StreamDecoder::new(1 << 10);
        let frame = framed(&[&[7u8; 100]]);
        for _ in 0..1000 {
            dec.extend(&frame);
            assert_eq!(dec.next_payload().unwrap().unwrap(), vec![7u8; 100]);
        }
        assert!(dec.buf.len() < 4 * frame.len(), "buffer must not grow with the stream");
    }

    #[test]
    fn error_offsets_count_consumed_frames() {
        let mut dec = StreamDecoder::new(1 << 10);
        let good = framed(&[b"abc"]);
        dec.extend(&good);
        dec.next_payload().unwrap().unwrap();
        let mut bad = framed(&[b"def"]);
        bad[9] ^= 0x80;
        dec.extend(&bad);
        match dec.next_payload().unwrap_err() {
            TrustError::Corrupt { offset, .. } => assert_eq!(offset, good.len() as u64),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn frame_scanner_finds_boundaries_at_any_chunking() {
        let mut stream = Vec::new();
        let mut expected = Vec::new();
        for payload in [&b"alpha"[..], b"", b"a longer third payload"] {
            let start = begin_frame(&mut stream);
            stream.extend_from_slice(payload);
            end_frame(&mut stream, start);
            expected.push(stream.len());
        }
        // whole stream at once
        let mut scanner = FrameScanner::new();
        assert_eq!(scanner.advance(&stream), expected);
        assert!(scanner.at_boundary());
        // byte-at-a-time: the same boundaries, independent of chunking
        let mut scanner = FrameScanner::new();
        let mut ends = Vec::new();
        for (i, b) in stream.iter().enumerate() {
            for end in scanner.advance(std::slice::from_ref(b)) {
                ends.push(i + end);
            }
        }
        assert_eq!(ends, expected);
        // mid-frame the scanner reports not-at-boundary
        let mut scanner = FrameScanner::new();
        assert!(scanner.advance(&stream[..6]).is_empty());
        assert!(!scanner.at_boundary());
    }
}
