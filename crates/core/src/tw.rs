//! Trustworthiness values and the normalization operator `N[·]` (Eq. 18).

use std::fmt;

/// A trustworthiness value clamped to `[0, 1]`.
///
/// The paper allows either `[0, 1]` or `[−1, 1]` as the canonical range; we
/// standardize storage on `[0, 1]` (the range used throughout the
/// evaluation) and let [`Normalizer`] map raw net-profit values into it.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Trustworthiness(f64);

impl Trustworthiness {
    /// Complete distrust.
    pub const ZERO: Trustworthiness = Trustworthiness(0.0);
    /// Complete trust.
    pub const ONE: Trustworthiness = Trustworthiness(1.0);
    /// The indifferent midpoint.
    pub const HALF: Trustworthiness = Trustworthiness(0.5);

    /// Clamps `v` into `[0, 1]` (NaN becomes 0).
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            Trustworthiness(0.0)
        } else {
            Trustworthiness(v.clamp(0.0, 1.0))
        }
    }

    /// The inner value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether this value clears threshold `theta` (Eq. 1's
    /// `TW ≥ θ_y(τ)` test).
    pub fn clears(self, theta: f64) -> bool {
        self.0 >= theta
    }
}

impl fmt::Display for Trustworthiness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl From<f64> for Trustworthiness {
    fn from(v: f64) -> Self {
        Trustworthiness::new(v)
    }
}

/// The normalization operator `N[·]` of Eq. 18: an affine map from the raw
/// net-profit range onto a target range, then clamped.
///
/// With `Ŝ, Ĝ, D̂, Ĉ ∈ [0, 1]` the raw net profit
/// `Ŝ·Ĝ − (1−Ŝ)·D̂ − Ĉ` lies in `[−2, 1]`, which is the default source
/// interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normalizer {
    /// Smallest possible raw value.
    pub raw_min: f64,
    /// Largest possible raw value.
    pub raw_max: f64,
    /// Lower bound of the target range.
    pub out_min: f64,
    /// Upper bound of the target range.
    pub out_max: f64,
}

impl Normalizer {
    /// Maps raw net profit in `[−2, 1]` onto `[0, 1]`.
    pub const UNIT: Normalizer =
        Normalizer { raw_min: -2.0, raw_max: 1.0, out_min: 0.0, out_max: 1.0 };

    /// Maps raw net profit in `[−2, 1]` onto `[−1, 1]` (the paper's
    /// alternative range).
    pub const SIGNED: Normalizer =
        Normalizer { raw_min: -2.0, raw_max: 1.0, out_min: -1.0, out_max: 1.0 };

    /// Applies the affine map and clamps to the target range.
    pub fn apply(&self, raw: f64) -> f64 {
        if self.raw_max <= self.raw_min {
            return self.out_min;
        }
        let t = (raw - self.raw_min) / (self.raw_max - self.raw_min);
        (self.out_min + t * (self.out_max - self.out_min))
            .clamp(self.out_min.min(self.out_max), self.out_max.max(self.out_min))
    }

    /// Applies the map and wraps the result as [`Trustworthiness`]
    /// (meaningful for unit-range normalizers).
    pub fn trustworthiness(&self, raw: f64) -> Trustworthiness {
        Trustworthiness::new(self.apply(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping() {
        assert_eq!(Trustworthiness::new(1.5).value(), 1.0);
        assert_eq!(Trustworthiness::new(-0.2).value(), 0.0);
        assert_eq!(Trustworthiness::new(f64::NAN).value(), 0.0);
        assert_eq!(Trustworthiness::new(0.42).value(), 0.42);
    }

    #[test]
    fn threshold_check() {
        assert!(Trustworthiness::new(0.6).clears(0.6));
        assert!(!Trustworthiness::new(0.59).clears(0.6));
        assert!(Trustworthiness::ONE.clears(1.0));
        assert!(Trustworthiness::ZERO.clears(0.0));
    }

    #[test]
    fn unit_normalizer_endpoints() {
        assert_eq!(Normalizer::UNIT.apply(-2.0), 0.0);
        assert_eq!(Normalizer::UNIT.apply(1.0), 1.0);
        assert!((Normalizer::UNIT.apply(-0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn signed_normalizer_endpoints() {
        assert_eq!(Normalizer::SIGNED.apply(-2.0), -1.0);
        assert_eq!(Normalizer::SIGNED.apply(1.0), 1.0);
        assert!((Normalizer::SIGNED.apply(-0.5)).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_raw_clamps() {
        assert_eq!(Normalizer::UNIT.apply(5.0), 1.0);
        assert_eq!(Normalizer::UNIT.apply(-9.0), 0.0);
    }

    #[test]
    fn degenerate_normalizer_returns_min() {
        let n = Normalizer { raw_min: 1.0, raw_max: 1.0, out_min: 0.0, out_max: 1.0 };
        assert_eq!(n.apply(3.0), 0.0);
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Trustworthiness::new(0.5).to_string(), "0.500");
        let t: Trustworthiness = 0.25f64.into();
        assert_eq!(t.value(), 0.25);
    }

    #[test]
    fn constants() {
        assert_eq!(Trustworthiness::ZERO.value(), 0.0);
        assert_eq!(Trustworthiness::ONE.value(), 1.0);
        assert_eq!(Trustworthiness::HALF.value(), 0.5);
    }
}
