//! Error type for the trust model.

use std::fmt;

/// Errors surfaced by trust-model operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TrustError {
    /// A value that must lie in `[0, 1]` (rates, probabilities,
    /// trustworthiness inputs) was outside it.
    OutOfUnitRange {
        /// Name of the offending quantity.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An environment indicator outside `(0, 1]` (Eq. 29 divides by it).
    BadEnvironment(f64),
    /// A task was built without characteristics.
    EmptyTask,
    /// Characteristic weights must be positive.
    NonPositiveWeight(f64),
    /// Inference failed: the new task has characteristics never experienced.
    UncoveredCharacteristics {
        /// How many characteristics had no covering experience.
        missing: usize,
    },
    /// An [`ObserverPool`](crate::pool::ObserverPool) worker panicked while
    /// folding a dispatched batch. Validation happens before dispatch, so
    /// this signals a bug in the fold path (or a panicking backend), not bad
    /// input; the batch may be partially folded.
    WorkerPanicked,
    /// A persisted trust-state file failed integrity validation at a point
    /// recovery must not skip: a *non-tail* log frame with a bad checksum,
    /// or any damage inside a snapshot (snapshots are written atomically,
    /// so a torn snapshot is real corruption, not a crash artifact). A torn
    /// *tail* frame is recovered from silently — see
    /// [`LogBackend`](crate::log_backend::LogBackend).
    Corrupt {
        /// What failed validation (e.g. `"log frame checksum"`).
        what: &'static str,
        /// Byte offset of the offending frame within its file.
        offset: u64,
    },
    /// A persisted trust-state file carries a format version this build
    /// does not read. Bump-and-migrate is deliberate: the on-disk format
    /// is pinned by a golden-file test.
    UnsupportedFormat {
        /// The version byte found in the file header.
        found: u8,
        /// The version this build reads.
        expected: u8,
    },
    /// An I/O failure underneath a durable backend (open, append, flush,
    /// fsync, compaction). Carries the rendered `std::io::Error`.
    Io(String),
    /// The [`TrustService`](crate::service::TrustService) actor behind a
    /// handle is gone: it was shut down (or its thread exited) before the
    /// request could be served. Work acked before the shutdown is safe;
    /// this request was not accepted.
    ServiceStopped,
    /// A deadline elapsed before the operation completed: a remote
    /// connect/handshake that never answered, or a fleet request whose
    /// per-request deadline expired. The operation may or may not have
    /// taken effect remotely — retried commits are safe only through the
    /// fleet's idempotent (session, sequence)-tagged path.
    TimedOut,
    /// A fleet node could not be reached: its connection is down and
    /// reconnection is failing (or in backoff). Only the key range routed
    /// to this node is affected — requests routed to other nodes keep
    /// succeeding, and broadcasts report the node as missing instead.
    NodeUnavailable {
        /// The unreachable node's address, as configured in the fleet.
        addr: String,
    },
}

impl From<std::io::Error> for TrustError {
    fn from(e: std::io::Error) -> Self {
        TrustError::Io(e.to_string())
    }
}

impl fmt::Display for TrustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrustError::OutOfUnitRange { what, value } => {
                write!(f, "{what} = {value} outside [0, 1]")
            }
            TrustError::BadEnvironment(e) => {
                write!(f, "environment indicator {e} outside (0, 1]")
            }
            TrustError::EmptyTask => write!(f, "a task needs at least one characteristic"),
            TrustError::NonPositiveWeight(w) => {
                write!(f, "characteristic weight {w} must be positive")
            }
            TrustError::UncoveredCharacteristics { missing } => {
                write!(f, "{missing} characteristic(s) not covered by any experienced task")
            }
            TrustError::WorkerPanicked => {
                write!(
                    f,
                    "an observer-pool worker panicked mid-batch (batch may be partially folded)"
                )
            }
            TrustError::Corrupt { what, offset } => {
                write!(f, "persisted trust state corrupt: {what} at byte offset {offset}")
            }
            TrustError::UnsupportedFormat { found, expected } => {
                write!(f, "trust-state file format version {found} (this build reads {expected})")
            }
            TrustError::Io(msg) => write!(f, "trust-state I/O failure: {msg}"),
            TrustError::ServiceStopped => {
                write!(f, "trust service stopped before the request could be served")
            }
            TrustError::TimedOut => {
                write!(f, "deadline elapsed before the operation completed (timed out)")
            }
            TrustError::NodeUnavailable { addr } => {
                write!(f, "fleet node {addr} unavailable (connection down, reconnect failing)")
            }
        }
    }
}

impl std::error::Error for TrustError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = TrustError::OutOfUnitRange { what: "success_rate", value: 1.5 };
        assert!(e.to_string().contains("success_rate"));
        assert!(TrustError::BadEnvironment(0.0).to_string().contains("(0, 1]"));
        assert!(TrustError::EmptyTask.to_string().contains("characteristic"));
        assert!(TrustError::NonPositiveWeight(-1.0).to_string().contains("-1"));
        assert!(TrustError::UncoveredCharacteristics { missing: 2 }.to_string().contains('2'));
        assert!(TrustError::WorkerPanicked.to_string().contains("panicked"));
        let c = TrustError::Corrupt { what: "log frame checksum", offset: 40 };
        assert!(c.to_string().contains("checksum") && c.to_string().contains("40"));
        let v = TrustError::UnsupportedFormat { found: 9, expected: 1 };
        assert!(v.to_string().contains('9') && v.to_string().contains('1'));
        assert!(TrustError::Io("disk full".into()).to_string().contains("disk full"));
        assert!(TrustError::ServiceStopped.to_string().contains("service stopped"));
        assert!(TrustError::TimedOut.to_string().contains("timed out"));
        let n = TrustError::NodeUnavailable { addr: "10.0.0.7:4000".into() };
        assert!(n.to_string().contains("10.0.0.7:4000") && n.to_string().contains("unavailable"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(matches!(TrustError::from(io), TrustError::Io(msg) if msg.contains("gone")));
    }
}
