//! Error type for the trust model.

use std::fmt;

/// Errors surfaced by trust-model operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TrustError {
    /// A value that must lie in `[0, 1]` (rates, probabilities,
    /// trustworthiness inputs) was outside it.
    OutOfUnitRange {
        /// Name of the offending quantity.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An environment indicator outside `(0, 1]` (Eq. 29 divides by it).
    BadEnvironment(f64),
    /// A task was built without characteristics.
    EmptyTask,
    /// Characteristic weights must be positive.
    NonPositiveWeight(f64),
    /// Inference failed: the new task has characteristics never experienced.
    UncoveredCharacteristics {
        /// How many characteristics had no covering experience.
        missing: usize,
    },
    /// An [`ObserverPool`](crate::pool::ObserverPool) worker panicked while
    /// folding a dispatched batch. Validation happens before dispatch, so
    /// this signals a bug in the fold path (or a panicking backend), not bad
    /// input; the batch may be partially folded.
    WorkerPanicked,
}

impl fmt::Display for TrustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrustError::OutOfUnitRange { what, value } => {
                write!(f, "{what} = {value} outside [0, 1]")
            }
            TrustError::BadEnvironment(e) => {
                write!(f, "environment indicator {e} outside (0, 1]")
            }
            TrustError::EmptyTask => write!(f, "a task needs at least one characteristic"),
            TrustError::NonPositiveWeight(w) => {
                write!(f, "characteristic weight {w} must be positive")
            }
            TrustError::UncoveredCharacteristics { missing } => {
                write!(f, "{missing} characteristic(s) not covered by any experienced task")
            }
            TrustError::WorkerPanicked => {
                write!(
                    f,
                    "an observer-pool worker panicked mid-batch (batch may be partially folded)"
                )
            }
        }
    }
}

impl std::error::Error for TrustError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = TrustError::OutOfUnitRange { what: "success_rate", value: 1.5 };
        assert!(e.to_string().contains("success_rate"));
        assert!(TrustError::BadEnvironment(0.0).to_string().contains("(0, 1]"));
        assert!(TrustError::EmptyTask.to_string().contains("characteristic"));
        assert!(TrustError::NonPositiveWeight(-1.0).to_string().contains("-1"));
        assert!(TrustError::UncoveredCharacteristics { missing: 2 }.to_string().contains('2'));
        assert!(TrustError::WorkerPanicked.to_string().contains("panicked"));
    }
}
