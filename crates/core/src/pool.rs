//! Persistent worker threads for concurrent observation folding.
//!
//! The `store_backends` bench showed the naive concurrent path — spawn
//! four threads per batch, join, repeat — losing to single-threaded
//! batching on the 100k workload: thread spawn/join dominates the folds.
//! An [`ObserverPool`] keeps its workers alive across batches, parked on
//! their job channels, so the per-batch cost is a channel send and a
//! wake-up instead of a `clone`d stack and a kernel thread.
//!
//! The pool targets engines over a
//! [`ConcurrentTrustBackend`]
//! (shared-handle writers); the engine is shared with the workers via
//! [`Arc`], and each dispatched slice is copied into the job so the pool
//! needs no scoped-thread machinery (`unsafe` is forbidden in this crate).
//! For the ~32-byte observation tuples this copy is a linear `memcpy`,
//! which the fold work dwarfs.

use crate::backend::ConcurrentTrustBackend;
use crate::error::TrustError;
use crate::record::{ForgettingFactors, Observation};
use crate::store::TrustEngine;
use crate::task::TaskId;
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One dispatched slice of a batch.
struct Job<P, B> {
    engine: Arc<TrustEngine<P, B>>,
    batch: Vec<(P, TaskId, Observation)>,
    betas: ForgettingFactors,
    done: Sender<()>,
}

/// A fixed set of persistent worker threads folding observation batches
/// through shared-handle engines.
///
/// ```
/// use siot_core::pool::ObserverPool;
/// use siot_core::prelude::*;
/// use std::sync::Arc;
///
/// let pool: ObserverPool<u32> = ObserverPool::new(4);
/// let engine = Arc::new(TrustEngine::<u32, ShardedBackend<u32>>::new());
/// let batch: Vec<_> = (0..1000u32)
///     .map(|i| (i, TaskId(0), Observation::success(0.8, 0.1)))
///     .collect();
/// pool.observe_batch(&engine, &batch, &ForgettingFactors::figures()).unwrap();
/// assert_eq!(engine.record_count(), 1000);
/// ```
pub struct ObserverPool<P, B = crate::backend::ShardedBackend<P>> {
    senders: Vec<Sender<Job<P, B>>>,
    handles: Vec<JoinHandle<()>>,
}

impl<P, B> ObserverPool<P, B>
where
    P: Copy + Ord + Send + Sync + 'static,
    B: ConcurrentTrustBackend<P> + Send + 'static,
{
    /// Spawns `workers` persistent threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<Job<P, B>>();
            senders.push(tx);
            handles.push(std::thread::spawn(move || {
                // the loop ends when the pool drops its sender
                for job in rx.iter() {
                    // observations were validated at dispatch
                    job.engine
                        .observe_batch_shared(&job.batch, &job.betas)
                        .expect("pool batches are validated before dispatch");
                    let _ = job.done.send(());
                }
            }));
        }
        ObserverPool { senders, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Splits `batch` into contiguous slices, folds each through the
    /// shared engine handle on its own worker, and waits for completion.
    /// Writes to different peers proceed in parallel; writes to the same
    /// `(peer, task)` serialize on its shard lock.
    ///
    /// Every observation is folded exactly once, and a batch in which each
    /// `(peer, task)` key appears at most once (the insert-heavy workload
    /// this pool targets) lands bit-identically to
    /// [`TrustEngine::observe_batch_shared`]. When one key's observations
    /// *span slice boundaries*, their relative fold order follows worker
    /// scheduling — the order-sensitive EWMA may then differ between runs;
    /// keep a key's stream within one dispatch (or use the single-handle
    /// batch APIs) where per-key determinism matters.
    ///
    /// The whole batch is validated before any slice is dispatched, so an
    /// invalid observation fails atomically.
    pub fn observe_batch(
        &self,
        engine: &Arc<TrustEngine<P, B>>,
        batch: &[(P, TaskId, Observation)],
        betas: &ForgettingFactors,
    ) -> Result<(), TrustError> {
        for (_, _, obs) in batch {
            obs.validate()?;
        }
        if batch.is_empty() {
            return Ok(());
        }
        let lanes = self.senders.len().min(batch.len());
        let chunk = batch.len().div_ceil(lanes);
        let (done_tx, done_rx) = mpsc::channel();
        let mut dispatched = 0usize;
        for (i, slice) in batch.chunks(chunk).enumerate() {
            let job = Job {
                engine: Arc::clone(engine),
                batch: slice.to_vec(),
                betas: *betas,
                done: done_tx.clone(),
            };
            self.senders[i].send(job).expect("pool workers outlive the pool");
            dispatched += 1;
        }
        drop(done_tx);
        for _ in 0..dispatched {
            done_rx.recv().expect("worker panicked mid-batch");
        }
        Ok(())
    }
}

impl<P, B> Drop for ObserverPool<P, B> {
    fn drop(&mut self) {
        // closing the channels ends the worker loops
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ShardedBackend;

    fn workload(n: u32) -> Vec<(u32, TaskId, Observation)> {
        (0..n)
            .map(|i| {
                (
                    i % 97,
                    TaskId(i % 3),
                    Observation {
                        success_rate: (i % 10) as f64 / 9.0,
                        gain: 0.4,
                        damage: 0.2,
                        cost: 0.1,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn pool_matches_single_threaded_folding() {
        let batch = workload(2_000);
        let betas = ForgettingFactors::figures();

        let mut reference: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        reference.observe_batch(&batch, &betas).unwrap();

        let pool: ObserverPool<u32> = ObserverPool::new(4);
        let engine = Arc::new(TrustEngine::<u32, ShardedBackend<u32>>::new());
        pool.observe_batch(&engine, &batch, &betas).unwrap();

        assert_eq!(engine.record_count(), reference.record_count());
        assert_eq!(engine.known_peers(), reference.known_peers());
        // commutative-per-key workload: every (peer, task) key sees its
        // observations in order within one slice; different keys are
        // independent, so records agree exactly when each key's stream
        // lands on one worker — which chunking by contiguous slices only
        // guarantees for counts, so compare structure + interactions
        let interactions = |e: &TrustEngine<u32, ShardedBackend<u32>>| -> u64 {
            let mut sum = 0;
            for p in e.known_peers() {
                for t in 0..3 {
                    sum += e.record(p, TaskId(t)).map_or(0, |r| r.interactions);
                }
            }
            sum
        };
        let total = interactions(&reference);
        let pooled = interactions(&engine);
        assert_eq!(total, pooled, "every observation folded exactly once");
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool: ObserverPool<u32> = ObserverPool::new(2);
        let engine = Arc::new(TrustEngine::<u32, ShardedBackend<u32>>::new());
        let betas = ForgettingFactors::figures();
        for round in 0..5u32 {
            let batch: Vec<_> =
                (0..100u32).map(|i| (i, TaskId(round), Observation::success(0.8, 0.1))).collect();
            pool.observe_batch(&engine, &batch, &betas).unwrap();
        }
        assert_eq!(engine.record_count(), 500);
        assert_eq!(engine.record(7, TaskId(4)).unwrap().interactions, 1);
    }

    #[test]
    fn pool_validates_before_dispatch() {
        let pool: ObserverPool<u32> = ObserverPool::new(2);
        let engine = Arc::new(TrustEngine::<u32, ShardedBackend<u32>>::new());
        let bad = vec![
            (1u32, TaskId(0), Observation::success(0.9, 0.1)),
            (2u32, TaskId(0), Observation { success_rate: 1.5, gain: 0.0, damage: 0.0, cost: 0.0 }),
        ];
        assert!(pool.observe_batch(&engine, &bad, &ForgettingFactors::figures()).is_err());
        assert_eq!(engine.record_count(), 0, "atomic rejection");
    }

    #[test]
    fn empty_batch_and_min_workers() {
        let pool: ObserverPool<u32> = ObserverPool::new(0);
        assert_eq!(pool.workers(), 1);
        let engine = Arc::new(TrustEngine::<u32, ShardedBackend<u32>>::new());
        pool.observe_batch(&engine, &[], &ForgettingFactors::figures()).unwrap();
        assert_eq!(engine.record_count(), 0);
    }
}
