//! Shard-affine persistent worker threads for concurrent observation
//! folding.
//!
//! An [`ObserverPool`] keeps a fixed set of worker threads alive across
//! batches, parked on their job channels, and partitions the backend's
//! [write lanes](crate::backend::ConcurrentTrustBackend::write_lanes)
//! across them: lane `l` belongs to worker `l % workers`, permanently. A
//! dispatched batch is routed on the caller's thread — one hash per
//! element via
//! [`lane_of`](crate::backend::ConcurrentTrustBackend::lane_of) — into
//! per-lane index runs, one cache-sized window at a time, and each worker
//! folds exactly the runs of the lanes it owns, reading elements straight
//! out of a shared [`Arc`] of the batch.
//!
//! That affinity buys three things at once:
//!
//! * **Contention-free writes.** Only one worker ever writes a given lane,
//!   so every shard-lock acquisition is uncontended (the lock stays, for
//!   concurrent *readers*, but no writer ever waits on another). Each lane
//!   is locked once per dispatch window, not once per record.
//! * **Zero-copy dispatch.** Jobs carry `Arc` clones of the batch plus the
//!   owner's index runs — no `slice.to_vec()` per worker. Per-batch cost is
//!   a channel send and one wake-up per participating worker.
//! * **Determinism.** A `(peer, task)` key always routes to one lane and
//!   therefore one worker, and runs preserve batch order, so pooled folding
//!   is **bit-identical to sequential [`TrustEngine::observe`]** — duplicate
//!   keys included. Property tests pin this; there is no ordering caveat.
//!
//! The batch is validated exactly once, before dispatch; workers fold
//! through a crate-internal pre-validated seam instead of re-validating
//! inside the lock-holding loop. A worker panic is caught, surfaced as
//! [`TrustError::WorkerPanicked`] from [`ObserverPool::observe_batch`], and
//! leaves the pool reusable — completion is one barrier per window, not a
//! per-slice channel round-trip, so a panicking fold can never deadlock the
//! dispatcher.
//!
//! ## Adaptive dispatch
//!
//! Handing a window to a worker only pays when another CPU can fold it
//! while the caller routes the next one. [`Dispatch::Auto`] (the default)
//! therefore resolves per host: multi-core machines use the worker threads,
//! single-core machines fold the same lane runs [inline](Dispatch::Inline)
//! on the caller's thread — same routing, same order, bit-identical result,
//! none of the wake-up latency. Both strategies are explicitly selectable
//! via [`ObserverPool::with_dispatch`], and both surface fold panics as
//! [`TrustError::WorkerPanicked`].
//!
//! Pair the pool with an engine whose backend is sized by
//! [`ShardedBackend::with_shards_for_writers`](crate::backend::ShardedBackend::with_shards_for_writers)
//! so every worker owns several lanes and hash skew averages out.

use crate::backend::ConcurrentTrustBackend;
use crate::error::TrustError;
use crate::record::{ForgettingFactors, Observation};
use crate::store::TrustEngine;
use crate::task::TaskId;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Elements routed and dispatched per window. Folding a multi-hundred-
/// megabyte slate in one go strides the whole batch per lane pass and
/// evicts everything from cache between worker time slices; windowing
/// keeps the active slice and its routing table hot while costing only one
/// extra barrier per window (measured ~15–25% faster on the 1M-record
/// bench).
const DISPATCH_WINDOW: usize = 16 * 1024;

/// One dispatched window of a batch, shared by every worker: worker `w`
/// folds exactly the lanes `l` with `l % workers == w`.
struct Job<P, B> {
    engine: Arc<TrustEngine<P, B>>,
    batch: Arc<[(P, TaskId, Observation)]>,
    /// Per-lane runs of absolute batch indices, ascending within a lane —
    /// batch order is preserved per key.
    table: Arc<Vec<Vec<usize>>>,
    betas: ForgettingFactors,
    barrier: Arc<BatchBarrier>,
}

/// Completion barrier for one dispatched batch: workers check in once each,
/// the dispatcher blocks until all have, and a panic anywhere is carried
/// back as a flag instead of a hung `recv`.
struct BatchBarrier {
    state: Mutex<BarrierState>,
    all_done: Condvar,
}

struct BarrierState {
    remaining: usize,
    panicked: bool,
}

impl BatchBarrier {
    fn new(jobs: usize) -> Self {
        BatchBarrier {
            state: Mutex::new(BarrierState { remaining: jobs, panicked: false }),
            all_done: Condvar::new(),
        }
    }

    fn check_in(&self, panicked: bool) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.remaining -= 1;
        s.panicked |= panicked;
        if s.remaining == 0 {
            self.all_done.notify_one();
        }
    }

    /// Blocks until every job checked in; returns whether any panicked.
    fn wait(&self) -> bool {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while s.remaining > 0 {
            s = self.all_done.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.panicked
    }
}

/// Execution strategy for dispatched batches.
///
/// Routing, validation, and the bit-identical-to-sequential guarantee are
/// the same under every mode; only *which thread folds a lane's runs*
/// differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Resolve to [`Dispatch::Workers`] when the host offers more than one
    /// CPU, [`Dispatch::Inline`] otherwise — on a single core a worker
    /// handoff only adds wake-up latency the caller's own thread does not
    /// pay. The default.
    Auto,
    /// Always hand windows to the lane-owning worker threads.
    Workers,
    /// Fold lane runs on the caller's thread: same single-hash routing and
    /// per-lane run order, no channel handoff, and the routing table is
    /// reused across windows instead of reallocated.
    Inline,
}

/// A fixed set of persistent worker threads folding observation batches
/// through shared-handle engines, each worker exclusively owning a disjoint
/// set of the backend's write lanes.
///
/// ```
/// use siot_core::pool::ObserverPool;
/// use siot_core::prelude::*;
/// use std::sync::Arc;
///
/// let pool: ObserverPool<u32> = ObserverPool::new(4);
/// let engine = Arc::new(TrustEngine::with_backend(ShardedBackend::with_shards_for_writers(4)));
/// let batch: Vec<_> = (0..1000u32)
///     .map(|i| (i, TaskId(0), Observation::success(0.8, 0.1)))
///     .collect();
/// pool.observe_batch(&engine, &batch, &ForgettingFactors::figures()).unwrap();
/// assert_eq!(engine.record_count(), 1000);
/// ```
pub struct ObserverPool<P, B = crate::backend::ShardedBackend<P>> {
    /// Empty under [`Dispatch::Inline`] — no threads are spawned there.
    senders: Vec<Sender<Job<P, B>>>,
    handles: Vec<JoinHandle<()>>,
    /// Configured worker count (the lane-ownership modulus).
    workers: usize,
    /// Resolved strategy: [`Dispatch::Workers`] or [`Dispatch::Inline`].
    dispatch: Dispatch,
}

impl<P, B> ObserverPool<P, B>
where
    P: Copy + Ord + Send + Sync + 'static,
    B: ConcurrentTrustBackend<P> + Send + 'static,
{
    /// Spawns `workers` persistent threads (at least one) under
    /// [`Dispatch::Auto`]; worker `w` permanently owns every backend lane
    /// `l` with `l % workers == w`.
    pub fn new(workers: usize) -> Self {
        Self::with_dispatch(workers, Dispatch::Auto)
    }

    /// [`Self::new`] with an explicit execution strategy.
    pub fn with_dispatch(workers: usize, dispatch: Dispatch) -> Self {
        let workers = workers.max(1);
        let dispatch = match dispatch {
            Dispatch::Auto => {
                if std::thread::available_parallelism().map_or(1, |p| p.get()) > 1 {
                    Dispatch::Workers
                } else {
                    Dispatch::Inline
                }
            }
            explicit => explicit,
        };
        if dispatch == Dispatch::Inline {
            // no threads: every batch folds on its caller's thread
            return ObserverPool { senders: Vec::new(), handles: Vec::new(), workers, dispatch };
        }
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            let (tx, rx) = mpsc::channel::<Job<P, B>>();
            senders.push(tx);
            handles.push(std::thread::spawn(move || {
                // the loop ends when the pool drops its sender
                for job in rx.iter() {
                    // a panicking fold (a bug, never bad input — the batch
                    // was validated at dispatch) must still reach the
                    // barrier, or the dispatcher would wait forever
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let mut lane = worker;
                        while lane < job.table.len() {
                            let indices = &job.table[lane];
                            if !indices.is_empty() {
                                job.engine.observe_lane_run_prevalidated(
                                    lane, indices, &job.batch, &job.betas,
                                );
                            }
                            lane += workers;
                        }
                    }));
                    job.barrier.check_in(result.is_err());
                }
            }));
        }
        ObserverPool { senders, handles, workers, dispatch }
    }

    /// Configured worker count — the number of threads under
    /// [`Dispatch::Workers`]; under [`Dispatch::Inline`] no threads exist
    /// and this is only the lane-ownership modulus.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The resolved execution strategy ([`Dispatch::Workers`] or
    /// [`Dispatch::Inline`]; never [`Dispatch::Auto`]).
    pub fn dispatch(&self) -> Dispatch {
        self.dispatch
    }

    /// Validates `batch`, routes it into per-lane runs (hashing each peer
    /// once), and folds every run on the worker owning its lane, one
    /// cache-sized window at a time with a completion barrier per window.
    /// Bit-identical to folding the batch sequentially through
    /// [`TrustEngine::observe`], duplicate keys included — see the
    /// [module docs](self).
    ///
    /// The whole batch is validated before any run is dispatched, so an
    /// invalid observation fails atomically with nothing folded. A worker
    /// panic surfaces as [`TrustError::WorkerPanicked`] (the batch may then
    /// be partially folded; the pool itself remains usable).
    ///
    /// Under [`Dispatch::Workers`] the slice is copied once into a shared
    /// allocation; dispatch itself is zero-copy, and callers that already
    /// hold the batch in an `Arc<[...]>` can use
    /// [`Self::observe_batch_arc`] to skip even that copy. Under
    /// [`Dispatch::Inline`] nothing crosses a thread, so nothing is copied
    /// at all.
    pub fn observe_batch(
        &self,
        engine: &Arc<TrustEngine<P, B>>,
        batch: &[(P, TaskId, Observation)],
        betas: &ForgettingFactors,
    ) -> Result<(), TrustError> {
        if batch.is_empty() {
            return Ok(());
        }
        // validate before the Arc copy, so a rejected batch costs no O(n)
        // allocation
        for (_, _, obs) in batch {
            obs.validate()?;
        }
        if self.dispatch == Dispatch::Inline {
            return self.fold_inline(engine, batch, betas, engine.write_lanes());
        }
        self.dispatch_windows(engine, Arc::from(batch), betas)
    }

    /// Zero-copy [`Self::observe_batch`]: workers read elements straight
    /// out of the shared `batch` allocation.
    pub fn observe_batch_arc(
        &self,
        engine: &Arc<TrustEngine<P, B>>,
        batch: Arc<[(P, TaskId, Observation)]>,
        betas: &ForgettingFactors,
    ) -> Result<(), TrustError> {
        for (_, _, obs) in batch.iter() {
            obs.validate()?;
        }
        if self.dispatch == Dispatch::Inline {
            return self.fold_inline(engine, &batch, betas, engine.write_lanes());
        }
        self.dispatch_windows(engine, batch, betas)
    }

    /// [`Dispatch::Workers`] execution over a pre-validated batch.
    ///
    /// Windows fold strictly in order (a barrier between dispatches), and
    /// a key's lane — hence owning worker — never changes, so per-key fold
    /// order is batch order no matter how the batch is windowed. The
    /// caller routes window *N + 1* while the workers fold window *N*, so
    /// on multicore hosts the routing pass hides behind the folds.
    fn dispatch_windows(
        &self,
        engine: &Arc<TrustEngine<P, B>>,
        batch: Arc<[(P, TaskId, Observation)]>,
        betas: &ForgettingFactors,
    ) -> Result<(), TrustError> {
        let lanes = engine.write_lanes();
        let workers = self.senders.len();

        // route one window: one hash per element, absolute indices,
        // ascending within a lane; also lists the workers owning at least
        // one non-empty lane (the only ones worth waking)
        let route = |start: usize| {
            let end = (start + DISPATCH_WINDOW).min(batch.len());
            let mut table: Vec<Vec<usize>> = Vec::with_capacity(lanes);
            table.resize_with(lanes, Vec::new);
            for (i, &(peer, _, _)) in batch[start..end].iter().enumerate() {
                table[engine.lane_of(peer)].push(start + i);
            }
            let participating: Vec<usize> = (0..workers)
                .filter(|&w| (w..lanes).step_by(workers).any(|lane| !table[lane].is_empty()))
                .collect();
            (Arc::new(table), participating, end)
        };

        let (mut table, mut participating, mut end) = route(0);
        loop {
            let barrier = Arc::new(BatchBarrier::new(participating.len()));
            for &w in &participating {
                let job = Job {
                    engine: Arc::clone(engine),
                    batch: Arc::clone(&batch),
                    table: Arc::clone(&table),
                    betas: *betas,
                    barrier: Arc::clone(&barrier),
                };
                if self.senders[w].send(job).is_err() {
                    // the worker thread is gone (it panicked outside the
                    // fold guard); check in on its behalf so the barrier
                    // resolves
                    barrier.check_in(true);
                }
            }
            // overlap: route the next window while this one folds
            let next = if end < batch.len() { Some(route(end)) } else { None };
            if barrier.wait() {
                return Err(TrustError::WorkerPanicked);
            }
            match next {
                Some(n) => (table, participating, end) = n,
                None => break,
            }
        }
        // one covering fsync for everything the workers appended — the
        // group-commit barrier, issued before this batch is acknowledged
        engine.commit_barrier_shared()
    }

    /// [`Dispatch::Inline`] execution: identical routing and fold order,
    /// run on the caller's thread. The routing table keeps its capacity
    /// across windows, so a long batch allocates its run buffers once.
    /// Panics are caught and surfaced exactly like worker panics, so both
    /// strategies fail the same way.
    fn fold_inline(
        &self,
        engine: &Arc<TrustEngine<P, B>>,
        batch: &[(P, TaskId, Observation)],
        betas: &ForgettingFactors,
        lanes: usize,
    ) -> Result<(), TrustError> {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut table: Vec<Vec<usize>> = Vec::with_capacity(lanes);
            table.resize_with(lanes, Vec::new);
            let mut start = 0;
            while start < batch.len() {
                let end = (start + DISPATCH_WINDOW).min(batch.len());
                for run in table.iter_mut() {
                    run.clear();
                }
                for (i, &(peer, _, _)) in batch[start..end].iter().enumerate() {
                    table[engine.lane_of(peer)].push(start + i);
                }
                for (lane, indices) in table.iter().enumerate() {
                    if !indices.is_empty() {
                        engine.observe_lane_run_prevalidated(lane, indices, batch, betas);
                    }
                }
                start = end;
            }
        }));
        if result.is_err() {
            return Err(TrustError::WorkerPanicked);
        }
        // same barrier as the worker path: acked batch = durable batch
        engine.commit_barrier_shared()
    }
}

impl<P, B> fmt::Debug for ObserverPool<P, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObserverPool")
            .field("workers", &self.workers)
            .field("dispatch", &self.dispatch)
            .finish_non_exhaustive()
    }
}

impl<P, B> Drop for ObserverPool<P, B> {
    fn drop(&mut self) {
        // closing the channels ends the worker loops
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ShardedBackend, TrustBackend};
    use crate::record::TrustRecord;

    /// Duplicate-heavy workload: 97 peers × 3 tasks under `n` observations,
    /// so keys repeat and the EWMA fold order is observable.
    fn workload(n: u32) -> Vec<(u32, TaskId, Observation)> {
        (0..n)
            .map(|i| {
                (
                    i % 97,
                    TaskId(i % 3),
                    Observation {
                        success_rate: (i % 10) as f64 / 9.0,
                        gain: 0.4,
                        damage: 0.2,
                        cost: 0.1,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn pool_is_bit_identical_to_sequential_folding() {
        let batch = workload(2_000);
        let betas = ForgettingFactors::figures();

        let mut reference: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        for (p, t, obs) in &batch {
            reference.observe(*p, *t, obs, &betas);
        }

        // both execution strategies, several worker counts — all must land
        // bit-identically (single-window batch; the multi-window case is
        // pinned separately below)
        for dispatch in [Dispatch::Workers, Dispatch::Inline, Dispatch::Auto] {
            for workers in [1, 2, 4, 7] {
                let pool: ObserverPool<u32> = ObserverPool::with_dispatch(workers, dispatch);
                assert_ne!(pool.dispatch(), Dispatch::Auto, "auto resolves at construction");
                let engine = Arc::new(TrustEngine::<u32, ShardedBackend<u32>>::with_backend(
                    ShardedBackend::with_shards_for_writers(workers),
                ));
                pool.observe_batch(&engine, &batch, &betas).unwrap();

                assert_eq!(engine.record_count(), reference.record_count());
                assert_eq!(engine.known_peers(), reference.known_peers());
                // shard affinity keeps every key's stream on one worker in
                // batch order: records agree exactly, duplicates included
                for p in reference.known_peers() {
                    for t in 0..3 {
                        assert_eq!(engine.record(p, TaskId(t)), reference.record(p, TaskId(t)));
                    }
                }
            }
        }
    }

    #[test]
    fn multi_window_batches_stay_bit_identical() {
        // 40k elements span three DISPATCH_WINDOWs, exercising absolute
        // index routing, per-window barriers, and cross-window per-key
        // ordering — under both strategies
        let batch = workload(40_000);
        assert!(batch.len() > 2 * DISPATCH_WINDOW);
        let betas = ForgettingFactors::figures();

        let mut reference: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        for (p, t, obs) in &batch {
            reference.observe(*p, *t, obs, &betas);
        }

        for dispatch in [Dispatch::Workers, Dispatch::Inline] {
            let pool: ObserverPool<u32> = ObserverPool::with_dispatch(3, dispatch);
            let engine = Arc::new(TrustEngine::<u32, ShardedBackend<u32>>::with_backend(
                ShardedBackend::with_shards_for_writers(3),
            ));
            pool.observe_batch_arc(&engine, batch.clone().into(), &betas).unwrap();
            assert_eq!(engine.record_count(), reference.record_count());
            for p in reference.known_peers() {
                for t in 0..3 {
                    assert_eq!(engine.record(p, TaskId(t)), reference.record(p, TaskId(t)));
                }
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool: ObserverPool<u32> = ObserverPool::new(2);
        let engine = Arc::new(TrustEngine::<u32, ShardedBackend<u32>>::new());
        let betas = ForgettingFactors::figures();
        for round in 0..5u32 {
            let batch: Vec<_> =
                (0..100u32).map(|i| (i, TaskId(round), Observation::success(0.8, 0.1))).collect();
            pool.observe_batch(&engine, &batch, &betas).unwrap();
        }
        assert_eq!(engine.record_count(), 500);
        assert_eq!(engine.record(7, TaskId(4)).unwrap().interactions, 1);
    }

    #[test]
    fn pool_validates_before_dispatch() {
        let pool: ObserverPool<u32> = ObserverPool::new(2);
        let engine = Arc::new(TrustEngine::<u32, ShardedBackend<u32>>::new());
        let bad = vec![
            (1u32, TaskId(0), Observation::success(0.9, 0.1)),
            (2u32, TaskId(0), Observation { success_rate: 1.5, gain: 0.0, damage: 0.0, cost: 0.0 }),
        ];
        assert!(pool.observe_batch(&engine, &bad, &ForgettingFactors::figures()).is_err());
        assert_eq!(engine.record_count(), 0, "atomic rejection");
    }

    #[test]
    fn empty_batch_and_min_workers() {
        let pool: ObserverPool<u32> = ObserverPool::new(0);
        assert_eq!(pool.workers(), 1);
        let engine = Arc::new(TrustEngine::<u32, ShardedBackend<u32>>::new());
        pool.observe_batch(&engine, &[], &ForgettingFactors::figures()).unwrap();
        pool.observe_batch_arc(&engine, Vec::new().into(), &ForgettingFactors::figures()).unwrap();
        assert_eq!(engine.record_count(), 0);
    }

    #[test]
    fn arc_dispatch_matches_slice_dispatch() {
        let batch = workload(500);
        let betas = ForgettingFactors::figures();
        let pool: ObserverPool<u32> = ObserverPool::new(3);

        let via_slice = Arc::new(TrustEngine::<u32, ShardedBackend<u32>>::new());
        pool.observe_batch(&via_slice, &batch, &betas).unwrap();

        let via_arc = Arc::new(TrustEngine::<u32, ShardedBackend<u32>>::new());
        pool.observe_batch_arc(&via_arc, batch.clone().into(), &betas).unwrap();

        for &(p, t, _) in &batch {
            assert_eq!(via_slice.record(p, t), via_arc.record(p, t));
        }
    }

    /// A concurrent backend whose shared write path always panics — stands
    /// in for a fold bug so panic propagation is testable.
    #[derive(Debug, Default, Clone)]
    struct ExplodingBackend {
        inner: ShardedBackend<u32>,
    }

    impl TrustBackend<u32> for ExplodingBackend {
        fn get(&self, peer: u32, task: TaskId) -> Option<TrustRecord> {
            self.inner.get(peer, task)
        }
        fn insert(&mut self, peer: u32, task: TaskId, rec: TrustRecord) {
            self.inner.insert(peer, task, rec);
        }
        fn update(
            &mut self,
            peer: u32,
            task: TaskId,
            f: &mut dyn FnMut(Option<TrustRecord>) -> TrustRecord,
        ) {
            self.inner.update(peer, task, f);
        }
        fn for_each_experience(&self, peer: u32, f: &mut dyn FnMut(TaskId, TrustRecord)) {
            self.inner.for_each_experience(peer, f);
        }
        fn known_peers(&self) -> Vec<u32> {
            self.inner.known_peers()
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn clear(&mut self) {
            self.inner.clear();
        }
    }

    impl ConcurrentTrustBackend<u32> for ExplodingBackend {
        fn get_shared(&self, peer: u32, task: TaskId) -> Option<TrustRecord> {
            self.inner.get_shared(peer, task)
        }
        // default single-lane topology: exercises the trait's fallback
        // `update_lane_run_shared`, which routes through this panic
        fn update_shared(
            &self,
            _peer: u32,
            _task: TaskId,
            _f: &mut dyn FnMut(Option<TrustRecord>) -> TrustRecord,
        ) {
            panic!("injected fold bug");
        }
    }

    #[test]
    fn worker_panic_propagates_as_error_and_pool_survives() {
        // both strategies must fail the same way: an error, not a deadlock
        // (workers mode) and not an unwinding caller (inline mode)
        for dispatch in [Dispatch::Workers, Dispatch::Inline] {
            let pool: ObserverPool<u32, ExplodingBackend> =
                ObserverPool::with_dispatch(2, dispatch);
            let engine = Arc::new(TrustEngine::<u32, ExplodingBackend>::new());
            let batch = vec![(1u32, TaskId(0), Observation::success(0.9, 0.1))];
            let betas = ForgettingFactors::figures();

            let err = pool.observe_batch(&engine, &batch, &betas).unwrap_err();
            assert_eq!(err, TrustError::WorkerPanicked);

            // the barrier resolved instead of deadlocking, and the worker
            // loop survived the caught panic: the pool keeps accepting
            let err = pool.observe_batch(&engine, &batch, &betas).unwrap_err();
            assert_eq!(err, TrustError::WorkerPanicked);
        }
    }
}
