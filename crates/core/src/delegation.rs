//! The delegation session: the paper's six-ingredient trust *process*
//! (§3.2–§3.4) as a typed-state lifecycle over the
//! [`TrustEngine`].
//!
//! Lin & Dong's central claim is that trust is a process — **trustor**,
//! **trustee**, **goal**, **trustworthiness evaluation**,
//! **decision/action/result**, and **context** — not a scalar lookup. This
//! module encodes that process in the type system, so "evaluate before
//! decide before act before feed back" is the *only* expressible order:
//!
//! ```text
//! TrustEngine::delegate(trustee, task, goal, context)
//!        │                                 (trustor = the engine's owner)
//!        ▼
//! DelegationRequest ──evaluate(&engine)──▶ EvaluatedDelegation
//!        builders: referrals, gates,             │ carries Trustworthiness,
//!        prior, committed                        │ expectation, basis
//!                                                ▼ into_decision()
//!                              ┌─────────── Decision ───────────┐
//!                              ▼                                ▼
//!                    Decision::Delegate(active)        Decision::Decline
//!                              │                       (reason; no handle,
//!            execute(outcome)  │  finish(outcome)       no feedback possible)
//!                              ▼
//!                    CompletedDelegation ──commit / commit_batch──▶ backend
//! ```
//!
//! * **Evaluation** (§3.3) resolves trustworthiness in the paper's
//!   preference order: the direct `(trustee, task)` record (Eq. 18), then
//!   Eq. 4 characteristic inference, then the transitivity fallback over
//!   caller-supplied [`Referral`] paths gated by
//!   [`TransitivityGates`] (Eqs. 7/11), then an optional explicit prior.
//! * **Decision** (§3.4) tests the expectation against the goal with
//!   [`Goal::permits`]: the expected result must be inside the goal box and
//!   profitable. Experiments that must keep delegating regardless (e.g. the
//!   Fig. 13 convergence study) opt out with
//!   [`DelegationRequest::committed`].
//! * **Action/result + feedback** are fused: executing the session consumes
//!   it and atomically folds the validated [`Observation`], the §4.1
//!   mutuality usage-log entry, and the §4.5 environment sample (the
//!   context's indicator is removed via Eq. 29 before blending) through the
//!   storage backend. A session is consumed exactly once — double-counting
//!   an outcome is unrepresentable, and [`Observation::validate`] rejects
//!   NaN / out-of-range feedback before anything is folded.
//!
//! The raw engine mutators (`observe`, `insert_record`, `usage_log_mut`)
//! remain available as a documented escape hatch for benches and for
//! seeding state that predates the process; everything that models a live
//! interaction should go through a session.

use crate::backend::TrustBackend;
use crate::context::Context;
use crate::error::TrustError;
use crate::goal::Goal;
use crate::record::{ForgettingFactors, Observation, TrustRecord};
use crate::store::TrustEngine;
use crate::task::{Task, TaskId};
use crate::transitivity::{chain, TransitivityGates};
use crate::tw::Trustworthiness;

/// One transitivity-fallback path: scalar per-hop trust toward the
/// requested task, recommendation links first, the execution link (toward
/// the trustee itself) last. Gated by [`TransitivityGates`] and combined
/// with the Eq. 7 chain during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Referral {
    links: Vec<f64>,
}

impl Referral {
    /// A referral path from per-hop trust values (recommendations first,
    /// execution last). Empty paths never qualify.
    pub fn new(links: impl Into<Vec<f64>>) -> Self {
        Referral { links: links.into() }
    }

    /// A single-hop referral: only the execution link, e.g. an estimate a
    /// trustee search already transferred and combined.
    pub fn execution(tw: f64) -> Self {
        Referral { links: vec![tw] }
    }

    /// The per-hop links.
    pub fn links(&self) -> &[f64] {
        &self.links
    }

    /// Eq. 7 chain value if the path clears the gates, `None` otherwise.
    fn passing_value(&self, gates: &TransitivityGates) -> Option<f64> {
        let (&execution, recommendations) = self.links.split_last()?;
        if !gates.pass(recommendations, execution) {
            return None;
        }
        Some(chain(&self.links))
    }
}

/// How the trustor arrived at its trustworthiness estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvaluationBasis {
    /// A direct `(trustee, task)` record existed (Eq. 18).
    Direct,
    /// Eq. 4 inference from experiences on analogous tasks.
    Inferred,
    /// A gated transitivity referral (Eqs. 7/11).
    Referred,
    /// The caller-supplied prior ([`DelegationRequest::with_prior`]).
    Prior,
    /// Nothing to go on: the neutral ignorance expectation.
    NoInformation,
}

/// Why an evaluated request was declined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclineReason {
    /// No record, no inference, no passing referral, no prior.
    NoTrustInformation,
    /// Referral paths were supplied but every one failed the ω₁/ω₂ gates.
    ReferralsGated,
    /// The expectation falls outside the goal box (§3.4 alignment).
    GoalMisaligned,
    /// Aligned, but the expected net profit (Eq. 23) is not positive.
    Unprofitable,
}

/// A delegation request: the six ingredients captured, evaluation pending.
///
/// Created by [`TrustEngine::delegate`]; the trustor is the engine's
/// owner. Configure the evaluation with the builder methods, then call
/// [`DelegationRequest::evaluate`].
#[derive(Debug, Clone)]
pub struct DelegationRequest<P> {
    pub(crate) trustee: P,
    pub(crate) task: Task,
    pub(crate) goal: Goal,
    pub(crate) context: Context,
    pub(crate) gates: TransitivityGates,
    pub(crate) referrals: Vec<Referral>,
    pub(crate) prior: Option<TrustRecord>,
    pub(crate) committed: bool,
}

impl<P: Copy + Ord> DelegationRequest<P> {
    /// A request built without an engine in hand — the entry point for
    /// callers that talk to a [`TrustService`](crate::service::TrustService)
    /// handle instead of owning a `TrustEngine` (the handle's
    /// [`evaluate`](crate::service::TrustServiceHandle::evaluate) runs the
    /// evaluation inside the actor). Engine-owning callers keep using
    /// [`TrustEngine::delegate`], which is this plus the engine as the
    /// implied trustor.
    pub fn new(trustee: P, task: &Task, goal: Goal, context: Context) -> Self {
        DelegationRequest {
            trustee,
            task: task.clone(),
            goal,
            // the session is always about the delegated task; only the
            // environment half of the supplied context is kept
            context: Context::new(task.id(), context.environment),
            gates: TransitivityGates::default_gates(),
            referrals: Vec::new(),
            prior: None,
            committed: false,
        }
    }

    /// The peer this request would delegate to — the routing key: the
    /// sharded service tier hashes it to pick the owning shard.
    pub fn trustee(&self) -> P {
        self.trustee
    }

    /// Adds one transitivity-fallback referral path.
    pub fn with_referral(mut self, referral: Referral) -> Self {
        self.referrals.push(referral);
        self
    }

    /// Replaces the ω₁/ω₂ gates used for referral paths (default:
    /// [`TransitivityGates::default_gates`]).
    pub fn with_gates(mut self, gates: TransitivityGates) -> Self {
        self.gates = gates;
        self
    }

    /// Expectation to fall back on when the trustee is a stranger (no
    /// record, no inference, no passing referral). The paper's experiments
    /// initialize expectations at their optimum (§5.7) so strangers get
    /// explored.
    pub fn with_prior(mut self, prior: TrustRecord) -> Self {
        self.prior = Some(prior);
        self
    }

    /// Forces the decision to delegate regardless of the goal check. The
    /// trustworthiness evaluation still runs and the goal is still used to
    /// judge fulfilment of the realized outcome — only the accept/decline
    /// gate is bypassed. For experiments that study post-evaluation
    /// convergence and must keep delegating even at negative expectation.
    pub fn committed(mut self) -> Self {
        self.committed = true;
        self
    }

    /// [`Self::committed`] + [`Self::evaluate`] + the inevitable
    /// [`Decision::Delegate`] unwrap, in one step — the shorthand for
    /// experiment loops where the decision was already made upstream and
    /// only the feedback half of the lifecycle is needed.
    pub fn activate<B: TrustBackend<P>>(self, engine: &TrustEngine<P, B>) -> ActiveDelegation<P> {
        match self.committed().evaluate(engine).into_decision() {
            Decision::Delegate(active) => active,
            Decision::Decline { .. } => unreachable!("committed sessions always delegate"),
        }
    }

    /// Runs the §3.3 trustworthiness evaluation against the trustor's
    /// engine: direct record → Eq. 4 inference → gated referral fallback →
    /// prior, in that order.
    pub fn evaluate<B: TrustBackend<P>>(
        self,
        engine: &TrustEngine<P, B>,
    ) -> EvaluatedDelegation<P> {
        let referrals_supplied = !self.referrals.is_empty();
        let resolved: Option<(TrustRecord, Trustworthiness, EvaluationBasis)> = if let Some(rec) =
            engine.record(self.trustee, self.task.id())
        {
            Some((rec, rec.trustworthiness(engine.normalizer()), EvaluationBasis::Direct))
        } else if let Ok(tw) = engine.infer(self.trustee, &self.task) {
            Some((scalar_expectation(tw), Trustworthiness::new(tw), EvaluationBasis::Inferred))
        } else if let Some(tw) = self
            .referrals
            .iter()
            .filter_map(|r| r.passing_value(&self.gates))
            .fold(None, |best: Option<f64>, v| Some(best.map_or(v, |b| b.max(v))))
        {
            Some((scalar_expectation(tw), Trustworthiness::new(tw), EvaluationBasis::Referred))
        } else {
            self.prior
                .map(|rec| (rec, rec.trustworthiness(engine.normalizer()), EvaluationBasis::Prior))
        };

        let (expectation, trustworthiness, basis) = resolved.unwrap_or((
            TrustRecord::neutral(),
            Trustworthiness::HALF,
            EvaluationBasis::NoInformation,
        ));

        // §3.4: delegate iff the expected result is aligned with the goal
        // and profitable (Goal::permits, decomposed to name the reason)
        let verdict = if self.committed {
            Ok(())
        } else if basis == EvaluationBasis::NoInformation {
            Err(if referrals_supplied {
                DeclineReason::ReferralsGated
            } else {
                DeclineReason::NoTrustInformation
            })
        } else if !self.goal.aligned(&expectation) {
            Err(DeclineReason::GoalMisaligned)
        } else if expectation.expected_net_profit() <= 0.0 {
            Err(DeclineReason::Unprofitable)
        } else {
            Ok(())
        };

        EvaluatedDelegation {
            trustee: self.trustee,
            task: self.task.id(),
            goal: self.goal,
            context: self.context,
            expectation,
            trustworthiness,
            basis,
            verdict,
        }
    }
}

/// Scalar estimates (inference, referrals) become an expectation record
/// with the estimate as expected success and the remaining components at
/// their neutral extremes — the same embedding the §5.5 knowledge bases
/// use, under which [`Goal::permits`] reduces to
/// `tw ≥ min_success ∧ tw > 0`.
fn scalar_expectation(tw: f64) -> TrustRecord {
    TrustRecord::with_priors(tw, 1.0, 0.0, 0.0)
}

/// The evaluated session: trustworthiness and decision computed, feedback
/// still locked behind [`EvaluatedDelegation::into_decision`].
#[derive(Debug)]
pub struct EvaluatedDelegation<P> {
    pub(crate) trustee: P,
    pub(crate) task: TaskId,
    pub(crate) goal: Goal,
    pub(crate) context: Context,
    pub(crate) expectation: TrustRecord,
    pub(crate) trustworthiness: Trustworthiness,
    pub(crate) basis: EvaluationBasis,
    pub(crate) verdict: Result<(), DeclineReason>,
}

impl<P: Copy + Ord> EvaluatedDelegation<P> {
    /// The trustee under evaluation.
    pub fn trustee(&self) -> P {
        self.trustee
    }

    /// The task being delegated.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// The session's context (task type + environment).
    pub fn context(&self) -> Context {
        self.context
    }

    /// The evaluated trustworthiness (Eq. 18, or the scalar estimate).
    pub fn trustworthiness(&self) -> Trustworthiness {
        self.trustworthiness
    }

    /// The expectation record the decision was made against.
    pub fn expectation(&self) -> &TrustRecord {
        &self.expectation
    }

    /// How the estimate was obtained.
    pub fn basis(&self) -> EvaluationBasis {
        self.basis
    }

    /// Whether the decision will be to delegate.
    pub fn would_delegate(&self) -> bool {
        self.verdict.is_ok()
    }

    /// Consumes the evaluation into the §3.4 decision. Only the
    /// [`Decision::Delegate`] arm carries an [`ActiveDelegation`] — a
    /// declined session has no handle to feed an outcome through.
    pub fn into_decision(self) -> Decision<P> {
        match self.verdict {
            Ok(()) => Decision::Delegate(ActiveDelegation {
                trustee: self.trustee,
                task: self.task,
                goal: self.goal,
                context: self.context,
                expectation: self.expectation,
            }),
            Err(reason) => Decision::Decline { reason, trustworthiness: self.trustworthiness },
        }
    }
}

/// The trustor's decision over an evaluated request.
#[derive(Debug)]
pub enum Decision<P> {
    /// Delegate: the returned session is the only handle through which the
    /// outcome can be fed back.
    Delegate(ActiveDelegation<P>),
    /// Decline: the delegation does not happen and no feedback is possible.
    Decline {
        /// Why the request was declined.
        reason: DeclineReason,
        /// The trustworthiness the evaluation produced.
        trustworthiness: Trustworthiness,
    },
}

/// What the trustor observed from the executed delegation, plus how the
/// counterpart used the relationship (the §4.1 mutuality ingredient).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelegationOutcome {
    /// The observed `(S, G, D, C)` of this delegation.
    pub observation: Observation,
    /// Whether the interaction was a legitimate use of resources.
    pub resource_use: ResourceUse,
}

impl DelegationOutcome {
    /// A fully successful delegation with the given gain and cost.
    pub fn succeeded(gain: f64, cost: f64) -> Self {
        Self::observed(Observation::success(gain, cost))
    }

    /// A failed delegation with the given damage and cost.
    pub fn failed(damage: f64, cost: f64) -> Self {
        Self::observed(Observation::failure(damage, cost))
    }

    /// An outcome from a raw observation (QoS-style fractional rates).
    pub fn observed(observation: Observation) -> Self {
        DelegationOutcome { observation, resource_use: ResourceUse::Responsive }
    }

    /// Marks the interaction as an abusive use of resources (it will be
    /// folded into the usage log that backs reverse evaluation).
    pub fn abusive(mut self) -> Self {
        self.resource_use = ResourceUse::Abusive;
        self
    }
}

/// How the counterpart used the relationship during one delegation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceUse {
    /// Legitimate, responsive use.
    Responsive,
    /// Abuse (resource misuse, malicious exploitation, wasted windows).
    Abusive,
}

/// An accepted, in-flight delegation — the one-shot handle for feedback.
///
/// Deliberately neither `Clone` nor `Copy`: executing (or finishing) the
/// session consumes it, so an outcome can be counted exactly once.
#[derive(Debug)]
pub struct ActiveDelegation<P> {
    trustee: P,
    task: TaskId,
    goal: Goal,
    context: Context,
    expectation: TrustRecord,
}

impl<P: Copy + Ord> ActiveDelegation<P> {
    /// The trustee executing the task.
    pub fn trustee(&self) -> P {
        self.trustee
    }

    /// The delegated task.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// The session's context.
    pub fn context(&self) -> Context {
        self.context
    }

    /// The expectation the delegation was accepted under.
    pub fn expectation(&self) -> &TrustRecord {
        &self.expectation
    }

    /// Validates the outcome and seals the session for committing —
    /// the deferred-feedback path for callers that batch many completed
    /// sessions through [`TrustEngine::commit_batch`]. Nothing is folded
    /// yet; an invalid observation consumes the session without side
    /// effects.
    pub fn finish(self, outcome: DelegationOutcome) -> Result<CompletedDelegation<P>, TrustError> {
        outcome.observation.validate()?;
        Ok(CompletedDelegation {
            trustee: self.trustee,
            task: self.task,
            goal: self.goal,
            context: self.context,
            observation: outcome.observation,
            resource_use: outcome.resource_use,
        })
    }

    /// Consumes the session and atomically folds the outcome back through
    /// the engine: the Eq. 19–22 record update (with the context's
    /// environment removed per Eqs. 25–29), plus the mutuality usage-log
    /// entry. Validation happens before anything is folded.
    pub fn execute<B: TrustBackend<P>>(
        self,
        engine: &mut TrustEngine<P, B>,
        outcome: DelegationOutcome,
        betas: &ForgettingFactors,
    ) -> Result<DelegationReceipt<P>, TrustError> {
        let completed = self.finish(outcome)?;
        Ok(engine.commit(completed, betas))
    }
}

/// A finished, validated delegation awaiting its commit. Constructed only
/// by [`ActiveDelegation::finish`] and consumed by
/// [`TrustEngine::commit`] / [`TrustEngine::commit_batch`] — not clonable,
/// so the outcome cannot be folded twice.
#[derive(Debug)]
pub struct CompletedDelegation<P> {
    pub(crate) trustee: P,
    pub(crate) task: TaskId,
    pub(crate) goal: Goal,
    pub(crate) context: Context,
    pub(crate) observation: Observation,
    pub(crate) resource_use: ResourceUse,
}

impl<P: Copy + Ord> CompletedDelegation<P> {
    /// The trustee that executed.
    pub fn trustee(&self) -> P {
        self.trustee
    }

    /// The delegated task.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// The validated observation to be folded.
    pub fn observation(&self) -> &Observation {
        &self.observation
    }

    /// The session's context.
    pub fn context(&self) -> Context {
        self.context
    }

    /// Whether the interaction was a legitimate resource use.
    pub fn responsive(&self) -> bool {
        self.resource_use == ResourceUse::Responsive
    }

    /// §3.4: whether the *actual* result fulfilled the goal (`R ⊆ Goal`).
    /// The observation's success rate above ½ counts as success.
    pub fn fulfilled(&self) -> bool {
        self.goal.fulfilled_by(
            self.observation.success_rate > 0.5,
            self.observation.gain,
            self.observation.damage,
            self.observation.cost,
        )
    }
}

/// What a committed delegation left behind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelegationReceipt<P> {
    /// The trustee the outcome was about.
    pub trustee: P,
    /// The delegated task.
    pub task: TaskId,
    /// The `(trustee, task)` record after the fold.
    pub record: TrustRecord,
    /// Eq. 18 trustworthiness of the post-fold record.
    pub trustworthiness: Trustworthiness,
    /// Whether the actual result fulfilled the goal (`R ⊆ Goal`, §3.4).
    pub fulfilled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ShardedBackend;
    use crate::environment::EnvIndicator;
    use crate::task::CharacteristicId;

    fn task(id: u32, cs: &[u32]) -> Task {
        Task::uniform(TaskId(id), cs.iter().map(|&i| CharacteristicId(i))).unwrap()
    }

    fn engine_with_history() -> TrustEngine<u32> {
        let mut e: TrustEngine<u32> = TrustEngine::new();
        e.register_task(task(0, &[0]));
        e.register_task(task(1, &[1]));
        let betas = ForgettingFactors::uniform(0.0);
        // peer 1: strong direct record on task 0, coverage of both chars
        e.observe(1, TaskId(0), &Observation::success(0.9, 0.1), &betas);
        e.observe(1, TaskId(1), &Observation::success(0.8, 0.1), &betas);
        // peer 2: weak record
        e.observe(2, TaskId(0), &Observation::failure(0.9, 0.5), &betas);
        e
    }

    #[test]
    fn direct_basis_and_accept() {
        let e = engine_with_history();
        let t = task(0, &[0]);
        let s = e.delegate(1, &t, Goal::profitable(), Context::amicable(t.id())).evaluate(&e);
        assert_eq!(s.basis(), EvaluationBasis::Direct);
        assert!(s.would_delegate());
        assert!(s.trustworthiness().value() > 0.5);
        assert!(matches!(s.into_decision(), Decision::Delegate(_)));
    }

    #[test]
    fn unprofitable_record_declines() {
        let e = engine_with_history();
        let t = task(0, &[0]);
        let s = e.delegate(2, &t, Goal::profitable(), Context::amicable(t.id())).evaluate(&e);
        assert_eq!(s.basis(), EvaluationBasis::Direct);
        assert!(!s.would_delegate());
        match s.into_decision() {
            Decision::Decline { reason, .. } => assert_eq!(reason, DeclineReason::Unprofitable),
            Decision::Delegate(_) => panic!("unprofitable expectation must decline"),
        }
    }

    #[test]
    fn misaligned_goal_declines() {
        let e = engine_with_history();
        let t = task(0, &[0]);
        // peer 1's gain expectation is 0.9 — a goal demanding 0.95 is out
        let picky = Goal { min_success: 0.0, min_gain: 0.95, max_damage: 1.0, max_cost: 1.0 };
        let s = e.delegate(1, &t, picky, Context::amicable(t.id())).evaluate(&e);
        match s.into_decision() {
            Decision::Decline { reason, .. } => assert_eq!(reason, DeclineReason::GoalMisaligned),
            Decision::Delegate(_) => panic!("goal box must decline"),
        }
    }

    #[test]
    fn inference_fallback() {
        let e = engine_with_history();
        // peer 1 never did the combined task, but both characteristics are
        // covered by its experiences
        let combined = task(7, &[0, 1]);
        let s = e
            .delegate(1, &combined, Goal::profitable(), Context::amicable(combined.id()))
            .evaluate(&e);
        assert_eq!(s.basis(), EvaluationBasis::Inferred);
        assert!(s.trustworthiness().value() > 0.6);
        assert!(s.would_delegate());
    }

    #[test]
    fn referral_fallback_respects_gates() {
        let e: TrustEngine<u32> = TrustEngine::new();
        let t = task(3, &[5]);
        let ctx = Context::amicable(t.id());
        // passing path: recommendation 0.9, execution 0.8
        let s = e
            .delegate(9, &t, Goal::profitable(), ctx)
            .with_referral(Referral::new([0.9, 0.8]))
            .evaluate(&e);
        assert_eq!(s.basis(), EvaluationBasis::Referred);
        let expected = crate::transitivity::two_hop(0.9, 0.8);
        assert!((s.trustworthiness().value() - expected).abs() < 1e-12);
        assert!(s.would_delegate());

        // the same path with a recommendation below ω₁ is gated out
        let s = e
            .delegate(9, &t, Goal::profitable(), ctx)
            .with_referral(Referral::new([0.4, 0.8]))
            .with_gates(TransitivityGates { omega1: 0.5, omega2: 0.5 })
            .evaluate(&e);
        assert_eq!(s.basis(), EvaluationBasis::NoInformation);
        match s.into_decision() {
            Decision::Decline { reason, .. } => assert_eq!(reason, DeclineReason::ReferralsGated),
            Decision::Delegate(_) => panic!("gated referral must not delegate"),
        }
    }

    #[test]
    fn best_passing_referral_wins() {
        let e: TrustEngine<u32> = TrustEngine::new();
        let t = task(3, &[5]);
        let s = e
            .delegate(9, &t, Goal::profitable(), Context::amicable(t.id()))
            .with_referral(Referral::execution(0.6))
            .with_referral(Referral::execution(0.85))
            .with_gates(TransitivityGates::OPEN)
            .evaluate(&e);
        assert!((s.trustworthiness().value() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn stranger_declines_unless_prior_or_committed() {
        let e: TrustEngine<u32> = TrustEngine::new();
        let t = task(0, &[0]);
        let ctx = Context::amicable(t.id());

        let s = e.delegate(5, &t, Goal::profitable(), ctx).evaluate(&e);
        match s.into_decision() {
            Decision::Decline { reason, trustworthiness } => {
                assert_eq!(reason, DeclineReason::NoTrustInformation);
                assert_eq!(trustworthiness, Trustworthiness::HALF);
            }
            Decision::Delegate(_) => panic!("stranger without prior must decline"),
        }

        let s = e
            .delegate(5, &t, Goal::profitable(), ctx)
            .with_prior(TrustRecord::with_priors(1.0, 1.0, 0.0, 0.0))
            .evaluate(&e);
        assert_eq!(s.basis(), EvaluationBasis::Prior);
        assert!(s.would_delegate());

        let s = e.delegate(5, &t, Goal::profitable(), ctx).committed().evaluate(&e);
        assert_eq!(s.basis(), EvaluationBasis::NoInformation);
        assert!(s.would_delegate(), "committed bypasses the decision gate");
    }

    #[test]
    fn activate_is_committed_evaluate_delegate() {
        let mut e: TrustEngine<u32> = TrustEngine::new();
        let t = task(0, &[0]);
        let active = e.delegate(3, &t, Goal::profitable(), Context::amicable(t.id())).activate(&e);
        assert_eq!(active.trustee(), 3);
        active
            .execute(&mut e, DelegationOutcome::succeeded(0.8, 0.1), &ForgettingFactors::figures())
            .unwrap();
        assert_eq!(e.record(3, t.id()).unwrap().interactions, 1);
        assert_eq!(e.usage_log(3).responsive, 1);
    }

    #[test]
    fn execute_folds_record_and_usage_log() {
        let mut e = engine_with_history();
        let t = task(0, &[0]);
        let before = e.record(1, t.id()).unwrap();
        let s = e.delegate(1, &t, Goal::profitable(), Context::amicable(t.id())).evaluate(&e);
        let Decision::Delegate(active) = s.into_decision() else { panic!("accepts") };
        let receipt = active
            .execute(&mut e, DelegationOutcome::succeeded(0.7, 0.2), &ForgettingFactors::figures())
            .unwrap();
        let after = e.record(1, t.id()).unwrap();
        assert_eq!(after.interactions, before.interactions + 1);
        assert_eq!(receipt.record, after);
        assert!(receipt.fulfilled);
        assert_eq!(e.usage_log(1).responsive, 1);
        assert_eq!(e.usage_log(1).abusive, 0);
    }

    #[test]
    fn abusive_outcome_reaches_the_usage_log() {
        let mut e: TrustEngine<u32> = TrustEngine::new();
        let t = task(0, &[0]);
        let s = e
            .delegate(4, &t, Goal::profitable(), Context::amicable(t.id()))
            .committed()
            .evaluate(&e);
        let Decision::Delegate(active) = s.into_decision() else { panic!("committed") };
        let receipt = active
            .execute(
                &mut e,
                DelegationOutcome::failed(0.8, 0.3).abusive(),
                &ForgettingFactors::figures(),
            )
            .unwrap();
        assert!(!receipt.fulfilled);
        assert_eq!(e.usage_log(4).abusive, 1);
        assert_eq!(e.record(4, t.id()).unwrap().interactions, 1);
    }

    #[test]
    fn invalid_outcome_folds_nothing() {
        let mut e = engine_with_history();
        let t = task(0, &[0]);
        let before = e.record(1, t.id()).unwrap();
        let s = e.delegate(1, &t, Goal::profitable(), Context::amicable(t.id())).evaluate(&e);
        let Decision::Delegate(active) = s.into_decision() else { panic!("accepts") };
        let bad = DelegationOutcome::observed(Observation {
            success_rate: f64::NAN,
            gain: 0.5,
            damage: 0.5,
            cost: 0.5,
        });
        let err = active.execute(&mut e, bad, &ForgettingFactors::figures()).unwrap_err();
        assert!(matches!(err, TrustError::OutOfUnitRange { what: "success_rate", .. }));
        assert_eq!(e.record(1, t.id()).unwrap(), before, "atomic: nothing folded");
        assert_eq!(e.usage_log(1).total(), 0);
    }

    #[test]
    fn environment_removed_at_feedback() {
        let mut e: TrustEngine<u32> = TrustEngine::new();
        let t = task(0, &[0]);
        let hostile = Context::new(t.id(), EnvIndicator::saturating(0.4));
        let s = e.delegate(2, &t, Goal::profitable(), hostile).committed().evaluate(&e);
        let Decision::Delegate(active) = s.into_decision() else { panic!("committed") };
        // competence 0.8 perceived through E = 0.4 as 0.32
        let outcome = DelegationOutcome::observed(Observation {
            success_rate: 0.32,
            gain: 0.0,
            damage: 0.0,
            cost: 0.0,
        });
        active.execute(&mut e, outcome, &ForgettingFactors::uniform(0.0)).unwrap();
        let rec = e.record(2, t.id()).unwrap();
        assert!((rec.s_hat - 0.8).abs() < 1e-12, "Eq. 29 removal: {}", rec.s_hat);
    }

    #[test]
    fn commit_batch_equals_sequential_commits() {
        let t = task(0, &[0]);
        let betas = ForgettingFactors::figures();
        let make = |e: &TrustEngine<u32, ShardedBackend<u32>>,
                    peer: u32,
                    q: f64|
         -> CompletedDelegation<u32> {
            let s = e
                .delegate(peer, &t, Goal::profitable(), Context::amicable(t.id()))
                .committed()
                .evaluate(e);
            let Decision::Delegate(active) = s.into_decision() else { panic!("committed") };
            active
                .finish(DelegationOutcome::observed(Observation {
                    success_rate: q,
                    gain: q,
                    damage: 1.0 - q,
                    cost: 0.1,
                }))
                .unwrap()
        };

        let mut seq: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        let mut batched: TrustEngine<u32, ShardedBackend<u32>> = TrustEngine::new();
        let mut pending = Vec::new();
        for i in 0..60u32 {
            let (peer, q) = (i % 7, (i % 10) as f64 / 9.0);
            let c = make(&seq, peer, q);
            seq.commit(c, &betas);
            pending.push(make(&batched, peer, q));
            // interleave flushes so later sessions see partially-committed
            // state, exactly like the sequential engine
            if pending.len() == 12 {
                batched.commit_batch(std::mem::take(&mut pending), &betas);
            }
        }
        batched.commit_batch(pending, &betas);
        assert_eq!(seq.record_count(), batched.record_count());
        for peer in seq.known_peers() {
            assert_eq!(seq.record(peer, t.id()), batched.record(peer, t.id()));
            assert_eq!(seq.usage_log(peer), batched.usage_log(peer));
        }
    }

    #[test]
    fn context_is_normalized_to_the_delegated_task() {
        let e: TrustEngine<u32> = TrustEngine::new();
        let t = task(3, &[0]);
        // caller passes a context about a *different* task: the session
        // re-anchors it on the delegated one
        let s = e
            .delegate(1, &t, Goal::profitable(), Context::amicable(TaskId(999)))
            .committed()
            .evaluate(&e);
        assert_eq!(s.context().task, TaskId(3));
    }
}
