//! Inferential transfer of trust with analogous tasks (§4.2, Eqs. 2–4).
//!
//! Trustworthiness is not locked to one task type. If every characteristic
//! of a new task `τ′` appears in previously experienced tasks, the trustor
//! infers `TW(τ′)` as a weight-combined estimate (Eq. 4):
//!
//! ```text
//! TW(τ′) = Σ_i w_i(τ′) · [ Σ_k w_j(τ_k)·TW(τ_k) / Σ_k w_j(τ_k) ]
//!          where a_j(τ_k) = a_i(τ′)
//! ```
//!
//! The inner bracket is the per-characteristic estimate — exposed as
//! [`infer_characteristic`] because the aggressive transitivity scheme
//! (§4.3) assesses characteristics along *different* paths.

use crate::error::TrustError;
use crate::task::{CharacteristicId, Task};

/// One piece of experience: a task the trustee performed before and the
/// trustworthiness the trustor holds for it.
#[derive(Debug, Clone, Copy)]
pub struct Experience<'a> {
    /// The experienced task `τ_k`.
    pub task: &'a Task,
    /// `TW_{X←Y}(τ_k)` in `[0, 1]`.
    pub trustworthiness: f64,
}

impl<'a> Experience<'a> {
    /// Convenience constructor.
    pub fn new(task: &'a Task, trustworthiness: f64) -> Self {
        Experience { task, trustworthiness }
    }
}

/// The inner bracket of Eq. 4: weighted average of the trustworthiness of
/// every experienced task containing characteristic `c`, weights being the
/// characteristic's weight inside each task.
///
/// Returns `None` when no experienced task contains `c`.
pub fn infer_characteristic(c: CharacteristicId, experiences: &[Experience<'_>]) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for e in experiences {
        if let Some(w) = e.task.weight_of(c) {
            num += w * e.trustworthiness;
            den += w;
        }
    }
    (den > 0.0).then(|| num / den)
}

/// Eq. 4 in full: infers `TW(τ′)` from experienced tasks.
///
/// Fails with [`TrustError::UncoveredCharacteristics`] when the coverage
/// condition of Eq. 2/3 (`∀i ∃j: a_i(τ′) = a_j(τ_k)`) does not hold — in
/// that case the task is genuinely new and no inference is possible.
pub fn infer_task(new_task: &Task, experiences: &[Experience<'_>]) -> Result<f64, TrustError> {
    let mut tw = 0.0;
    let mut missing = 0usize;
    for &(c, w) in new_task.characteristics() {
        match infer_characteristic(c, experiences) {
            Some(est) => tw += w * est,
            None => missing += 1,
        }
    }
    if missing > 0 {
        return Err(TrustError::UncoveredCharacteristics { missing });
    }
    Ok(tw)
}

/// Like [`infer_task`] but tolerates gaps: uncovered characteristics
/// contribute the pessimistic default `fallback`. Used when a partial
/// estimate is preferable to refusing (e.g. exploratory delegation).
pub fn infer_task_with_fallback(
    new_task: &Task,
    experiences: &[Experience<'_>],
    fallback: f64,
) -> f64 {
    new_task
        .characteristics()
        .iter()
        .map(|&(c, w)| w * infer_characteristic(c, experiences).unwrap_or(fallback))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn c(i: u32) -> CharacteristicId {
        CharacteristicId(i)
    }

    fn task(id: u32, cs: &[(u32, f64)]) -> Task {
        Task::new(TaskId(id), cs.iter().map(|&(i, w)| (c(i), w))).unwrap()
    }

    #[test]
    fn paper_traffic_example() {
        // GPS task and image task experienced; traffic monitoring = GPS+image.
        let gps = task(0, &[(0, 1.0)]);
        let image = task(1, &[(1, 1.0)]);
        let exp = [Experience::new(&gps, 0.9), Experience::new(&image, 0.7)];
        let traffic = task(2, &[(0, 1.0), (1, 1.0)]);
        let tw = infer_task(&traffic, &exp).unwrap();
        assert!((tw - 0.8).abs() < 1e-12, "equal weights average: {tw}");
    }

    #[test]
    fn single_characteristic_weighted_average() {
        // characteristic 0 appears with different weights in two tasks
        let t1 = task(0, &[(0, 1.0), (1, 1.0)]); // weight of a0 = 0.5
        let t2 = task(1, &[(0, 3.0), (2, 1.0)]); // weight of a0 = 0.75
        let exp = [Experience::new(&t1, 0.4), Experience::new(&t2, 0.8)];
        let est = infer_characteristic(c(0), &exp).unwrap();
        let expected = (0.5 * 0.4 + 0.75 * 0.8) / (0.5 + 0.75);
        assert!((est - expected).abs() < 1e-12);
    }

    #[test]
    fn uncovered_characteristic_errors() {
        let gps = task(0, &[(0, 1.0)]);
        let exp = [Experience::new(&gps, 0.9)];
        let traffic = task(2, &[(0, 1.0), (1, 1.0), (2, 1.0)]);
        assert_eq!(
            infer_task(&traffic, &exp),
            Err(TrustError::UncoveredCharacteristics { missing: 2 })
        );
    }

    #[test]
    fn no_experience_at_all() {
        let t = task(0, &[(0, 1.0)]);
        assert!(infer_characteristic(c(0), &[]).is_none());
        assert!(infer_task(&t, &[]).is_err());
    }

    #[test]
    fn fallback_fills_gaps() {
        let gps = task(0, &[(0, 1.0)]);
        let exp = [Experience::new(&gps, 1.0)];
        let two = task(1, &[(0, 1.0), (1, 1.0)]);
        let tw = infer_task_with_fallback(&two, &exp, 0.0);
        assert!((tw - 0.5).abs() < 1e-12, "half known-perfect, half fallback-zero");
    }

    #[test]
    fn inference_stays_within_input_range() {
        let t1 = task(0, &[(0, 1.0), (1, 2.0)]);
        let t2 = task(1, &[(0, 2.0), (1, 1.0)]);
        let exp = [Experience::new(&t1, 0.3), Experience::new(&t2, 0.6)];
        let new = task(2, &[(0, 1.0), (1, 1.0)]);
        let tw = infer_task(&new, &exp).unwrap();
        assert!((0.3..=0.6).contains(&tw), "convex combination: {tw}");
    }

    #[test]
    fn bad_experience_poisons_analogous_tasks() {
        // §5.4: once a trustee behaves badly on a characteristic, every
        // task containing that characteristic inherits the distrust.
        let sensing = task(0, &[(0, 1.0), (1, 1.0)]);
        let exp = [Experience::new(&sensing, 0.05)];
        let other = task(1, &[(1, 1.0)]);
        let tw = infer_task(&other, &exp).unwrap();
        assert!(tw < 0.1);
    }
}
