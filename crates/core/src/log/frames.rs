//! The record/usage/clear frame codec shared by segments, snapshots and
//! the legacy v1 files, plus the replay accumulator.

use super::{LogKey, MAX_FRAME_LEN};
use crate::framing::{self, RawFrame};
use crate::mutuality::UsageLog;
use crate::record::TrustRecord;
use crate::task::TaskId;
use std::collections::BTreeMap;

pub(crate) enum Frame<P> {
    PutRecord { peer: P, task: TaskId, rec: TrustRecord },
    PutUsage { peer: P, log: UsageLog },
    ClearRecords,
}

const KIND_PUT_RECORD: u8 = 1;
const KIND_PUT_USAGE: u8 = 2;
const KIND_CLEAR: u8 = 3;

pub(crate) fn encode_frame<P: LogKey>(out: &mut Vec<u8>, frame: &Frame<P>) {
    let start = framing::begin_frame(out);
    match *frame {
        Frame::PutRecord { peer, task, rec } => {
            out.push(KIND_PUT_RECORD);
            out.extend_from_slice(&peer.to_log_u64().to_le_bytes());
            out.extend_from_slice(&task.0.to_le_bytes());
            for v in [rec.s_hat, rec.g_hat, rec.d_hat, rec.c_hat] {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            out.extend_from_slice(&rec.interactions.to_le_bytes());
        }
        Frame::PutUsage { peer, log } => {
            out.push(KIND_PUT_USAGE);
            out.extend_from_slice(&peer.to_log_u64().to_le_bytes());
            out.extend_from_slice(&log.responsive.to_le_bytes());
            out.extend_from_slice(&log.abusive.to_le_bytes());
        }
        Frame::ClearRecords => out.push(KIND_CLEAR),
    }
    framing::end_frame(out, start);
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().expect("bounds checked by caller"))
}

pub(crate) fn decode_frame<P: LogKey>(payload: &[u8]) -> Option<Frame<P>> {
    match *payload.first()? {
        KIND_PUT_RECORD if payload.len() == 53 => Some(Frame::PutRecord {
            peer: P::from_log_u64(read_u64(payload, 1)),
            task: TaskId(u32::from_le_bytes(payload[9..13].try_into().ok()?)),
            rec: TrustRecord {
                s_hat: f64::from_bits(read_u64(payload, 13)),
                g_hat: f64::from_bits(read_u64(payload, 21)),
                d_hat: f64::from_bits(read_u64(payload, 29)),
                c_hat: f64::from_bits(read_u64(payload, 37)),
                interactions: read_u64(payload, 45),
            },
        }),
        KIND_PUT_USAGE if payload.len() == 25 => Some(Frame::PutUsage {
            peer: P::from_log_u64(read_u64(payload, 1)),
            log: UsageLog { responsive: read_u64(payload, 9), abusive: read_u64(payload, 17) },
        }),
        KIND_CLEAR if payload.len() == 1 => Some(Frame::ClearRecords),
        _ => None,
    }
}

pub(crate) enum FrameRead<P> {
    /// A valid frame and the offset of the next one.
    Frame(Frame<P>, usize),
    /// Clean end of data (exactly at a frame boundary).
    End,
    /// Torn, checksum-failing, or unparseable bytes at this offset.
    Invalid,
}

pub(crate) fn read_frame<P: LogKey>(data: &[u8], off: usize) -> FrameRead<P> {
    match framing::read_frame(data, off, MAX_FRAME_LEN) {
        RawFrame::End => FrameRead::End,
        RawFrame::Invalid => FrameRead::Invalid,
        RawFrame::Frame { payload, next } => match decode_frame(payload) {
            Some(frame) => FrameRead::Frame(frame, next),
            None => FrameRead::Invalid,
        },
    }
}

/// Whether a well-formed frame (checksum-valid and decodable) exists
/// anywhere after the invalid bytes at `off` — the torn-tail vs.
/// mid-log-corruption test, with the payload decoder as the validity
/// check on top of the shared framing scan.
pub(crate) fn followed_by_valid_frame<P: LogKey>(data: &[u8], off: usize) -> bool {
    framing::followed_by_valid_frame(data, off, MAX_FRAME_LEN, |payload| {
        decode_frame::<P>(payload).is_some()
    })
}

/// The recovered record map, keyed like the ordered backends.
pub(crate) type RecordMap<P> = BTreeMap<(P, TaskId), TrustRecord>;

/// Replay accumulator: absolute frames land latest-wins.
pub(crate) struct Replayed<P> {
    pub(crate) records: RecordMap<P>,
    pub(crate) usage: BTreeMap<P, UsageLog>,
    /// Whether a clear frame was replayed — incremental compaction cannot
    /// represent "records dropped" as an appended snapshot, so a clear in
    /// the churn window forces the full form.
    pub(crate) saw_clear: bool,
}

impl<P> Default for Replayed<P> {
    fn default() -> Self {
        Replayed { records: BTreeMap::new(), usage: BTreeMap::new(), saw_clear: false }
    }
}

impl<P: LogKey> Replayed<P> {
    pub(crate) fn apply(&mut self, frame: Frame<P>) {
        match frame {
            Frame::PutRecord { peer, task, rec } => {
                self.records.insert((peer, task), rec);
            }
            Frame::PutUsage { peer, log } => {
                self.usage.insert(peer, log);
            }
            Frame::ClearRecords => {
                self.records.clear();
                self.saw_clear = true;
            }
        }
    }
}
