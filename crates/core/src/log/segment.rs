//! Segment files: header validation, creation, and the two replay modes
//! (strict for sealed/compacted segments, tail-tolerant for the active
//! one), plus the directory-entry durability helper every chain mutation
//! relies on.

use super::frames::{followed_by_valid_frame, read_frame, FrameRead, Replayed};
use super::{LogKey, FORMAT_VERSION, HEADER_LEN};
use crate::error::TrustError;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// An 8-byte v2 header: magic, kind, version, two reserved zero bytes.
pub(crate) fn header(kind: u8) -> [u8; HEADER_LEN] {
    [b'S', b'I', b'O', b'T', kind, FORMAT_VERSION, 0, 0]
}

/// Validates magic/kind/version of a v2 file.
pub(crate) fn check_header(data: &[u8], kind: u8, what: &'static str) -> Result<(), TrustError> {
    if data.len() < HEADER_LEN || &data[..4] != b"SIOT" || data[4] != kind {
        return Err(TrustError::Corrupt { what, offset: 0 });
    }
    if data[5] != FORMAT_VERSION {
        return Err(TrustError::UnsupportedFormat { found: data[5], expected: FORMAT_VERSION });
    }
    Ok(())
}

/// Fsyncs the directory itself so renames/creates/deletes of chain files
/// are durable — a crash right after a rename must not resurface the old
/// directory entry. Errors propagate: a failed directory sync means the
/// chain mutation is *not* durably committed, and callers record it sticky
/// instead of swallowing it.
pub(crate) fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Creates (or re-initializes, after a crashed earlier attempt with the
/// same sequence number) a segment file holding `body` after the header,
/// fsynced. The caller syncs the directory once per chain mutation.
pub(crate) fn create_segment(path: &Path, kind: u8, body: &[u8]) -> std::io::Result<File> {
    let mut file =
        OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
    file.set_len(0)?;
    file.write_all(&header(kind))?;
    if !body.is_empty() {
        file.write_all(body)?;
    }
    file.sync_all()?;
    Ok(file)
}

/// Strict replay for sealed and compacted segments: every byte after the
/// (already validated) header must belong to a valid frame — rotation and
/// compaction fsynced these files before the manifest listed them, so any
/// damage is real corruption, never a torn append. Returns the frame count.
pub(crate) fn replay_strict<P: LogKey>(
    data: &[u8],
    state: &mut Replayed<P>,
) -> Result<u64, TrustError> {
    let mut off = HEADER_LEN;
    let mut frames = 0u64;
    loop {
        match read_frame(data, off) {
            FrameRead::End => return Ok(frames),
            FrameRead::Frame(frame, next) => {
                state.apply(frame);
                off = next;
                frames += 1;
            }
            FrameRead::Invalid => {
                return Err(TrustError::Corrupt { what: "segment frame", offset: off as u64 })
            }
        }
    }
}

/// Tail-tolerant replay for the active segment: returns `(valid_len,
/// frames)` of the longest checksum-valid prefix, or
/// [`TrustError::Corrupt`] when an invalid frame is *not* the tail (a
/// crash tears at most the frame being appended).
pub(crate) fn replay_tail<P: LogKey>(
    data: &[u8],
    state: &mut Replayed<P>,
) -> Result<(usize, u64), TrustError> {
    let mut off = HEADER_LEN;
    let mut frames = 0u64;
    loop {
        match read_frame(data, off) {
            FrameRead::End => return Ok((off, frames)),
            FrameRead::Frame(frame, next) => {
                state.apply(frame);
                off = next;
                frames += 1;
            }
            FrameRead::Invalid => {
                if followed_by_valid_frame::<P>(data, off) {
                    return Err(TrustError::Corrupt {
                        what: "log frame checksum",
                        offset: off as u64,
                    });
                }
                return Ok((off, frames)); // torn tail: recover the prefix
            }
        }
    }
}
